//! Facade crate re-exporting the mobicast workspace.
pub use mobicast_core as core;
pub use mobicast_ipv6 as ipv6;
pub use mobicast_mipv6 as mipv6;
pub use mobicast_mld as mld;
pub use mobicast_net as net;
pub use mobicast_pimdm as pimdm;
pub use mobicast_sim as sim;
