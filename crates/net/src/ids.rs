//! Identifier newtypes for nodes, links and interfaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (host or router) in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A multi-access link (subnet) in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Interface index local to a node (interface 0, 1, …).
pub type IfIndex = u8;

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An opaque timer key delivered back to a node behavior when its timer
/// fires. The upper layers encode protocol meaning into the value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TimerKey(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", LinkId(5)), "L5");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(LinkId(2).index(), 2);
    }
}
