//! Static routing graph over routers and links.
//!
//! The unicast substrate of the simulation: shortest paths (in link hops)
//! from every router to every link, with deterministic tie-breaking (lowest
//! link id, then lowest node id). PIM-DM's RPF checks and the prefix routing
//! tables in the IPv6 stack are both derived from this graph.
//!
//! Only *routers* forward packets; hosts appear in the world but not in the
//! routing graph, so host mobility never changes unicast routes — exactly
//! the IPv6 model, where a moved host is reachable only via its new
//! (care-of) address or through its home agent.

use crate::ids::{LinkId, NodeId};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// A route from a router toward a target link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// The directly attached link to send on first.
    pub first_link: LinkId,
    /// The next router on the path (None when `first_link` is the target,
    /// i.e. the destination link is directly attached).
    pub next_router: Option<NodeId>,
    /// Number of links on the path, counting the target (≥ 1).
    pub link_hops: u32,
}

/// Bipartite router/link adjacency with all-pairs router→link routes.
#[derive(Clone, Debug, Default)]
pub struct LinkGraph {
    /// For each router (dense index), attached links.
    router_links: Vec<Vec<LinkId>>,
    /// For each link (dense index), attached routers.
    link_routers: Vec<Vec<NodeId>>,
    /// Maps world NodeId to dense router index.
    router_index: Vec<Option<usize>>,
    /// Memoized per-target BFS distance vectors. The adjacency is
    /// immutable after construction, so entries never invalidate; without
    /// the memo every `route`/`link_hop_distance` call re-runs a full BFS,
    /// which made world *construction* O(routers × links × E) — the wall
    /// that capped metro grids (each router's table asks for every link).
    dist_cache: RefCell<BTreeMap<LinkId, Rc<[u32]>>>,
}

impl LinkGraph {
    /// Build from `(router, links-the-router-attaches)` pairs and the total
    /// number of links in the world.
    pub fn new(n_links: usize, routers: &[(NodeId, Vec<LinkId>)]) -> Self {
        let max_node = routers
            .iter()
            .map(|(n, _)| n.index() + 1)
            .max()
            .unwrap_or(0);
        let mut router_index = vec![None; max_node];
        let mut router_links = Vec::with_capacity(routers.len());
        let mut link_routers = vec![Vec::new(); n_links];
        for (dense, (node, links)) in routers.iter().enumerate() {
            router_index[node.index()] = Some(dense);
            let mut ls = links.clone();
            ls.sort();
            ls.dedup();
            for l in &ls {
                assert!(l.index() < n_links, "link {l} out of range");
                link_routers[l.index()].push(*node);
            }
            router_links.push(ls);
        }
        for routers_on_link in &mut link_routers {
            routers_on_link.sort();
        }
        LinkGraph {
            router_links,
            link_routers,
            router_index,
            dist_cache: RefCell::new(BTreeMap::new()),
        }
    }

    fn dense(&self, n: NodeId) -> Option<usize> {
        self.router_index.get(n.index()).copied().flatten()
    }

    /// Routers attached to `link`, in ascending id order.
    pub fn routers_on_link(&self, link: LinkId) -> &[NodeId] {
        &self.link_routers[link.index()]
    }

    /// Links attached to router `n` (empty if `n` is not a router).
    pub fn links_of_router(&self, n: NodeId) -> &[LinkId] {
        match self.dense(n) {
            Some(d) => &self.router_links[d],
            None => &[],
        }
    }

    pub fn is_router(&self, n: NodeId) -> bool {
        self.dense(n).is_some()
    }

    /// Distance in link hops from every link to `target` (BFS over the
    /// link adjacency through routers). `u32::MAX` = unreachable.
    pub fn link_distances(&self, target: LinkId) -> Vec<u32> {
        let n = self.link_routers.len();
        let mut dist = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        dist[target.index()] = 0;
        q.push_back(target);
        while let Some(l) = q.pop_front() {
            let d = dist[l.index()];
            for r in &self.link_routers[l.index()] {
                let Some(dense) = self.dense(*r) else {
                    continue; // unreachable: link membership implies a graph row
                };
                for nl in &self.router_links[dense] {
                    if dist[nl.index()] == u32::MAX {
                        dist[nl.index()] = d + 1;
                        q.push_back(*nl);
                    }
                }
            }
        }
        dist
    }

    /// Memoized [`Self::link_distances`]: one BFS per distinct target over
    /// the graph's lifetime, shared via `Rc`.
    fn distances(&self, target: LinkId) -> Rc<[u32]> {
        if let Some(d) = self.dist_cache.borrow().get(&target) {
            return Rc::clone(d);
        }
        let dist: Rc<[u32]> = self.link_distances(target).into();
        self.dist_cache
            .borrow_mut()
            .insert(target, Rc::clone(&dist));
        dist
    }

    /// Shortest route from router `from` toward `target` link.
    ///
    /// Tie-breaking is deterministic: among equal-cost first links the one
    /// with the lowest id wins, and among equal next routers the lowest
    /// node id wins. Returns `None` if `from` is not a router or `target`
    /// is unreachable from it.
    pub fn route(&self, from: NodeId, target: LinkId) -> Option<Route> {
        let dense = self.dense(from)?;
        let dist = self.distances(target);
        let mut best: Option<(u32, LinkId)> = None;
        for l in &self.router_links[dense] {
            let d = dist[l.index()];
            if d == u32::MAX {
                continue;
            }
            match best {
                Some((bd, bl)) if (d, *l) >= (bd, bl) => {}
                _ => best = Some((d, *l)),
            }
        }
        let (d, first_link) = best?;
        if d == 0 {
            return Some(Route {
                first_link,
                next_router: None,
                link_hops: 1,
            });
        }
        // The next router is the lowest-id router on `first_link` (other
        // than `from`) that is one hop closer to the target.
        let next_router = self.link_routers[first_link.index()]
            .iter()
            .filter(|r| **r != from)
            .find(|r| {
                self.dense(**r).is_some_and(|rd| {
                    self.router_links[rd]
                        .iter()
                        .any(|l| dist[l.index()] == d - 1)
                })
            })
            .copied();
        next_router.map(|next| Route {
            first_link,
            next_router: Some(next),
            link_hops: d + 1,
        })
    }

    /// Shortest distance in link hops between two links (1 = same link).
    pub fn link_hop_distance(&self, from: LinkId, to: LinkId) -> Option<u32> {
        let dist = self.distances(to);
        let d = dist[from.index()];
        (d != u32::MAX).then_some(d + 1)
    }

    /// Number of links in the graph.
    pub fn n_links(&self) -> usize {
        self.link_routers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    /// A string topology: L0 - R0 - L1 - R1 - L2 - R2 - L3.
    fn string_graph() -> LinkGraph {
        LinkGraph::new(
            4,
            &[
                (n(0), vec![l(0), l(1)]),
                (n(1), vec![l(1), l(2)]),
                (n(2), vec![l(2), l(3)]),
            ],
        )
    }

    #[test]
    fn directly_attached_link() {
        let g = string_graph();
        let r = g.route(n(0), l(0)).unwrap();
        assert_eq!(r.first_link, l(0));
        assert_eq!(r.next_router, None);
        assert_eq!(r.link_hops, 1);
    }

    #[test]
    fn multi_hop_route() {
        let g = string_graph();
        let r = g.route(n(0), l(3)).unwrap();
        assert_eq!(r.first_link, l(1));
        assert_eq!(r.next_router, Some(n(1)));
        assert_eq!(r.link_hops, 3);
    }

    #[test]
    fn unreachable_and_non_router() {
        let g = LinkGraph::new(3, &[(n(0), vec![l(0)]), (n(1), vec![l(1), l(2)])]);
        assert!(g.route(n(0), l(1)).is_none(), "disconnected");
        assert!(g.route(n(7), l(0)).is_none(), "not a router");
    }

    #[test]
    fn parallel_routers_tie_break_to_lowest_id() {
        // L0 - {R0, R1} - L1 : both routers connect the same two links.
        let g = LinkGraph::new(2, &[(n(0), vec![l(0), l(1)]), (n(1), vec![l(0), l(1)])]);
        // From a third router attached only to L0 we should pick R0.
        let g2 = LinkGraph::new(
            2,
            &[
                (n(0), vec![l(0), l(1)]),
                (n(1), vec![l(0), l(1)]),
                (n(2), vec![l(0)]),
            ],
        );
        let r = g2.route(n(2), l(1)).unwrap();
        assert_eq!(r.next_router, Some(n(0)), "lowest-id router wins ties");
        assert_eq!(r.link_hops, 2);
        let _ = g;
    }

    #[test]
    fn link_distances_from_target() {
        let g = string_graph();
        let d = g.link_distances(l(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn link_hop_distance_counts_target() {
        let g = string_graph();
        assert_eq!(g.link_hop_distance(l(0), l(0)), Some(1));
        assert_eq!(g.link_hop_distance(l(0), l(3)), Some(4));
    }

    #[test]
    fn routers_on_link_sorted() {
        let g = LinkGraph::new(
            1,
            &[(n(5), vec![l(0)]), (n(1), vec![l(0)]), (n(3), vec![l(0)])],
        );
        assert_eq!(g.routers_on_link(l(0)), &[n(1), n(3), n(5)]);
    }

    #[test]
    fn reference_shape_route_through_lan() {
        // Models the paper's Fig. 1 core: A on {L1,L2}, B and C on {L2,L3},
        // D on {L3,L4,L5}, E on {L5,L6}. (0-indexed here: links 0..6.)
        let g = LinkGraph::new(
            6,
            &[
                (n(0), vec![l(0), l(1)]),       // A
                (n(1), vec![l(1), l(2)]),       // B
                (n(2), vec![l(1), l(2)]),       // C
                (n(3), vec![l(2), l(3), l(4)]), // D
                (n(4), vec![l(4), l(5)]),       // E
            ],
        );
        // D's route toward the sender link L0 goes via L2 and router B
        // (lowest id of the parallel pair B/C).
        let r = g.route(n(3), l(0)).unwrap();
        assert_eq!(r.first_link, l(2));
        assert_eq!(r.next_router, Some(n(1)));
        assert_eq!(r.link_hops, 3);
        // E is 4 links from L0 (L4, L2, L1, L0 path through D, B, A).
        let r = g.route(n(4), l(0)).unwrap();
        assert_eq!(r.first_link, l(4));
        assert_eq!(r.next_router, Some(n(3)));
        assert_eq!(r.link_hops, 4);
    }
}
