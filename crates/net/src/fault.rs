//! Deterministic fault injection: per-link frame loss (i.i.d. or bursty),
//! bounded delay jitter, scheduled link down/up flaps, and router
//! crash/restart with full protocol-state loss.
//!
//! All randomness is drawn from labelled [`rand`] streams handed in by the
//! harness (one stream per link, derived from the scenario seed via
//! `RngFactory`), so a given seed reproduces the exact same drop and jitter
//! sequence — the simulator's determinism contract extends to its faults.
//!
//! Loss follows the two-state Gilbert–Elliott model: the link alternates
//! between a Good and a Bad state with per-frame transition probabilities,
//! and each state drops frames with its own probability. Setting the
//! transition probabilities to zero degenerates to i.i.d. (Bernoulli) loss
//! in the Good state, which is how [`LossModel::iid`] is expressed.

use bytes::Bytes;
use mobicast_sim::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Two-state Gilbert–Elliott loss process (i.i.d. loss as degenerate case).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Per-frame drop probability in the Good state.
    pub loss_good: f64,
    /// Per-frame drop probability in the Bad (burst) state.
    pub loss_bad: f64,
    /// Per-frame probability of moving Good -> Bad.
    pub p_good_to_bad: f64,
    /// Per-frame probability of moving Bad -> Good.
    pub p_bad_to_good: f64,
}

impl Default for LossModel {
    fn default() -> Self {
        LossModel::none()
    }
}

impl LossModel {
    /// No loss.
    pub const fn none() -> Self {
        LossModel {
            loss_good: 0.0,
            loss_bad: 0.0,
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
        }
    }

    /// Independent (Bernoulli) loss with probability `p` per frame.
    pub const fn iid(p: f64) -> Self {
        LossModel {
            loss_good: p,
            loss_bad: 0.0,
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
        }
    }

    /// Full Gilbert–Elliott parameterization.
    pub const fn gilbert_elliott(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        LossModel {
            loss_good,
            loss_bad,
            p_good_to_bad,
            p_bad_to_good,
        }
    }

    pub fn is_none(&self) -> bool {
        self.loss_good == 0.0 && (self.loss_bad == 0.0 || self.p_good_to_bad == 0.0)
    }

    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        if self.p_good_to_bad > 0.0 && self.p_bad_to_good == 0.0 && self.loss_bad >= 1.0 {
            return Err("absorbing Bad state with certain loss kills the link".into());
        }
        Ok(())
    }

    /// Long-run expected loss rate: the chain's stationary distribution
    /// weighs the two states' loss probabilities. For i.i.d. parameters
    /// this is just `loss_good`.
    pub fn stationary_loss_rate(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            // No transitions: the chain stays in its initial (Good) state.
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// One way a frame copy can be mangled in flight.
///
/// The first three mutate the wire bytes the receiver sees; the last two
/// leave the bytes intact but violate delivery semantics (extra copy,
/// late/reordered copy).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum CorruptionKind {
    /// One random bit of the frame is inverted.
    BitFlip,
    /// The frame is cut short at a random offset (possibly to nothing).
    Truncate,
    /// The frame is replaced by random garbage of random length.
    Garbage,
    /// The receiver hears the frame twice (second copy delayed).
    Duplicate,
    /// The frame arrives late by a bounded delay, reordering it behind
    /// frames transmitted after it (a bounded replay).
    Replay,
}

/// Number of distinct corruption kinds (array sizing).
pub const CORRUPTION_KIND_COUNT: usize = 5;

impl CorruptionKind {
    pub const ALL: [CorruptionKind; CORRUPTION_KIND_COUNT] = [
        CorruptionKind::BitFlip,
        CorruptionKind::Truncate,
        CorruptionKind::Garbage,
        CorruptionKind::Duplicate,
        CorruptionKind::Replay,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::BitFlip => "bit_flip",
            CorruptionKind::Truncate => "truncate",
            CorruptionKind::Garbage => "garbage",
            CorruptionKind::Duplicate => "duplicate",
            CorruptionKind::Replay => "replay",
        }
    }

    /// Does this kind mutate the delivered bytes (as opposed to delivery
    /// timing/multiplicity)?
    pub fn mutates_bytes(self) -> bool {
        matches!(
            self,
            CorruptionKind::BitFlip | CorruptionKind::Truncate | CorruptionKind::Garbage
        )
    }

    /// World counter key for this kind.
    pub fn counter(self) -> &'static str {
        match self {
            CorruptionKind::BitFlip => "faults.corrupt_bit_flip",
            CorruptionKind::Truncate => "faults.corrupt_truncate",
            CorruptionKind::Garbage => "faults.corrupt_garbage",
            CorruptionKind::Duplicate => "faults.corrupt_duplicate",
            CorruptionKind::Replay => "faults.corrupt_replay",
        }
    }
}

/// Adversarial wire-corruption process for one link: with probability
/// `rate` per receiver copy, one [`CorruptionKind`] (picked by relative
/// weight) is applied to the copy between send and deliver.
///
/// Like [`LossModel`], the process is fully seeded: a disabled model makes
/// zero RNG draws, so installing `CorruptionModel::none()` leaves existing
/// seed realizations byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorruptionModel {
    /// Per-receiver-copy probability that the copy is corrupted at all.
    pub rate: f64,
    /// Relative weights of the kinds, indexed by [`CorruptionKind::index`]
    /// (`[bit_flip, truncate, garbage, duplicate, replay]`). Need not sum
    /// to one; all-zero with a positive rate is rejected by `validate`.
    pub weights: [f64; CORRUPTION_KIND_COUNT],
    /// Upper bound on the extra delay of duplicated/replayed copies.
    pub max_replay_delay: SimDuration,
}

impl Default for CorruptionModel {
    fn default() -> Self {
        CorruptionModel::none()
    }
}

impl CorruptionModel {
    /// No corruption (and no RNG draws).
    pub const fn none() -> Self {
        CorruptionModel {
            rate: 0.0,
            weights: [0.0; CORRUPTION_KIND_COUNT],
            max_replay_delay: SimDuration::ZERO,
        }
    }

    /// All five kinds equally likely at total rate `rate`, with a 50 ms
    /// replay/duplicate delay bound.
    pub const fn uniform(rate: f64) -> Self {
        CorruptionModel {
            rate,
            weights: [1.0; CORRUPTION_KIND_COUNT],
            max_replay_delay: SimDuration::from_millis(50),
        }
    }

    pub fn is_none(&self) -> bool {
        self.rate == 0.0 || self.weights.iter().all(|&w| w == 0.0)
    }

    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.rate) {
            return Err(format!("corruption rate = {} outside [0, 1]", self.rate));
        }
        for (kind, &w) in CorruptionKind::ALL.iter().zip(&self.weights) {
            if !(w >= 0.0 && w.is_finite()) {
                return Err(format!("corruption weight {} = {w} invalid", kind.name()));
            }
        }
        if self.rate > 0.0 && self.weights.iter().all(|&w| w == 0.0) {
            return Err("positive corruption rate with all-zero weights".into());
        }
        Ok(())
    }

    /// Pick a kind by relative weight using exactly one RNG draw.
    fn pick(&self, rng: &mut SmallRng) -> CorruptionKind {
        let total: f64 = self.weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (kind, &w) in CorruptionKind::ALL.iter().zip(&self.weights) {
            if x < w {
                return *kind;
            }
            x -= w;
        }
        // Float round-off on the last boundary: fall back to the heaviest
        // trailing kind with nonzero weight.
        *CorruptionKind::ALL
            .iter()
            .zip(&self.weights)
            .rev()
            .find(|(_, &w)| w > 0.0)
            .map(|(k, _)| k)
            .unwrap_or(&CorruptionKind::BitFlip)
    }
}

/// Per-link fault configuration: a loss process, bounded delay jitter, and
/// an adversarial corruption process.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkFault {
    pub loss: LossModel,
    /// Maximum extra per-frame, per-receiver delay; each delivery is
    /// delayed by an additional uniform draw from `[0, jitter]`.
    pub jitter: SimDuration,
    /// In-flight frame corruption applied to surviving copies.
    pub corruption: CorruptionModel,
}

impl LinkFault {
    pub fn is_none(&self) -> bool {
        self.loss.is_none() && self.jitter.is_zero() && self.corruption.is_none()
    }

    pub fn validate(&self) -> Result<(), String> {
        self.loss.validate()?;
        self.corruption.validate()
    }
}

/// Runtime fault state of one link: the configuration, the Gilbert–Elliott
/// channel state, and the link's private RNG stream.
#[derive(Debug)]
pub struct LinkFaultState {
    cfg: LinkFault,
    rng: SmallRng,
    in_bad: bool,
}

impl LinkFaultState {
    /// `rng` must be a stream dedicated to this link (e.g.
    /// `factory.indexed_stream("fault.link", link.0 as u64)`), otherwise
    /// drop sequences on different links become correlated.
    pub fn new(cfg: LinkFault, rng: SmallRng) -> Self {
        LinkFaultState {
            cfg,
            rng,
            in_bad: false,
        }
    }

    pub fn cfg(&self) -> &LinkFault {
        &self.cfg
    }

    /// Decide the fate of one frame copy headed to one receiver. Advances
    /// the Gilbert–Elliott state, then samples the current state's loss
    /// probability. Draw order is fixed, so a seed fully determines the
    /// sequence of outcomes.
    pub fn should_drop(&mut self) -> bool {
        let m = self.cfg.loss;
        if m.is_none() {
            return false;
        }
        if self.in_bad {
            if m.p_bad_to_good > 0.0 && self.rng.random::<f64>() < m.p_bad_to_good {
                self.in_bad = false;
            }
        } else if m.p_good_to_bad > 0.0 && self.rng.random::<f64>() < m.p_good_to_bad {
            self.in_bad = true;
        }
        let p = if self.in_bad { m.loss_bad } else { m.loss_good };
        p > 0.0 && self.rng.random::<f64>() < p
    }

    /// Extra delivery delay for one frame copy: uniform in `[0, jitter]`.
    pub fn jitter(&mut self) -> SimDuration {
        if self.cfg.jitter.is_zero() {
            return SimDuration::ZERO;
        }
        let max = self.cfg.jitter.as_nanos() as f64;
        SimDuration::from_nanos((max * self.rng.random::<f64>()) as u64)
    }

    /// Decide whether (and how) one surviving frame copy is corrupted.
    /// Makes zero draws when the model is disabled, one draw for the
    /// corrupt/clean decision otherwise, and one more to pick the kind —
    /// fixed order, so the seed fully determines the outcome sequence.
    pub fn corruption(&mut self) -> Option<CorruptionKind> {
        let c = self.cfg.corruption;
        if c.is_none() {
            return None;
        }
        if self.rng.random::<f64>() >= c.rate {
            return None;
        }
        Some(c.pick(&mut self.rng))
    }

    /// Mutate the wire bytes of a corrupted copy according to `kind`.
    /// Only meaningful for byte-mutating kinds; delivery-semantics kinds
    /// (duplicate/replay) return the bytes unchanged without drawing.
    pub fn corrupt_bytes(&mut self, kind: CorruptionKind, bytes: &Bytes) -> Bytes {
        match kind {
            CorruptionKind::BitFlip => {
                if bytes.is_empty() {
                    return bytes.clone();
                }
                let bit = self.rng.random_range(0..bytes.len() * 8);
                let mut out = bytes.to_vec();
                out[bit / 8] ^= 1 << (bit % 8);
                Bytes::from(out)
            }
            CorruptionKind::Truncate => {
                if bytes.is_empty() {
                    return bytes.clone();
                }
                let cut = self.rng.random_range(0..bytes.len());
                Bytes::copy_from_slice(&bytes[..cut])
            }
            CorruptionKind::Garbage => {
                let max_len = bytes.len().max(16);
                let len = self.rng.random_range(1..=max_len);
                let mut out = vec![0u8; len];
                use rand::RngCore;
                self.rng.fill_bytes(&mut out);
                Bytes::from(out)
            }
            CorruptionKind::Duplicate | CorruptionKind::Replay => bytes.clone(),
        }
    }

    /// Extra delay of a duplicated or replayed copy: uniform in
    /// `(0, max_replay_delay]` (never zero, so the copy genuinely lands
    /// after the original / after its nominal arrival).
    pub fn replay_delay(&mut self) -> SimDuration {
        let max = self.cfg.corruption.max_replay_delay.as_nanos();
        if max == 0 {
            return SimDuration::from_nanos(1);
        }
        SimDuration::from_nanos(self.rng.random_range(1..=max))
    }
}

/// One scheduled link outage: the link drops every frame (at transmission
/// and at arrival) between `down_at_secs` and `up_at_secs`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// 0-based link index (`LinkId` value).
    pub link: u32,
    pub down_at_secs: f64,
    pub up_at_secs: f64,
}

/// One scheduled router failure: the router stops processing frames and
/// timers at `crash_at_secs` and comes back at `restart_at_secs` with a
/// completely fresh protocol stack — all MLD, PIM and binding soft state
/// is lost and must be rebuilt by the protocols' own recovery machinery.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterCrash {
    /// Index into the scenario's router list.
    pub router: u32,
    pub crash_at_secs: f64,
    pub restart_at_secs: f64,
}

/// Time window during which the link loss/jitter configuration applies.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start_secs: f64,
    pub end_secs: f64,
}

/// A well-formed signaling storm: every message is syntactically valid,
/// there are just far too many of them. Rates are mean events per second
/// sustained across the storm window `[start_secs, end_secs)`; the
/// concrete arrival times come from dedicated seeded RNG streams drawn by
/// the scenario layer, and a disabled storm makes **zero** RNG draws.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StormModel {
    /// Channel-zapping churn: mean joins-then-leaves per second, spread
    /// across `zap_groups` distinct extra groups (IPTV zapping workload).
    pub zap_rate: f64,
    /// How many distinct extra groups the zapping churn cycles through.
    pub zap_groups: u32,
    /// Binding Update storm: mean re-registrations per second from
    /// rapidly roaming mobile hosts.
    pub bu_rate: f64,
    /// Graft/prune flapping: mean subscribe/unsubscribe toggles per
    /// second across `flap_hosts` dedicated storm hosts.
    pub flap_rate: f64,
    /// How many dedicated storm hosts participate in graft/prune flaps.
    pub flap_hosts: u32,
    /// Storm window start, seconds.
    pub start_secs: f64,
    /// Storm window end, seconds. Must exceed `start_secs` when any rate
    /// is positive.
    pub end_secs: f64,
}

impl Default for StormModel {
    fn default() -> Self {
        StormModel::none()
    }
}

impl StormModel {
    /// No storm (and no RNG draws).
    pub const fn none() -> Self {
        StormModel {
            zap_rate: 0.0,
            zap_groups: 0,
            bu_rate: 0.0,
            flap_rate: 0.0,
            flap_hosts: 0,
            start_secs: 0.0,
            end_secs: 0.0,
        }
    }

    pub fn is_none(&self) -> bool {
        self.zap_rate == 0.0 && self.bu_rate == 0.0 && self.flap_rate == 0.0
    }

    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("zap_rate", self.zap_rate),
            ("bu_rate", self.bu_rate),
            ("flap_rate", self.flap_rate),
        ] {
            if !(r >= 0.0 && r.is_finite()) {
                return Err(format!("storm {name} = {r} invalid"));
            }
        }
        if self.is_none() {
            return Ok(());
        }
        if !(self.start_secs >= 0.0 && self.end_secs > self.start_secs) {
            return Err(format!(
                "bad storm window [{}, {}]",
                self.start_secs, self.end_secs
            ));
        }
        if self.zap_rate > 0.0 && self.zap_groups == 0 {
            return Err("zapping storm needs zap_groups >= 1".into());
        }
        if self.flap_rate > 0.0 && self.flap_hosts == 0 {
            return Err("flap storm needs flap_hosts >= 1".into());
        }
        Ok(())
    }
}

/// A complete, world-agnostic fault schedule for one scenario run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Loss/jitter applied to every link.
    pub link: LinkFault,
    /// When `Some`, loss/jitter only applies inside the window; when
    /// `None`, it applies for the whole run.
    pub window: Option<FaultWindow>,
    pub flaps: Vec<LinkFlap>,
    pub crashes: Vec<RouterCrash>,
    /// Well-formed signaling storm injected during its own window.
    pub storm: StormModel,
}

impl FaultPlan {
    pub fn is_none(&self) -> bool {
        self.link.is_none()
            && self.flaps.is_empty()
            && self.crashes.is_empty()
            && self.storm.is_none()
    }

    /// Every link loses `p` of its frames, independently, all run long.
    pub fn iid_loss(p: f64) -> Self {
        FaultPlan {
            link: LinkFault {
                loss: LossModel::iid(p),
                ..LinkFault::default()
            },
            ..FaultPlan::default()
        }
    }

    /// Every link corrupts `rate` of its frame copies (all kinds equally
    /// likely), all run long.
    pub fn uniform_corruption(rate: f64) -> Self {
        FaultPlan {
            link: LinkFault {
                corruption: CorruptionModel::uniform(rate),
                ..LinkFault::default()
            },
            ..FaultPlan::default()
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        self.link.validate()?;
        if let Some(w) = self.window {
            if !(w.start_secs >= 0.0 && w.end_secs > w.start_secs) {
                return Err(format!(
                    "bad fault window [{}, {}]",
                    w.start_secs, w.end_secs
                ));
            }
        }
        for f in &self.flaps {
            if !(f.down_at_secs >= 0.0 && f.up_at_secs > f.down_at_secs) {
                return Err(format!("bad flap [{}, {}]", f.down_at_secs, f.up_at_secs));
            }
        }
        for c in &self.crashes {
            if !(c.crash_at_secs >= 0.0 && c.restart_at_secs > c.crash_at_secs) {
                return Err(format!(
                    "bad crash [{}, {}]",
                    c.crash_at_secs, c.restart_at_secs
                ));
            }
        }
        self.storm.validate()?;
        Ok(())
    }

    /// The instant after which every scheduled fault has cleared — the
    /// earliest time from which steady-state behavior may be demanded.
    /// `None` when a fault has no scheduled end (unwindowed loss/jitter).
    pub fn recovery_bound_secs(&self) -> Option<f64> {
        let mut bound: f64 = 0.0;
        if !self.link.is_none() {
            match self.window {
                Some(w) => bound = bound.max(w.end_secs),
                None => return None,
            }
        }
        for f in &self.flaps {
            bound = bound.max(f.up_at_secs);
        }
        for c in &self.crashes {
            bound = bound.max(c.restart_at_secs);
        }
        if !self.storm.is_none() {
            bound = bound.max(self.storm.end_secs);
        }
        Some(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn none_never_drops() {
        let mut s = LinkFaultState::new(LinkFault::default(), rng(1));
        assert!((0..10_000).all(|_| !s.should_drop()));
        assert_eq!(s.jitter(), SimDuration::ZERO);
    }

    #[test]
    fn iid_loss_rate_close_to_nominal() {
        let mut s = LinkFaultState::new(
            LinkFault {
                loss: LossModel::iid(0.1),
                jitter: SimDuration::ZERO,
                corruption: CorruptionModel::none(),
            },
            rng(2),
        );
        let n = 100_000;
        let drops = (0..n).filter(|_| s.should_drop()).count();
        let rate = drops as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn gilbert_elliott_matches_stationary_closed_form() {
        // pi_bad = 0.02 / (0.02 + 0.2) = 1/11; expected loss
        // = (10/11)*0.01 + (1/11)*0.5 ≈ 0.05455.
        let model = LossModel::gilbert_elliott(0.02, 0.2, 0.01, 0.5);
        let expect = model.stationary_loss_rate();
        assert!((expect - (10.0 / 11.0 * 0.01 + 1.0 / 11.0 * 0.5)).abs() < 1e-12);
        let mut s = LinkFaultState::new(
            LinkFault {
                loss: model,
                jitter: SimDuration::ZERO,
                corruption: CorruptionModel::none(),
            },
            rng(3),
        );
        let n = 400_000;
        let drops = (0..n).filter(|_| s.should_drop()).count();
        let rate = drops as f64 / f64::from(n);
        assert!(
            (rate - expect).abs() < 0.005,
            "measured {rate}, expected {expect}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Strongly sticky Bad state: losses must cluster more than i.i.d.
        let model = LossModel::gilbert_elliott(0.01, 0.05, 0.0, 1.0);
        let mut s = LinkFaultState::new(
            LinkFault {
                loss: model,
                jitter: SimDuration::ZERO,
                corruption: CorruptionModel::none(),
            },
            rng(4),
        );
        let outcomes: Vec<bool> = (0..200_000).map(|_| s.should_drop()).collect();
        let losses = outcomes.iter().filter(|&&d| d).count() as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        // P(loss | previous loss) far exceeds the marginal loss rate.
        let conditional = pairs / losses;
        let marginal = losses / outcomes.len() as f64;
        assert!(
            conditional > 4.0 * marginal,
            "conditional {conditional} vs marginal {marginal}"
        );
    }

    #[test]
    fn same_seed_same_drop_and_jitter_sequence() {
        let cfg = LinkFault {
            loss: LossModel::gilbert_elliott(0.1, 0.3, 0.05, 0.6),
            jitter: SimDuration::from_millis(5),
            corruption: CorruptionModel::none(),
        };
        let mut a = LinkFaultState::new(cfg, rng(7));
        let mut b = LinkFaultState::new(cfg, rng(7));
        for _ in 0..10_000 {
            let (da, db) = (a.should_drop(), b.should_drop());
            assert_eq!(da, db);
            if !da {
                assert_eq!(a.jitter(), b.jitter());
            }
        }
    }

    #[test]
    fn jitter_is_bounded() {
        let cfg = LinkFault {
            loss: LossModel::none(),
            jitter: SimDuration::from_millis(2),
            corruption: CorruptionModel::none(),
        };
        let mut s = LinkFaultState::new(cfg, rng(8));
        for _ in 0..10_000 {
            assert!(s.jitter() <= SimDuration::from_millis(2));
        }
    }

    #[test]
    fn plan_validation_and_recovery_bound() {
        let mut plan = FaultPlan::iid_loss(0.1);
        assert!(plan.validate().is_ok());
        assert_eq!(
            plan.recovery_bound_secs(),
            None,
            "unwindowed loss never clears"
        );
        plan.window = Some(FaultWindow {
            start_secs: 10.0,
            end_secs: 60.0,
        });
        plan.flaps.push(LinkFlap {
            link: 2,
            down_at_secs: 20.0,
            up_at_secs: 90.0,
        });
        plan.crashes.push(RouterCrash {
            router: 1,
            crash_at_secs: 30.0,
            restart_at_secs: 45.0,
        });
        assert!(plan.validate().is_ok());
        assert_eq!(plan.recovery_bound_secs(), Some(90.0));
        assert!(FaultPlan::iid_loss(1.5).validate().is_err());
        let bad_flap = FaultPlan {
            flaps: vec![LinkFlap {
                link: 0,
                down_at_secs: 5.0,
                up_at_secs: 5.0,
            }],
            ..FaultPlan::default()
        };
        assert!(bad_flap.validate().is_err());
    }

    #[test]
    fn storm_model_validation_and_recovery_bound() {
        assert!(StormModel::none().is_none());
        assert!(StormModel::none().validate().is_ok());
        let storm = StormModel {
            zap_rate: 5.0,
            zap_groups: 8,
            bu_rate: 2.0,
            flap_rate: 1.0,
            flap_hosts: 2,
            start_secs: 10.0,
            end_secs: 70.0,
        };
        assert!(!storm.is_none());
        assert!(storm.validate().is_ok());
        // Positive rate demands a real window and nonzero target counts.
        assert!(StormModel {
            end_secs: 10.0,
            ..storm
        }
        .validate()
        .is_err());
        assert!(StormModel {
            zap_groups: 0,
            ..storm
        }
        .validate()
        .is_err());
        assert!(StormModel {
            flap_hosts: 0,
            ..storm
        }
        .validate()
        .is_err());
        assert!(StormModel {
            bu_rate: f64::NAN,
            ..storm
        }
        .validate()
        .is_err());
        // A storm alone makes the plan non-none and bounds recovery at
        // its window end.
        let plan = FaultPlan {
            storm,
            ..FaultPlan::default()
        };
        assert!(!plan.is_none());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.recovery_bound_secs(), Some(70.0));
    }

    #[test]
    fn default_plan_is_none() {
        assert!(FaultPlan::default().is_none());
        assert!(!FaultPlan::iid_loss(0.01).is_none());
        assert_eq!(FaultPlan::default().recovery_bound_secs(), Some(0.0));
    }

    fn corrupting(model: CorruptionModel, seed: u64) -> LinkFaultState {
        LinkFaultState::new(
            LinkFault {
                corruption: model,
                ..LinkFault::default()
            },
            rng(seed),
        )
    }

    #[test]
    fn disabled_corruption_makes_no_draws() {
        // With corruption disabled, calling corruption() must not disturb
        // the RNG stream: the loss sequence stays identical whether or not
        // the corruption roll happens between drops.
        let cfg = LinkFault {
            loss: LossModel::iid(0.3),
            ..LinkFault::default()
        };
        let mut a = LinkFaultState::new(cfg, rng(11));
        let mut b = LinkFaultState::new(cfg, rng(11));
        for _ in 0..10_000 {
            let da = a.should_drop();
            let db = b.should_drop();
            assert!(b.corruption().is_none());
            assert_eq!(da, db);
        }
    }

    #[test]
    fn corruption_rate_close_to_nominal() {
        let mut s = corrupting(CorruptionModel::uniform(0.2), 12);
        let n = 100_000;
        let hits = (0..n).filter(|_| s.corruption().is_some()).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.2).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn corruption_kinds_follow_weights() {
        for (i, want) in CorruptionKind::ALL.iter().enumerate() {
            let mut weights = [0.0; CORRUPTION_KIND_COUNT];
            weights[i] = 1.0;
            let mut s = corrupting(
                CorruptionModel {
                    rate: 1.0,
                    weights,
                    max_replay_delay: SimDuration::from_millis(10),
                },
                13,
            );
            for _ in 0..100 {
                assert_eq!(s.corruption(), Some(*want));
            }
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mut s = corrupting(CorruptionModel::uniform(1.0), 14);
        let original = Bytes::copy_from_slice(&[0xA5; 64]);
        for _ in 0..200 {
            let out = s.corrupt_bytes(CorruptionKind::BitFlip, &original);
            assert_eq!(out.len(), original.len());
            let differing: u32 = original
                .iter()
                .zip(out.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(differing, 1);
        }
    }

    #[test]
    fn truncate_yields_strict_prefix() {
        let mut s = corrupting(CorruptionModel::uniform(1.0), 15);
        let original = Bytes::copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        for _ in 0..200 {
            let out = s.corrupt_bytes(CorruptionKind::Truncate, &original);
            assert!(out.len() < original.len());
            assert_eq!(&original[..out.len()], &out[..]);
        }
    }

    #[test]
    fn garbage_is_bounded_and_nonempty() {
        let mut s = corrupting(CorruptionModel::uniform(1.0), 16);
        let original = Bytes::copy_from_slice(&[0; 40]);
        for _ in 0..200 {
            let out = s.corrupt_bytes(CorruptionKind::Garbage, &original);
            assert!(!out.is_empty());
            assert!(out.len() <= 40);
        }
    }

    #[test]
    fn replay_delay_is_positive_and_bounded() {
        let mut s = corrupting(CorruptionModel::uniform(1.0), 17);
        for _ in 0..1000 {
            let d = s.replay_delay();
            assert!(d > SimDuration::ZERO);
            assert!(d <= SimDuration::from_millis(50));
        }
    }

    #[test]
    fn empty_frames_survive_byte_mutation() {
        let mut s = corrupting(CorruptionModel::uniform(1.0), 18);
        let empty = Bytes::copy_from_slice(&[]);
        assert!(s.corrupt_bytes(CorruptionKind::BitFlip, &empty).is_empty());
        assert!(s.corrupt_bytes(CorruptionKind::Truncate, &empty).is_empty());
        // Garbage replaces the frame, so even an empty one grows bytes.
        assert!(!s.corrupt_bytes(CorruptionKind::Garbage, &empty).is_empty());
    }

    #[test]
    fn same_seed_same_corruption_sequence() {
        let model = CorruptionModel::uniform(0.5);
        let mut a = corrupting(model, 19);
        let mut b = corrupting(model, 19);
        let payload = Bytes::copy_from_slice(&[9; 32]);
        for _ in 0..5_000 {
            let (ka, kb) = (a.corruption(), b.corruption());
            assert_eq!(ka, kb);
            if let Some(kind) = ka {
                if kind.mutates_bytes() {
                    assert_eq!(
                        a.corrupt_bytes(kind, &payload).to_vec(),
                        b.corrupt_bytes(kind, &payload).to_vec()
                    );
                } else {
                    assert_eq!(a.replay_delay(), b.replay_delay());
                }
            }
        }
    }

    #[test]
    fn corruption_model_validation() {
        assert!(CorruptionModel::none().validate().is_ok());
        assert!(CorruptionModel::uniform(0.05).validate().is_ok());
        assert!(CorruptionModel::uniform(1.5).validate().is_err());
        let mut m = CorruptionModel::uniform(0.1);
        m.weights = [0.0; CORRUPTION_KIND_COUNT];
        assert!(m.validate().is_err(), "positive rate needs a usable kind");
        m.weights = [1.0, -1.0, 0.0, 0.0, 0.0];
        assert!(m.validate().is_err(), "negative weight rejected");
        assert!(FaultPlan::uniform_corruption(2.0).validate().is_err());
    }

    #[test]
    fn corruption_plan_recovery_bound() {
        let mut plan = FaultPlan::uniform_corruption(0.02);
        assert!(!plan.is_none());
        assert!(plan.validate().is_ok());
        assert_eq!(
            plan.recovery_bound_secs(),
            None,
            "unwindowed corruption never clears"
        );
        plan.window = Some(FaultWindow {
            start_secs: 5.0,
            end_secs: 25.0,
        });
        assert_eq!(plan.recovery_bound_secs(), Some(25.0));
    }

    #[test]
    fn corruption_kind_indices_and_names_are_dense() {
        let mut seen = [false; CORRUPTION_KIND_COUNT];
        for k in CorruptionKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
        let mut names: Vec<_> = CorruptionKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CORRUPTION_KIND_COUNT);
    }
}
