//! Deterministic fault injection: per-link frame loss (i.i.d. or bursty),
//! bounded delay jitter, scheduled link down/up flaps, and router
//! crash/restart with full protocol-state loss.
//!
//! All randomness is drawn from labelled [`rand`] streams handed in by the
//! harness (one stream per link, derived from the scenario seed via
//! `RngFactory`), so a given seed reproduces the exact same drop and jitter
//! sequence — the simulator's determinism contract extends to its faults.
//!
//! Loss follows the two-state Gilbert–Elliott model: the link alternates
//! between a Good and a Bad state with per-frame transition probabilities,
//! and each state drops frames with its own probability. Setting the
//! transition probabilities to zero degenerates to i.i.d. (Bernoulli) loss
//! in the Good state, which is how [`LossModel::iid`] is expressed.

use mobicast_sim::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Two-state Gilbert–Elliott loss process (i.i.d. loss as degenerate case).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Per-frame drop probability in the Good state.
    pub loss_good: f64,
    /// Per-frame drop probability in the Bad (burst) state.
    pub loss_bad: f64,
    /// Per-frame probability of moving Good -> Bad.
    pub p_good_to_bad: f64,
    /// Per-frame probability of moving Bad -> Good.
    pub p_bad_to_good: f64,
}

impl Default for LossModel {
    fn default() -> Self {
        LossModel::none()
    }
}

impl LossModel {
    /// No loss.
    pub const fn none() -> Self {
        LossModel {
            loss_good: 0.0,
            loss_bad: 0.0,
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
        }
    }

    /// Independent (Bernoulli) loss with probability `p` per frame.
    pub const fn iid(p: f64) -> Self {
        LossModel {
            loss_good: p,
            loss_bad: 0.0,
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
        }
    }

    /// Full Gilbert–Elliott parameterization.
    pub const fn gilbert_elliott(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        LossModel {
            loss_good,
            loss_bad,
            p_good_to_bad,
            p_bad_to_good,
        }
    }

    pub fn is_none(&self) -> bool {
        self.loss_good == 0.0 && (self.loss_bad == 0.0 || self.p_good_to_bad == 0.0)
    }

    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        if self.p_good_to_bad > 0.0 && self.p_bad_to_good == 0.0 && self.loss_bad >= 1.0 {
            return Err("absorbing Bad state with certain loss kills the link".into());
        }
        Ok(())
    }

    /// Long-run expected loss rate: the chain's stationary distribution
    /// weighs the two states' loss probabilities. For i.i.d. parameters
    /// this is just `loss_good`.
    pub fn stationary_loss_rate(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            // No transitions: the chain stays in its initial (Good) state.
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// Per-link fault configuration: a loss process plus bounded delay jitter.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkFault {
    pub loss: LossModel,
    /// Maximum extra per-frame, per-receiver delay; each delivery is
    /// delayed by an additional uniform draw from `[0, jitter]`.
    pub jitter: SimDuration,
}

impl LinkFault {
    pub fn is_none(&self) -> bool {
        self.loss.is_none() && self.jitter.is_zero()
    }

    pub fn validate(&self) -> Result<(), String> {
        self.loss.validate()
    }
}

/// Runtime fault state of one link: the configuration, the Gilbert–Elliott
/// channel state, and the link's private RNG stream.
#[derive(Debug)]
pub struct LinkFaultState {
    cfg: LinkFault,
    rng: SmallRng,
    in_bad: bool,
}

impl LinkFaultState {
    /// `rng` must be a stream dedicated to this link (e.g.
    /// `factory.indexed_stream("fault.link", link.0 as u64)`), otherwise
    /// drop sequences on different links become correlated.
    pub fn new(cfg: LinkFault, rng: SmallRng) -> Self {
        LinkFaultState {
            cfg,
            rng,
            in_bad: false,
        }
    }

    pub fn cfg(&self) -> &LinkFault {
        &self.cfg
    }

    /// Decide the fate of one frame copy headed to one receiver. Advances
    /// the Gilbert–Elliott state, then samples the current state's loss
    /// probability. Draw order is fixed, so a seed fully determines the
    /// sequence of outcomes.
    pub fn should_drop(&mut self) -> bool {
        let m = self.cfg.loss;
        if m.is_none() {
            return false;
        }
        if self.in_bad {
            if m.p_bad_to_good > 0.0 && self.rng.random::<f64>() < m.p_bad_to_good {
                self.in_bad = false;
            }
        } else if m.p_good_to_bad > 0.0 && self.rng.random::<f64>() < m.p_good_to_bad {
            self.in_bad = true;
        }
        let p = if self.in_bad { m.loss_bad } else { m.loss_good };
        p > 0.0 && self.rng.random::<f64>() < p
    }

    /// Extra delivery delay for one frame copy: uniform in `[0, jitter]`.
    pub fn jitter(&mut self) -> SimDuration {
        if self.cfg.jitter.is_zero() {
            return SimDuration::ZERO;
        }
        let max = self.cfg.jitter.as_nanos() as f64;
        SimDuration::from_nanos((max * self.rng.random::<f64>()) as u64)
    }
}

/// One scheduled link outage: the link drops every frame (at transmission
/// and at arrival) between `down_at_secs` and `up_at_secs`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// 0-based link index (`LinkId` value).
    pub link: u32,
    pub down_at_secs: f64,
    pub up_at_secs: f64,
}

/// One scheduled router failure: the router stops processing frames and
/// timers at `crash_at_secs` and comes back at `restart_at_secs` with a
/// completely fresh protocol stack — all MLD, PIM and binding soft state
/// is lost and must be rebuilt by the protocols' own recovery machinery.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterCrash {
    /// Index into the scenario's router list.
    pub router: u32,
    pub crash_at_secs: f64,
    pub restart_at_secs: f64,
}

/// Time window during which the link loss/jitter configuration applies.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    pub start_secs: f64,
    pub end_secs: f64,
}

/// A complete, world-agnostic fault schedule for one scenario run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Loss/jitter applied to every link.
    pub link: LinkFault,
    /// When `Some`, loss/jitter only applies inside the window; when
    /// `None`, it applies for the whole run.
    pub window: Option<FaultWindow>,
    pub flaps: Vec<LinkFlap>,
    pub crashes: Vec<RouterCrash>,
}

impl FaultPlan {
    pub fn is_none(&self) -> bool {
        self.link.is_none() && self.flaps.is_empty() && self.crashes.is_empty()
    }

    /// Every link loses `p` of its frames, independently, all run long.
    pub fn iid_loss(p: f64) -> Self {
        FaultPlan {
            link: LinkFault {
                loss: LossModel::iid(p),
                jitter: SimDuration::ZERO,
            },
            ..FaultPlan::default()
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        self.link.validate()?;
        if let Some(w) = self.window {
            if !(w.start_secs >= 0.0 && w.end_secs > w.start_secs) {
                return Err(format!(
                    "bad fault window [{}, {}]",
                    w.start_secs, w.end_secs
                ));
            }
        }
        for f in &self.flaps {
            if !(f.down_at_secs >= 0.0 && f.up_at_secs > f.down_at_secs) {
                return Err(format!("bad flap [{}, {}]", f.down_at_secs, f.up_at_secs));
            }
        }
        for c in &self.crashes {
            if !(c.crash_at_secs >= 0.0 && c.restart_at_secs > c.crash_at_secs) {
                return Err(format!(
                    "bad crash [{}, {}]",
                    c.crash_at_secs, c.restart_at_secs
                ));
            }
        }
        Ok(())
    }

    /// The instant after which every scheduled fault has cleared — the
    /// earliest time from which steady-state behavior may be demanded.
    /// `None` when a fault has no scheduled end (unwindowed loss/jitter).
    pub fn recovery_bound_secs(&self) -> Option<f64> {
        let mut bound: f64 = 0.0;
        if !self.link.is_none() {
            match self.window {
                Some(w) => bound = bound.max(w.end_secs),
                None => return None,
            }
        }
        for f in &self.flaps {
            bound = bound.max(f.up_at_secs);
        }
        for c in &self.crashes {
            bound = bound.max(c.restart_at_secs);
        }
        Some(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn none_never_drops() {
        let mut s = LinkFaultState::new(LinkFault::default(), rng(1));
        assert!((0..10_000).all(|_| !s.should_drop()));
        assert_eq!(s.jitter(), SimDuration::ZERO);
    }

    #[test]
    fn iid_loss_rate_close_to_nominal() {
        let mut s = LinkFaultState::new(
            LinkFault {
                loss: LossModel::iid(0.1),
                jitter: SimDuration::ZERO,
            },
            rng(2),
        );
        let n = 100_000;
        let drops = (0..n).filter(|_| s.should_drop()).count();
        let rate = drops as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn gilbert_elliott_matches_stationary_closed_form() {
        // pi_bad = 0.02 / (0.02 + 0.2) = 1/11; expected loss
        // = (10/11)*0.01 + (1/11)*0.5 ≈ 0.05455.
        let model = LossModel::gilbert_elliott(0.02, 0.2, 0.01, 0.5);
        let expect = model.stationary_loss_rate();
        assert!((expect - (10.0 / 11.0 * 0.01 + 1.0 / 11.0 * 0.5)).abs() < 1e-12);
        let mut s = LinkFaultState::new(
            LinkFault {
                loss: model,
                jitter: SimDuration::ZERO,
            },
            rng(3),
        );
        let n = 400_000;
        let drops = (0..n).filter(|_| s.should_drop()).count();
        let rate = drops as f64 / f64::from(n);
        assert!(
            (rate - expect).abs() < 0.005,
            "measured {rate}, expected {expect}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Strongly sticky Bad state: losses must cluster more than i.i.d.
        let model = LossModel::gilbert_elliott(0.01, 0.05, 0.0, 1.0);
        let mut s = LinkFaultState::new(
            LinkFault {
                loss: model,
                jitter: SimDuration::ZERO,
            },
            rng(4),
        );
        let outcomes: Vec<bool> = (0..200_000).map(|_| s.should_drop()).collect();
        let losses = outcomes.iter().filter(|&&d| d).count() as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        // P(loss | previous loss) far exceeds the marginal loss rate.
        let conditional = pairs / losses;
        let marginal = losses / outcomes.len() as f64;
        assert!(
            conditional > 4.0 * marginal,
            "conditional {conditional} vs marginal {marginal}"
        );
    }

    #[test]
    fn same_seed_same_drop_and_jitter_sequence() {
        let cfg = LinkFault {
            loss: LossModel::gilbert_elliott(0.1, 0.3, 0.05, 0.6),
            jitter: SimDuration::from_millis(5),
        };
        let mut a = LinkFaultState::new(cfg, rng(7));
        let mut b = LinkFaultState::new(cfg, rng(7));
        for _ in 0..10_000 {
            let (da, db) = (a.should_drop(), b.should_drop());
            assert_eq!(da, db);
            if !da {
                assert_eq!(a.jitter(), b.jitter());
            }
        }
    }

    #[test]
    fn jitter_is_bounded() {
        let cfg = LinkFault {
            loss: LossModel::none(),
            jitter: SimDuration::from_millis(2),
        };
        let mut s = LinkFaultState::new(cfg, rng(8));
        for _ in 0..10_000 {
            assert!(s.jitter() <= SimDuration::from_millis(2));
        }
    }

    #[test]
    fn plan_validation_and_recovery_bound() {
        let mut plan = FaultPlan::iid_loss(0.1);
        assert!(plan.validate().is_ok());
        assert_eq!(
            plan.recovery_bound_secs(),
            None,
            "unwindowed loss never clears"
        );
        plan.window = Some(FaultWindow {
            start_secs: 10.0,
            end_secs: 60.0,
        });
        plan.flaps.push(LinkFlap {
            link: 2,
            down_at_secs: 20.0,
            up_at_secs: 90.0,
        });
        plan.crashes.push(RouterCrash {
            router: 1,
            crash_at_secs: 30.0,
            restart_at_secs: 45.0,
        });
        assert!(plan.validate().is_ok());
        assert_eq!(plan.recovery_bound_secs(), Some(90.0));
        assert!(FaultPlan::iid_loss(1.5).validate().is_err());
        let bad_flap = FaultPlan {
            flaps: vec![LinkFlap {
                link: 0,
                down_at_secs: 5.0,
                up_at_secs: 5.0,
            }],
            ..FaultPlan::default()
        };
        assert!(bad_flap.validate().is_err());
    }

    #[test]
    fn default_plan_is_none() {
        assert!(FaultPlan::default().is_none());
        assert!(!FaultPlan::iid_loss(0.01).is_none());
        assert_eq!(FaultPlan::default().recovery_bound_secs(), Some(0.0));
    }
}
