//! Frames: what travels over links.
//!
//! The network layer is deliberately payload-agnostic — a frame is wire
//! bytes plus a small accounting class. Upper layers (the IPv6 stack) parse
//! the bytes. The class drives the per-link byte accounting that the
//! experiment harness turns into the paper's "bandwidth consumption"
//! figures.

use bytes::Bytes;

/// Accounting class of a frame. The simulator keeps per-link byte/frame
/// counters indexed by class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum FrameClass {
    /// Multicast application data.
    MulticastData = 0,
    /// Unicast application data.
    UnicastData = 1,
    /// MLD control messages (queries/reports/done).
    MldControl = 2,
    /// PIM-DM control messages (hello/prune/join/graft/assert).
    PimControl = 3,
    /// Mobile IPv6 signalling (binding updates/acks, router adverts).
    MobilityControl = 4,
    /// Tunnelled packets (IPv6-in-IPv6) carrying multicast data.
    TunnelData = 5,
    /// Anything else.
    Other = 6,
}

/// Number of distinct frame classes (array sizing).
pub const FRAME_CLASS_COUNT: usize = 7;

impl FrameClass {
    pub const ALL: [FrameClass; FRAME_CLASS_COUNT] = [
        FrameClass::MulticastData,
        FrameClass::UnicastData,
        FrameClass::MldControl,
        FrameClass::PimControl,
        FrameClass::MobilityControl,
        FrameClass::TunnelData,
        FrameClass::Other,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            FrameClass::MulticastData => "mcast_data",
            FrameClass::UnicastData => "unicast_data",
            FrameClass::MldControl => "mld_ctrl",
            FrameClass::PimControl => "pim_ctrl",
            FrameClass::MobilityControl => "mip6_ctrl",
            FrameClass::TunnelData => "tunnel_data",
            FrameClass::Other => "other",
        }
    }

    /// Is this a control-plane class (signalling overhead in the paper's
    /// terms)?
    pub fn is_control(self) -> bool {
        matches!(
            self,
            FrameClass::MldControl | FrameClass::PimControl | FrameClass::MobilityControl
        )
    }
}

/// Link-layer destination of a frame: broadcast/multicast (delivered to
/// every attached interface) or a specific node's NIC. This mirrors
/// Ethernet MAC addressing — a unicast IPv6 packet is carried in a frame
/// addressed to one next hop, so the other routers on a multi-router LAN
/// do not also forward it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L2Dest {
    Broadcast,
    Node(crate::ids::NodeId),
}

/// A frame on a link: wire bytes plus accounting class. Cloning is cheap
/// (`Bytes` is reference-counted), which matters because multi-access links
/// deliver one transmission to every attached interface.
#[derive(Clone, Debug)]
pub struct Frame {
    pub bytes: Bytes,
    pub class: FrameClass,
    pub l2: L2Dest,
    /// Simulation-side provenance tag (not on the wire): set by the
    /// emitter so receivers can attribute a frame to the exact emission
    /// event that produced it. 0 = untagged.
    pub tag: u64,
    /// Simulation-side marker: the corruption process mutated this copy's
    /// bytes in flight. Receivers of integrity-protected signalling
    /// (Binding Updates/Acks carry a mandatory authenticator per
    /// draft-ietf-mobileip-ipv6-10 §4.4) consult it to model the
    /// verification failure an authenticator would produce; checksummed
    /// payloads (ICMPv6) catch the damage from the bytes themselves.
    pub damaged: bool,
}

impl Frame {
    /// A broadcast/multicast frame (delivered to everyone on the link).
    pub fn new(bytes: Bytes, class: FrameClass) -> Self {
        Frame {
            bytes,
            class,
            l2: L2Dest::Broadcast,
            tag: 0,
            damaged: false,
        }
    }

    /// A frame addressed to one node's interface on the link.
    pub fn unicast(bytes: Bytes, class: FrameClass, to: crate::ids::NodeId) -> Self {
        Frame {
            bytes,
            class,
            l2: L2Dest::Node(to),
            tag: 0,
            damaged: false,
        }
    }

    /// Attach a provenance tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; FRAME_CLASS_COUNT];
        for c in FrameClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn control_classification() {
        assert!(FrameClass::MldControl.is_control());
        assert!(FrameClass::PimControl.is_control());
        assert!(FrameClass::MobilityControl.is_control());
        assert!(!FrameClass::MulticastData.is_control());
        assert!(!FrameClass::TunnelData.is_control());
    }

    #[test]
    fn frame_len() {
        let f = Frame::new(Bytes::from_static(&[1, 2, 3]), FrameClass::Other);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = FrameClass::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FRAME_CLASS_COUNT);
    }
}

#[cfg(test)]
mod l2_tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn constructors_set_l2() {
        let b = Frame::new(Bytes::from_static(&[1]), FrameClass::Other);
        assert_eq!(b.l2, L2Dest::Broadcast);
        let u = Frame::unicast(Bytes::from_static(&[1]), FrameClass::Other, NodeId(4));
        assert_eq!(u.l2, L2Dest::Node(NodeId(4)));
    }
}
