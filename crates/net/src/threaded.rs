//! The threaded sharded executor: per-shard worker threads under a
//! streaming conservative-clock protocol, byte-identical to the sequential
//! loop.
//!
//! # Protocol
//!
//! Execution proceeds in **epochs**: script-to-script intervals (scripts
//! may rewire arbitrary world state, so they are global barriers and run
//! inline between epochs). At an epoch boundary the driver pops every
//! pending event before the next script key, partitions them by owning
//! worker (contiguous shard ranges), moves the targeted node slots onto
//! the workers, and spawns one thread per worker inside a
//! [`std::thread::scope`].
//!
//! Within an epoch, workers dispatch their events **concurrently** but
//! never ahead of a conservative **grant** from the coordinator: worker
//! `u` may dispatch an entry keyed `(time, seq)` only while that key is
//! below its grant. The grant trails the *global* virtual time — the
//! least lower bound of what any worker (the granted one included) might
//! still produce — by the lookahead `L` (a lower bound on every link's
//! propagation delay). Every unmaterialized event is the effect of a
//! dispatch at or after that minimum, so it lands at `GVT + L` or later:
//! at or past every grant, never below one. (The granted worker's own
//! bound must participate — a frame it sends can be delivered on a peer,
//! answered, and forwarded straight back into its own shard.)
//!
//! Dispatching a callback on a worker produces no immediate observable
//! side effects. Everything a behavior does — traces, probe notifications,
//! frame transmissions, timer arms/cancels, deferred recorder mutations —
//! is captured as an ordered op list in a [`Rec`] record. Workers stream
//! records to the coordinator, which merges all streams in global
//! `(time, seq)` order and **replays** the ops: trace events hit the real
//! tracer, probe calls hit the real probe, and every `schedule` the
//! sequential loop would have performed reserves the *same* sequence
//! number from the real queue (records replay in the sequential dispatch
//! order, and ops within a record replay in program order, so the
//! `reserve_seq` stream is exactly the sequential `schedule` stream).
//! Scheduled events targeting another worker are forwarded mid-epoch
//! (counted as handoffs); events at or beyond the epoch end go back into
//! the global queue.
//!
//! Worker-minted events (a transmission scheduling a local delivery, a
//! timer arming) do not know their global sequence yet: the worker keys
//! them `(time, mint#)` and the coordinator streams the assigned sequence
//! back in replay order. Until the assignment arrives the entry sorts by
//! `(time, 0)`, which is conservative — a minted entry only dispatches
//! strictly below the grant *time*, never on a tie.
//!
//! Timers armed on a worker return a **provenance id**
//! (`1<<63 | worker<<48 | count`), deterministic in the arming node's own
//! order. If the timer survives the epoch, the driver records the alias
//! provenance-id → real-sequence on the [`World`] so later cancels resolve
//! through either id under any backend.
//!
//! # Determinism argument
//!
//! - Replay order is the global `(time, seq)` order, the sequential
//!   dispatch order; ops within a record are in program order. Hence the
//!   byte streams (trace, probe/oracle, recorder) and all sequence
//!   numbers are identical to the sequential run.
//! - Values a behavior observes *during* dispatch depend only on state
//!   confined to its worker for the epoch: its shard's node slots, the
//!   epoch-constant topology snapshot, and (for fault RNG draws) fault
//!   state of links wholly owned by the worker. Epochs where a faulted
//!   link spans workers (or lookahead is zero) fall back to the inline
//!   loop, so RNG draw order always matches the sequential loop.
//! - Counters and link stats are additive: workers accumulate deltas and
//!   the driver merges them at the epoch join, where only sums (never
//!   intermediate values) are observable (scripts run at barriers).
//!
//! The one intentional divergence: the queue's `depth_high_water`
//! diagnostic reads lower under threading (in-epoch events live on
//! workers, not in the global queue). It is only reported by the
//! profiler, and profiled runs always use the inline backend.

use crate::fault::{CorruptionKind, LinkFaultState};
use crate::frame::{Frame, L2Dest};
use crate::ids::{IfIndex, LinkId, NodeId, TimerKey};
use crate::link::{schedule_transmission, Attachment, LinkParams, LinkStats};
use crate::world::{Ctx, NodeSlot, ShardPlan, ShardRunStats, WindowRecon, World, WorldEvent};
use mobicast_sim::defer::{self, DeferredOp};
use mobicast_sim::trace::{Fields, TraceEvent};
use mobicast_sim::{Counters, EventId, SimDuration, SimTime, TraceCategory};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Instant;

/// Global `(time, sequence)` event key; the merge order of everything.
type Key = (SimTime, u64);

/// "No visible id": the event was never exposed to a behavior as an
/// [`EventId`] (frame deliveries). Never collides with real sequences
/// (the queue counts up from 0) or provenance ids (top bit + counter).
const NO_VIS: u64 = u64::MAX;

/// Top bit marking worker-issued provenance timer ids.
const PROV_BIT: u64 = 1 << 63;

/// Flush the record stream to the coordinator at this many records.
const FLUSH_RECORDS: usize = 192;

/// Re-drain the inbox after this many dispatches in one burst.
const DRAIN_EVERY: usize = 64;

/// Which worker dispatches a shard: contiguous ranges, deterministic in
/// `(shard, n_shards, workers)` only.
fn worker_of(shard: u32, n_shards: u32, workers: usize) -> usize {
    ((shard as usize * workers) / n_shards as usize).min(workers - 1)
}

/// A [`WorldEvent`] that can cross threads (scripts never enter epochs).
#[derive(Clone)]
enum WorkerEvent {
    Deliver {
        node: NodeId,
        ifindex: IfIndex,
        link: LinkId,
        frame: Frame,
    },
    Timer {
        node: NodeId,
        key: TimerKey,
        incarnation: u64,
    },
}

impl WorkerEvent {
    fn target(&self) -> NodeId {
        match self {
            WorkerEvent::Deliver { node, .. } | WorkerEvent::Timer { node, .. } => *node,
        }
    }

    fn from_world(ev: WorldEvent) -> Option<WorkerEvent> {
        match ev {
            WorldEvent::Deliver {
                node,
                ifindex,
                link,
                frame,
            } => Some(WorkerEvent::Deliver {
                node,
                ifindex,
                link,
                frame,
            }),
            WorldEvent::Timer {
                node,
                key,
                incarnation,
            } => Some(WorkerEvent::Timer {
                node,
                key,
                incarnation,
            }),
            WorldEvent::Script(_) => None,
        }
    }

    fn into_world(self) -> WorldEvent {
        match self {
            WorkerEvent::Deliver {
                node,
                ifindex,
                link,
                frame,
            } => WorldEvent::Deliver {
                node,
                ifindex,
                link,
                frame,
            },
            WorkerEvent::Timer {
                node,
                key,
                incarnation,
            } => WorldEvent::Timer {
                node,
                key,
                incarnation,
            },
        }
    }
}

/// One captured side effect of a dispatch, replayed by the coordinator in
/// global order. Op order within a record is the behavior's program order.
enum Op {
    Trace(TraceEvent),
    ProbeTx {
        node: NodeId,
        ifindex: IfIndex,
        link: LinkId,
        frame: Frame,
    },
    ProbeRx {
        node: NodeId,
        ifindex: IfIndex,
        link: LinkId,
        frame: Frame,
    },
    /// The worker minted a local event here; the coordinator reserves the
    /// next global sequence and streams it back (in mint order).
    Mint,
    /// The worker scheduled an event owned by another worker (or beyond
    /// the epoch): the coordinator reserves the sequence and routes it.
    Forward {
        at: SimTime,
        ev: WorkerEvent,
    },
    /// Cancel of a timer pending in the global queue (armed in an earlier
    /// epoch); `vis` is the id the behavior holds.
    CancelGlobal {
        vis: u64,
    },
    /// Side effects buffered through [`mobicast_sim::defer`] (recorder
    /// rows, series samples): replayed verbatim.
    Deferred(Vec<DeferredOp>),
}

/// How a dispatched record is keyed into the global merge order.
enum RecKey {
    /// The entry carried a coordinator-assigned global sequence.
    Assigned(u64),
    /// The entry was still awaiting assignment; the coordinator resolves
    /// the sequence from its own mint ledger (the minting record always
    /// precedes this one in the same stream).
    Mint(u64),
}

/// One dispatched event: where it sorts, and everything it did.
struct Rec {
    at: SimTime,
    node: NodeId,
    key: RecKey,
    ops: Vec<Op>,
}

enum ToWorker {
    /// An event with its global sequence (cross-worker forward or a
    /// same-time handoff). `vis` is the id the behavior holds for it
    /// (timers), or [`NO_VIS`].
    Event {
        at: SimTime,
        seq: u64,
        vis: u64,
        ev: WorkerEvent,
    },
    /// Global sequences for this worker's oldest unassigned mints, in
    /// mint order.
    Assign(Vec<u64>),
    /// Dispatch permission: entries keyed strictly below this (minted
    /// entries: strictly below its time) may run.
    Grant(Key),
    /// Epoch over: ship state back.
    Finish,
}

enum ToCoord {
    Batch {
        worker: usize,
        recs: Vec<Rec>,
        /// Lower bound on the key of any record this worker produces
        /// after this batch (min over still-pending entries).
        frontier: Key,
        /// Total `Event` messages applied so far (ack counter).
        events_acked: u64,
    },
    Done {
        worker: usize,
        join: Box<WorkerJoin>,
    },
    Panicked,
}

/// Everything a worker hands back at the epoch barrier.
struct WorkerJoin {
    slots: Vec<(u32, NodeSlot)>,
    faults: Vec<(u32, LinkFaultState)>,
    link_stats: Vec<(u32, LinkStats)>,
    counters: Counters,
    node_counters: Vec<(u32, Counters)>,
    /// Pending entries at/beyond the epoch end: `(at, seq, vis, ev)`.
    pending: Vec<(SimTime, u64, u64, WorkerEvent)>,
    next_prov: u64,
    stall_secs: f64,
}

/// Epoch-constant snapshot of one link (scripts, the only mutators of
/// topology and link status, run at barriers).
struct LinkMeta {
    params: LinkParams,
    up: bool,
    members: Vec<Attachment>,
}

/// A pending event on a worker.
struct Pend {
    vis: u64,
    ev: WorkerEvent,
}

/// FIFO ledger entry for a minted-but-unassigned event.
struct MintSlot {
    mint: u64,
    at: SimTime,
}

/// Where a live timer's pending entry currently sits.
enum Loc {
    Assigned(Key),
    Minted(Key),
}

enum Pick {
    Assigned(Key),
    Minted(Key),
}

/// Everything a worker thread starts an epoch with.
struct WorkerSeed {
    worker: usize,
    workers: usize,
    n_shards: u32,
    epoch_end: Key,
    grant: Key,
    now: SimTime,
    links: Arc<Vec<LinkMeta>>,
    plan: Arc<ShardPlan>,
    slots: HashMap<u32, NodeSlot>,
    faults: HashMap<u32, LinkFaultState>,
    enabled_mask: u16,
    probe_active: bool,
    next_prov: u64,
    batch: Vec<(SimTime, u64, u64, WorkerEvent)>,
}

/// Per-worker execution state; doubles as the behavior-facing shard
/// context ([`Ctx`] dispatches into it during threaded epochs).
pub(crate) struct ShardCtx {
    worker: usize,
    workers: usize,
    n_shards: u32,
    epoch_end: Key,
    grant: Key,
    now: SimTime,
    links: Arc<Vec<LinkMeta>>,
    plan: Arc<ShardPlan>,
    slots: HashMap<u32, NodeSlot>,
    faults: HashMap<u32, LinkFaultState>,
    enabled_mask: u16,
    probe_active: bool,
    /// Ops of the record being built (RefCell: traces take `&self`).
    ops: RefCell<Vec<Op>>,
    out: Vec<Rec>,
    pending_assigned: BTreeMap<Key, Pend>,
    /// Minted entries keyed `(time, mint#)` until their sequence arrives.
    pending_minted: BTreeMap<Key, Pend>,
    mints_fifo: VecDeque<MintSlot>,
    /// Mints dispatched or cancelled before assignment: their incoming
    /// sequence is consumed silently.
    dead_mints: HashSet<u64>,
    /// Live timer id → pending entry location.
    timer_index: HashMap<u64, Loc>,
    /// Timer ids that fired this epoch (cancel returns false).
    fired: HashSet<u64>,
    next_mint: u64,
    next_prov: u64,
    events_applied: u64,
    last_frontier: Option<Key>,
    last_acked: u64,
    stall_secs: f64,
    link_stats: HashMap<u32, LinkStats>,
    counters: Counters,
    node_counters: HashMap<u32, Counters>,
}

impl ShardCtx {
    fn new(seed: WorkerSeed) -> ShardCtx {
        let mut ctx = ShardCtx {
            worker: seed.worker,
            workers: seed.workers,
            n_shards: seed.n_shards,
            epoch_end: seed.epoch_end,
            grant: seed.grant,
            now: seed.now,
            links: seed.links,
            plan: seed.plan,
            slots: seed.slots,
            faults: seed.faults,
            enabled_mask: seed.enabled_mask,
            probe_active: seed.probe_active,
            ops: RefCell::new(Vec::new()),
            out: Vec::new(),
            pending_assigned: BTreeMap::new(),
            pending_minted: BTreeMap::new(),
            mints_fifo: VecDeque::new(),
            dead_mints: HashSet::new(),
            timer_index: HashMap::new(),
            fired: HashSet::new(),
            next_mint: 0,
            next_prov: seed.next_prov,
            events_applied: 0,
            last_frontier: None,
            last_acked: 0,
            stall_secs: 0.0,
            link_stats: HashMap::new(),
            counters: Counters::new(),
            node_counters: HashMap::new(),
        };
        for (at, seq, vis, ev) in seed.batch {
            if vis != NO_VIS {
                ctx.timer_index.insert(vis, Loc::Assigned((at, seq)));
            }
            ctx.pending_assigned.insert((at, seq), Pend { vis, ev });
        }
        ctx
    }

    // ---- behavior-facing surface (mirrors the world-backed Ctx) ----

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn link_of(&self, node: NodeId, ifindex: IfIndex) -> Option<LinkId> {
        self.slot(node).ifaces[usize::from(ifindex)].link
    }

    pub(crate) fn n_ifaces(&self, node: NodeId) -> usize {
        self.slot(node).ifaces.len()
    }

    pub(crate) fn link_members(&self, link: LinkId) -> Vec<(NodeId, IfIndex)> {
        self.links[link.index()]
            .members
            .iter()
            .map(|a| (a.node, a.ifindex))
            .collect()
    }

    pub(crate) fn counters(&mut self) -> &mut Counters {
        &mut self.counters
    }

    pub(crate) fn trace(&self, node: NodeId, category: TraceCategory, f: impl FnOnce() -> String) {
        if self.enabled_mask & category.bit() != 0 {
            self.ops.borrow_mut().push(Op::Trace(TraceEvent::note(
                self.now,
                category,
                node.index(),
                f(),
            )));
        }
    }

    pub(crate) fn trace_event(
        &self,
        node: NodeId,
        category: TraceCategory,
        kind: &'static str,
        fields: impl FnOnce() -> Fields,
    ) {
        if self.enabled_mask & category.bit() != 0 {
            self.ops.borrow_mut().push(Op::Trace(TraceEvent::typed(
                self.now,
                category,
                node.index(),
                kind,
                fields(),
            )));
        }
    }

    pub(crate) fn set_timer_at(&mut self, node: NodeId, at: SimTime, key: TimerKey) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        let vis = PROV_BIT | ((self.worker as u64) << 48) | self.next_prov;
        self.next_prov += 1;
        let incarnation = self.slot(node).incarnation;
        self.mint_local(
            at,
            vis,
            WorkerEvent::Timer {
                node,
                key,
                incarnation,
            },
        );
        EventId::from_seq(vis)
    }

    /// Cancel semantics mirror the sequential queue for every observable
    /// case. The one divergence: re-cancelling an id that already fired in
    /// an *earlier* epoch returns true instead of false — no behavior in
    /// the tree observes the return value, and the spurious global cancel
    /// resolves to an id that cannot be pending.
    pub(crate) fn cancel_timer(&mut self, id: EventId) -> bool {
        let vis = id.seq();
        if let Some(loc) = self.timer_index.remove(&vis) {
            match loc {
                Loc::Assigned(k) => {
                    self.pending_assigned.remove(&k);
                }
                Loc::Minted(k) => {
                    self.pending_minted.remove(&k);
                    self.dead_mints.insert(k.1);
                }
            }
            return true;
        }
        if self.fired.contains(&vis) {
            return false;
        }
        self.ops.borrow_mut().push(Op::CancelGlobal { vis });
        true
    }

    /// Mirror of [`World::send_from`] against the worker's epoch-local
    /// state: same drop/fault/corruption decision order, same counters,
    /// same trace points — captured as ops instead of applied.
    pub(crate) fn send_from(&mut self, node: NodeId, ifindex: IfIndex, frame: Frame) -> bool {
        let now = self.now;
        let Some(link_id) = self.link_of(node, ifindex) else {
            self.counters.inc("world.frames_dropped_detached");
            return false;
        };
        let links = self.links.clone();
        let meta = &links[link_id.index()];
        if !meta.up {
            self.stat(link_id).record_drop(&frame);
            self.counters.inc("faults.frames_dropped_link_down");
            self.node_counter(node).inc("framesDroppedByFault");
            return true;
        }
        self.stat(link_id).record(&frame);
        if self.probe_active {
            self.ops.borrow_mut().push(Op::ProbeTx {
                node,
                ifindex,
                link: link_id,
                frame: frame.clone(),
            });
        }
        let iface = &mut self.slot_mut(node).ifaces[usize::from(ifindex)];
        let (arrival, free) = schedule_transmission(&meta.params, now, iface.tx_free, frame.len());
        iface.tx_free = free;
        for member in &meta.members {
            if member.node == node && member.ifindex == ifindex {
                continue;
            }
            if let L2Dest::Node(to) = frame.l2 {
                if member.node != to {
                    continue;
                }
            }
            let mut arrival = arrival;
            let mut dropped = false;
            let mut corrupted = None;
            let mut deliver_bytes = None;
            let mut duplicate_at = None;
            if let Some(fault) = self.faults.get_mut(&link_id.0) {
                if fault.should_drop() {
                    dropped = true;
                } else {
                    arrival += fault.jitter();
                    if let Some(kind) = fault.corruption() {
                        corrupted = Some(kind);
                        match kind {
                            CorruptionKind::Duplicate => {
                                duplicate_at = Some(arrival + fault.replay_delay());
                            }
                            CorruptionKind::Replay => {
                                arrival += fault.replay_delay();
                            }
                            _ => deliver_bytes = Some(fault.corrupt_bytes(kind, &frame.bytes)),
                        }
                    }
                }
            }
            if dropped {
                self.stat(link_id).record_drop(&frame);
                self.counters.inc("faults.frames_dropped_loss");
                self.node_counter(member.node).inc("framesDroppedByFault");
                continue;
            }
            if let Some(kind) = corrupted {
                self.stat(link_id).record_corruption(&frame);
                self.counters.inc("faults.frames_corrupted");
                self.counters.inc(kind.counter());
                self.node_counter(member.node).inc("framesCorruptedOnLink");
                if self.enabled_mask & TraceCategory::Fault.bit() != 0 {
                    self.ops.borrow_mut().push(Op::Trace(TraceEvent::typed(
                        now,
                        TraceCategory::Fault,
                        member.node.index(),
                        "corrupted",
                        vec![
                            ("link", link_id.0.into()),
                            ("kind", kind.name().into()),
                            ("class", frame.class.name().into()),
                        ],
                    )));
                }
            }
            let mut copy = frame.clone();
            if let Some(bytes) = deliver_bytes {
                copy.bytes = bytes;
                copy.damaged = true;
            }
            if let Some(dup_at) = duplicate_at {
                self.schedule_copy(
                    dup_at,
                    WorkerEvent::Deliver {
                        node: member.node,
                        ifindex: member.ifindex,
                        link: link_id,
                        frame: frame.clone(),
                    },
                );
            }
            self.schedule_copy(
                arrival,
                WorkerEvent::Deliver {
                    node: member.node,
                    ifindex: member.ifindex,
                    link: link_id,
                    frame: copy,
                },
            );
        }
        true
    }

    // ---- internals ----

    fn slot(&self, node: NodeId) -> &NodeSlot {
        #[allow(clippy::expect_used)]
        self.slots
            .get(&node.0)
            .expect("node dispatched on the wrong worker")
    }

    fn slot_mut(&mut self, node: NodeId) -> &mut NodeSlot {
        #[allow(clippy::expect_used)]
        self.slots
            .get_mut(&node.0)
            .expect("node dispatched on the wrong worker")
    }

    fn stat(&mut self, link: LinkId) -> &mut LinkStats {
        self.link_stats.entry(link.0).or_default()
    }

    fn node_counter(&mut self, node: NodeId) -> &mut Counters {
        self.node_counters.entry(node.0).or_default()
    }

    /// Route a newly scheduled event: own worker → local mint; other
    /// worker (or any post-epoch arrival, which the coordinator detects
    /// from the assigned sequence) → forward op.
    fn schedule_copy(&mut self, at: SimTime, ev: WorkerEvent) {
        let target = worker_of(self.plan.shard_of(ev.target()), self.n_shards, self.workers);
        if target == self.worker {
            self.mint_local(at, NO_VIS, ev);
        } else {
            self.ops.borrow_mut().push(Op::Forward { at, ev });
        }
    }

    fn mint_local(&mut self, at: SimTime, vis: u64, ev: WorkerEvent) {
        let mint = self.next_mint;
        self.next_mint += 1;
        self.pending_minted.insert((at, mint), Pend { vis, ev });
        self.mints_fifo.push_back(MintSlot { mint, at });
        self.ops.borrow_mut().push(Op::Mint);
        if vis != NO_VIS {
            self.timer_index.insert(vis, Loc::Minted((at, mint)));
        }
    }

    fn assign_one(&mut self, seq: u64) {
        #[allow(clippy::expect_used)]
        let slot = self
            .mints_fifo
            .pop_front()
            .expect("sequence assigned with no mint outstanding");
        if self.dead_mints.remove(&slot.mint) {
            return; // dispatched or cancelled before assignment
        }
        #[allow(clippy::expect_used)]
        let pend = self
            .pending_minted
            .remove(&(slot.at, slot.mint))
            .expect("minted entry vanished");
        if pend.vis != NO_VIS {
            self.timer_index
                .insert(pend.vis, Loc::Assigned((slot.at, seq)));
        }
        self.pending_assigned.insert((slot.at, seq), pend);
    }

    /// Returns true on `Finish`.
    fn apply(&mut self, msg: ToWorker) -> bool {
        match msg {
            ToWorker::Event { at, seq, vis, ev } => {
                self.events_applied += 1;
                if vis != NO_VIS {
                    self.timer_index.insert(vis, Loc::Assigned((at, seq)));
                }
                self.pending_assigned.insert((at, seq), Pend { vis, ev });
            }
            ToWorker::Assign(seqs) => {
                for seq in seqs {
                    self.assign_one(seq);
                }
            }
            ToWorker::Grant(g) => {
                if g > self.grant {
                    self.grant = g;
                }
            }
            ToWorker::Finish => return true,
        }
        false
    }

    /// Next dispatchable entry under the current grant. Assigned entries
    /// dispatch below the grant key; minted entries (unknown sequence)
    /// only strictly below the grant time. On an equal-time tie the
    /// assigned entry goes first: the coordinator streams assignments in
    /// sequence order, so a still-unassigned own mint always has a larger
    /// sequence than every assigned entry already received.
    fn pick(&self) -> Option<Pick> {
        let a = self.pending_assigned.keys().next().copied();
        let m = self.pending_minted.keys().next().copied();
        let assigned_first = match (a, m) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(ak), Some(mk)) => ak.0 <= mk.0,
        };
        if assigned_first {
            let k = a?;
            (k < self.grant).then_some(Pick::Assigned(k))
        } else {
            let k = m?;
            (k.0 < self.grant.0).then_some(Pick::Minted(k))
        }
    }

    fn dispatch_one(&mut self, pick: Pick) {
        let (key, reckey, pend) = match pick {
            Pick::Assigned(k) => {
                #[allow(clippy::expect_used)]
                let p = self.pending_assigned.remove(&k).expect("picked entry");
                (k, RecKey::Assigned(k.1), p)
            }
            Pick::Minted(k) => {
                #[allow(clippy::expect_used)]
                let p = self.pending_minted.remove(&k).expect("picked entry");
                self.dead_mints.insert(k.1);
                (k, RecKey::Mint(k.1), p)
            }
        };
        if pend.vis != NO_VIS {
            self.timer_index.remove(&pend.vis);
            self.fired.insert(pend.vis);
        }
        self.now = key.0;
        let node = pend.ev.target();
        debug_assert!(self.ops.borrow().is_empty());
        self.run_event(pend.ev);
        let ops = self.ops.replace(Vec::new());
        self.out.push(Rec {
            at: key.0,
            node,
            key: reckey,
            ops,
        });
    }

    /// Mirror of `World::dispatch` for deliveries and timers: identical
    /// drop paths, counters and probe points.
    fn run_event(&mut self, ev: WorkerEvent) {
        match ev {
            WorkerEvent::Deliver {
                node,
                ifindex,
                link,
                frame,
            } => {
                if self.slot(node).ifaces[usize::from(ifindex)].link != Some(link) {
                    self.counters.inc("world.frames_missed_due_to_move");
                    return;
                }
                if !self.links[link.index()].up {
                    self.stat(link).record_drop(&frame);
                    self.counters.inc("faults.frames_dropped_link_down");
                    self.node_counter(node).inc("framesDroppedByFault");
                    return;
                }
                if self.slot(node).crashed {
                    self.stat(link).record_drop(&frame);
                    self.counters.inc("faults.frames_dropped_node_crashed");
                    self.node_counter(node).inc("framesDroppedByFault");
                    return;
                }
                if self.probe_active {
                    self.ops.borrow_mut().push(Op::ProbeRx {
                        node,
                        ifindex,
                        link,
                        frame: frame.clone(),
                    });
                }
                self.with_node(node, |b, ctx| b.on_frame(ctx, ifindex, &frame));
            }
            WorkerEvent::Timer {
                node,
                key,
                incarnation,
            } => {
                let slot = self.slot(node);
                if slot.crashed || slot.incarnation != incarnation {
                    self.counters.inc("faults.timers_dropped_stale");
                    return;
                }
                self.with_node(node, |b, ctx| b.on_timer(ctx, key));
            }
        }
    }

    fn with_node(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn crate::world::NodeBehavior, &mut Ctx<'_>),
    ) {
        #[allow(clippy::expect_used)]
        let mut behavior = self
            .slot_mut(node)
            .behavior
            .take()
            .expect("node behavior re-entered");
        defer::begin();
        {
            let mut ctx = Ctx::for_shard(self, node);
            f(behavior.as_mut(), &mut ctx);
        }
        let deferred = defer::take();
        if !deferred.is_empty() {
            self.ops.borrow_mut().push(Op::Deferred(deferred));
        }
        self.slot_mut(node).behavior = Some(behavior);
    }

    /// Lower bound on the key of any record this worker produces next.
    fn frontier(&self) -> Key {
        let a = self.pending_assigned.keys().next().copied();
        let m = self.pending_minted.keys().next().map(|k| (k.0, 0));
        match (a, m) {
            (None, None) => self.epoch_end,
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (Some(x), Some(y)) => x.min(y),
        }
    }

    fn flush(&mut self, tx: &Sender<ToCoord>) {
        let frontier = self.frontier();
        if self.out.is_empty()
            && self.last_frontier == Some(frontier)
            && self.last_acked == self.events_applied
        {
            return;
        }
        self.last_frontier = Some(frontier);
        self.last_acked = self.events_applied;
        let recs = std::mem::take(&mut self.out);
        let _ = tx.send(ToCoord::Batch {
            worker: self.worker,
            recs,
            frontier,
            events_acked: self.events_applied,
        });
    }

    fn finish(mut self, tx: &Sender<ToCoord>) {
        self.flush(tx);
        assert!(
            self.pending_minted.is_empty() && self.mints_fifo.is_empty(),
            "epoch finished with unassigned mints"
        );
        let pending = self
            .pending_assigned
            .into_iter()
            .map(|((at, seq), p)| (at, seq, p.vis, p.ev))
            .collect();
        let join = WorkerJoin {
            slots: self.slots.drain().collect(),
            faults: self.faults.drain().collect(),
            link_stats: self.link_stats.drain().collect(),
            counters: self.counters,
            node_counters: self.node_counters.drain().collect(),
            pending,
            next_prov: self.next_prov,
            stall_secs: self.stall_secs,
        };
        let _ = tx.send(ToCoord::Done {
            worker: self.worker,
            join: Box::new(join),
        });
    }
}

fn worker_main(seed: WorkerSeed, rx: Receiver<ToWorker>, tx: Sender<ToCoord>) {
    let mut st = ShardCtx::new(seed);
    'outer: loop {
        loop {
            match rx.try_recv() {
                Ok(msg) => {
                    if st.apply(msg) {
                        break 'outer;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
        let mut burst = 0usize;
        while let Some(p) = st.pick() {
            st.dispatch_one(p);
            burst += 1;
            if st.out.len() >= FLUSH_RECORDS {
                st.flush(&tx);
            }
            if burst >= DRAIN_EVERY {
                break;
            }
        }
        st.flush(&tx);
        if burst == 0 {
            let waited = Instant::now();
            match rx.recv() {
                Ok(msg) => {
                    st.stall_secs += waited.elapsed().as_secs_f64();
                    if st.apply(msg) {
                        break 'outer;
                    }
                }
                Err(_) => break 'outer,
            }
        }
    }
    st.finish(&tx);
}

/// Coordinator-side view of one worker.
struct Port {
    tx: Sender<ToWorker>,
    /// Messages staged this cycle, in the per-channel order the FIFO
    /// correctness argument depends on (assignments and events must reach
    /// the worker in global sequence order).
    outq: Vec<ToWorker>,
    stream: VecDeque<Rec>,
    frontier: Key,
    granted: Key,
    /// Keys of events staged/sent but not yet acked (in send order).
    unacked: VecDeque<Key>,
    acked_events: u64,
    /// Mint number → assigned global sequence (resolves `RecKey::Mint`).
    mint_seqs: HashMap<u64, u64>,
    mint_count: u64,
}

impl Port {
    fn resolve_key(&self, rec: &Rec) -> Key {
        match rec.key {
            RecKey::Assigned(seq) => (rec.at, seq),
            RecKey::Mint(m) => {
                #[allow(clippy::expect_used)]
                let seq = *self
                    .mint_seqs
                    .get(&m)
                    .expect("minting record precedes in the same stream");
                (rec.at, seq)
            }
        }
    }

    /// Lower bound on the key of any record this worker may still
    /// produce: its stream head (or last reported frontier), and every
    /// event staged or in flight to it.
    fn bound(&self) -> Key {
        let mut b = match self.stream.front() {
            Some(rec) => self.resolve_key(rec),
            None => self.frontier,
        };
        for k in &self.unacked {
            if *k < b {
                b = *k;
            }
        }
        b
    }
}

/// Next grant: lookahead past the global virtual time (the least bound of
/// *every* worker, the granted worker's own included), capped at the exact
/// epoch-end key (entries at the epoch end time but below the barrier's
/// sequence may still dispatch).
///
/// The worker's own bound must participate: every unmaterialized event is
/// the effect of some dispatch at or after the GVT, so it lands at
/// `GVT + L` or later — at or past every grant, never below one. Granting
/// `min(other bounds) + L` instead would let a worker race past the point
/// where reflections of its *own* sends (delivered on a peer, answered,
/// and forwarded back) re-enter its shard, breaking dispatch order.
fn grant_for(bounds: &[Key], lookahead: SimDuration, epoch_end: Key) -> Key {
    match bounds.iter().map(|b| b.0).min() {
        None => epoch_end,
        Some(m) => {
            let g = m + lookahead;
            if g >= epoch_end.0 {
                epoch_end
            } else {
                (g, 0)
            }
        }
    }
}

/// True when some faulted link's members span more than one worker: the
/// loss/corruption RNG draw order could then differ from the sequential
/// loop, so the epoch must run inline.
fn has_cross_worker_fault(world: &World, plan: &ShardPlan, n_shards: u32, workers: usize) -> bool {
    world.links.iter().any(|link| {
        link.fault.is_some() && {
            let mut owner = None;
            link.members.iter().any(|a| {
                let w = worker_of(plan.shard_of(a.node), n_shards, workers);
                match owner {
                    None => {
                        owner = Some(w);
                        false
                    }
                    Some(o) => o != w,
                }
            })
        }
    })
}

/// Run the event loop until `t` with `workers` threads over `plan`'s
/// shards. Observably byte-identical to the sequential loop; called by
/// [`World::run`] for sharded plans with more than one worker (and no
/// profiler).
pub(crate) fn run_threaded(
    world: &mut World,
    t: SimTime,
    plan: &ShardPlan,
    workers: usize,
) -> ShardRunStats {
    world.start();
    let n_shards = plan.n_shards();
    let workers = workers.clamp(1, n_shards as usize);
    let mut recon = WindowRecon::new(n_shards as usize, workers, t, plan.lookahead());
    // The grant protocol is only sound for a lookahead no larger than the
    // fastest link (plans are free to claim more; the windows in the
    // stats still use the plan's figure, matching the inline backend).
    let lookahead = world
        .links
        .iter()
        .map(|l| l.params.delay)
        .min()
        .map_or(plan.lookahead(), |d| d.min(plan.lookahead()));
    let plan_arc = Arc::new(plan.clone());
    let mut next_prov: Vec<u64> = vec![0; workers];
    let mut handoff_total = 0u64;
    let mut stall_total = 0f64;

    while let Some(next) = world.queue.peek_time() {
        if next > t {
            break;
        }
        let epoch_end: Key = world
            .script_keys
            .iter()
            .next()
            .copied()
            .filter(|k| k.0 <= t)
            .unwrap_or((t + SimDuration::from_nanos(1), 0));
        if lookahead == SimDuration::ZERO
            || workers == 1
            || has_cross_worker_fault(world, plan, n_shards, workers)
        {
            // Inline epoch: identical to a slice of the windowed loop.
            while let Some(k) = world.queue.peek_key() {
                if k >= epoch_end {
                    break;
                }
                let Some((at, ev)) = world.pop_next() else {
                    break;
                };
                recon.on_event(at, ev.target_node().map(|n| plan.shard_of(n)));
                world.dispatch_counted(ev);
            }
        } else {
            run_epoch(
                world,
                &plan_arc,
                workers,
                epoch_end,
                lookahead,
                &mut recon,
                &mut next_prov,
                &mut handoff_total,
                &mut stall_total,
            );
        }
        // The epoch consumed everything below its end; dispatch the
        // barrier script if it is due.
        if world.script_keys.iter().next() == Some(&epoch_end) {
            let Some((at, ev)) = world.pop_next() else {
                break;
            };
            recon.on_event(at, None);
            world.dispatch_counted(ev);
        }
    }
    world.queue.advance_to(t);
    let mut stats = recon.finish();
    stats.handoff_events = handoff_total;
    stats.barrier_stall_secs = stall_total;
    stats
}

/// One threaded epoch: distribute, execute under grants, merge back.
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    world: &mut World,
    plan: &Arc<ShardPlan>,
    workers: usize,
    epoch_end: Key,
    lookahead: SimDuration,
    recon: &mut WindowRecon,
    next_prov: &mut [u64],
    handoff_total: &mut u64,
    stall_total: &mut f64,
) {
    let n_shards = plan.n_shards();
    // Partition this epoch's events by owning worker (in key order, so
    // each batch's first entry is its minimum).
    let mut batches: Vec<Vec<(SimTime, u64, u64, WorkerEvent)>> = vec![Vec::new(); workers];
    while let Some(k) = world.queue.peek_key() {
        if k >= epoch_end {
            break;
        }
        let Some((at, id, ev)) = world.queue.pop_entry() else {
            break;
        };
        let seq = id.seq();
        let vis = match world.alias_vis.remove(&seq) {
            Some(v) => {
                world.alias_real.remove(&v);
                v
            }
            None => match &ev {
                WorldEvent::Timer { .. } => seq,
                _ => NO_VIS,
            },
        };
        #[allow(clippy::expect_used)]
        let wev = WorkerEvent::from_world(ev).expect("script below the epoch end");
        let w = worker_of(plan.shard_of(wev.target()), n_shards, workers);
        batches[w].push((at, seq, vis, wev));
    }
    if batches.iter().all(|b| b.is_empty()) {
        return;
    }

    // Epoch-constant snapshots and per-worker state moves.
    let links_meta: Arc<Vec<LinkMeta>> = Arc::new(
        world
            .links
            .iter()
            .map(|l| LinkMeta {
                params: l.params,
                up: l.up,
                members: l.members.clone(),
            })
            .collect(),
    );
    let mut slot_maps: Vec<HashMap<u32, NodeSlot>> = (0..workers).map(|_| HashMap::new()).collect();
    for i in 0..world.nodes.len() {
        let w = worker_of(plan.shard_of(NodeId(i as u32)), n_shards, workers);
        let slot = std::mem::replace(
            &mut world.nodes[i],
            NodeSlot {
                behavior: None,
                ifaces: Vec::new(),
                incarnation: 0,
                crashed: false,
            },
        );
        slot_maps[w].insert(i as u32, slot);
    }
    let mut fault_maps: Vec<HashMap<u32, LinkFaultState>> =
        (0..workers).map(|_| HashMap::new()).collect();
    for (li, link) in world.links.iter_mut().enumerate() {
        if link.fault.is_some() {
            if let Some(first) = link.members.first() {
                let w = worker_of(plan.shard_of(first.node), n_shards, workers);
                if let Some(f) = link.fault.take() {
                    fault_maps[w].insert(li as u32, f);
                }
            }
        }
    }
    let enabled_mask = world.tracer.enabled_mask();
    let probe_active = world.probe.is_some();
    let now0 = world.queue.now();

    let fronts: Vec<Key> = batches
        .iter()
        .map(|b| b.first().map_or(epoch_end, |e| (e.0, e.1)))
        .collect();

    let (coord_tx, coord_rx) = channel::<ToCoord>();
    let mut ports: Vec<Port> = Vec::with_capacity(workers);
    let mut seeds: Vec<WorkerSeed> = Vec::with_capacity(workers);
    let mut slot_iter = slot_maps.into_iter();
    let mut fault_iter = fault_maps.into_iter();
    let mut batch_iter = batches.into_iter();
    let grant0 = grant_for(&fronts, lookahead, epoch_end);
    for (u, front) in fronts.iter().enumerate() {
        let grant = grant0;
        seeds.push(WorkerSeed {
            worker: u,
            workers,
            n_shards,
            epoch_end,
            grant,
            now: now0,
            links: links_meta.clone(),
            plan: plan.clone(),
            slots: slot_iter.next().unwrap_or_default(),
            faults: fault_iter.next().unwrap_or_default(),
            enabled_mask,
            probe_active,
            next_prov: next_prov[u],
            batch: batch_iter.next().unwrap_or_default(),
        });
        ports.push(Port {
            tx: {
                // placeholder; replaced when the channel is created below
                let (tx, _rx) = channel();
                tx
            },
            outq: Vec::new(),
            stream: VecDeque::new(),
            frontier: *front,
            granted: grant,
            unacked: VecDeque::new(),
            acked_events: 0,
            mint_seqs: HashMap::new(),
            mint_count: 0,
        });
    }

    std::thread::scope(|scope| {
        for (u, seed) in seeds.into_iter().enumerate() {
            let (wtx, wrx) = channel::<ToWorker>();
            ports[u].tx = wtx;
            let tx = coord_tx.clone();
            scope.spawn(move || {
                let panic_tx = tx.clone();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    worker_main(seed, wrx, tx);
                }));
                if let Err(payload) = result {
                    let _ = panic_tx.send(ToCoord::Panicked);
                    std::panic::resume_unwind(payload);
                }
            });
        }
        drop(coord_tx);

        let mut done_joins: Vec<Option<Box<WorkerJoin>>> = (0..workers).map(|_| None).collect();
        let mut dones = 0usize;
        let mut aborted = false;
        'epoch: loop {
            let mut activity = false;
            loop {
                match coord_rx.try_recv() {
                    Ok(msg) => {
                        activity = true;
                        if handle_msg(msg, &mut ports, &mut done_joins, &mut dones) {
                            aborted = true;
                            break 'epoch;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break 'epoch,
                }
            }
            activity |= process_streams(
                world,
                plan,
                recon,
                epoch_end,
                &mut ports,
                handoff_total,
                workers,
            ) > 0;
            pump_grants(&mut ports, lookahead, epoch_end);
            flush_ports(&mut ports);
            let complete = ports.iter().all(|p| {
                p.stream.is_empty()
                    && p.unacked.is_empty()
                    && p.outq.is_empty()
                    && p.frontier >= epoch_end
            });
            if complete {
                break;
            }
            if !activity {
                match coord_rx.recv() {
                    Ok(msg) => {
                        if handle_msg(msg, &mut ports, &mut done_joins, &mut dones) {
                            aborted = true;
                            break 'epoch;
                        }
                    }
                    Err(_) => break 'epoch,
                }
            }
        }
        if aborted {
            // A worker panicked: drop the channels so the rest exit, then
            // let the scope propagate the original panic on join.
            ports.clear();
            return;
        }
        for port in &ports {
            let _ = port.tx.send(ToWorker::Finish);
        }
        while dones < workers {
            match coord_rx.recv() {
                Ok(msg) => {
                    if handle_msg(msg, &mut ports, &mut done_joins, &mut dones) {
                        ports.clear();
                        return;
                    }
                }
                Err(_) => break,
            }
        }
        for (u, join) in done_joins.into_iter().enumerate() {
            #[allow(clippy::expect_used)]
            let join = join.expect("worker exited without reporting state");
            apply_join(world, *join, &mut next_prov[u], stall_total);
        }
    });
}

/// Returns true when the epoch must abort (a worker panicked).
fn handle_msg(
    msg: ToCoord,
    ports: &mut [Port],
    done_joins: &mut [Option<Box<WorkerJoin>>],
    dones: &mut usize,
) -> bool {
    match msg {
        ToCoord::Batch {
            worker,
            recs,
            frontier,
            events_acked,
        } => {
            let p = &mut ports[worker];
            p.stream.extend(recs);
            p.frontier = frontier;
            let newly = events_acked - p.acked_events;
            p.acked_events = events_acked;
            for _ in 0..newly {
                p.unacked.pop_front();
            }
            false
        }
        ToCoord::Done { worker, join } => {
            done_joins[worker] = Some(join);
            *dones += 1;
            false
        }
        ToCoord::Panicked => true,
    }
}

/// Replay every stream-head record that is provably next in global order
/// (its key is below every other worker's bound).
fn process_streams(
    world: &mut World,
    plan: &ShardPlan,
    recon: &mut WindowRecon,
    epoch_end: Key,
    ports: &mut [Port],
    handoff_total: &mut u64,
    workers: usize,
) -> usize {
    let n_shards = plan.n_shards();
    let mut replayed = 0usize;
    loop {
        let mut best: Option<(usize, Key)> = None;
        for (u, p) in ports.iter().enumerate() {
            if let Some(rec) = p.stream.front() {
                let k = p.resolve_key(rec);
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((u, k));
                }
            }
        }
        let Some((u, k)) = best else {
            break;
        };
        let safe = ports
            .iter()
            .enumerate()
            .all(|(v, p)| v == u || k < p.bound());
        if !safe {
            break;
        }
        #[allow(clippy::expect_used)]
        let rec = ports[u].stream.pop_front().expect("stream head");
        replay(
            world,
            plan,
            recon,
            epoch_end,
            ports,
            u,
            rec,
            handoff_total,
            n_shards,
            workers,
        );
        replayed += 1;
    }
    replayed
}

#[allow(clippy::too_many_arguments)]
fn replay(
    world: &mut World,
    plan: &ShardPlan,
    recon: &mut WindowRecon,
    epoch_end: Key,
    ports: &mut [Port],
    u: usize,
    rec: Rec,
    handoff_total: &mut u64,
    n_shards: u32,
    workers: usize,
) {
    world.events_executed += 1;
    recon.on_event(rec.at, Some(plan.shard_of(rec.node)));
    for op in rec.ops {
        match op {
            Op::Trace(ev) => world.tracer.emit_raw(ev),
            Op::ProbeTx {
                node,
                ifindex,
                link,
                frame,
            } => {
                if let Some(probe) = world.probe.clone() {
                    probe.on_transmit(rec.at, node, ifindex, link, &frame);
                }
            }
            Op::ProbeRx {
                node,
                ifindex,
                link,
                frame,
            } => {
                if let Some(probe) = world.probe.clone() {
                    probe.on_deliver(rec.at, node, ifindex, link, &frame);
                }
            }
            Op::Mint => {
                let seq = world.queue.reserve_seq();
                let p = &mut ports[u];
                let mint = p.mint_count;
                p.mint_count += 1;
                p.mint_seqs.insert(mint, seq);
                // Coalesce only into an Assign already at the queue tail:
                // assignments and events must stay in per-channel
                // sequence order (the FIFO tie-break depends on it).
                match p.outq.last_mut() {
                    Some(ToWorker::Assign(seqs)) => seqs.push(seq),
                    _ => p.outq.push(ToWorker::Assign(vec![seq])),
                }
            }
            Op::Forward { at, ev } => {
                let seq = world.queue.reserve_seq();
                if (at, seq) >= epoch_end {
                    world.queue.schedule_at_seq(at, seq, ev.into_world());
                } else {
                    let w = worker_of(plan.shard_of(ev.target()), n_shards, workers);
                    let p = &mut ports[w];
                    p.outq.push(ToWorker::Event {
                        at,
                        seq,
                        vis: NO_VIS,
                        ev,
                    });
                    p.unacked.push_back((at, seq));
                    *handoff_total += 1;
                }
            }
            Op::CancelGlobal { vis } => {
                if let Some(real) = world.alias_real.remove(&vis) {
                    world.alias_vis.remove(&real);
                    world.queue.cancel(EventId::from_seq(real));
                } else {
                    world.queue.cancel(EventId::from_seq(vis));
                }
            }
            Op::Deferred(ops) => {
                for f in ops {
                    f();
                }
            }
        }
    }
}

fn pump_grants(ports: &mut [Port], lookahead: SimDuration, epoch_end: Key) {
    let bounds: Vec<Key> = ports.iter().map(Port::bound).collect();
    let g = grant_for(&bounds, lookahead, epoch_end);
    for p in ports.iter_mut() {
        if g > p.granted {
            p.granted = g;
            p.outq.push(ToWorker::Grant(g));
        }
    }
}

fn flush_ports(ports: &mut [Port]) {
    for p in ports {
        for msg in p.outq.drain(..) {
            let _ = p.tx.send(msg);
        }
    }
}

/// Fold a worker's epoch-end state back into the world.
fn apply_join(world: &mut World, join: WorkerJoin, next_prov: &mut u64, stall_total: &mut f64) {
    for (i, slot) in join.slots {
        world.nodes[i as usize] = slot;
    }
    for (li, fault) in join.faults {
        world.links[li as usize].fault = Some(fault);
    }
    for (li, delta) in join.link_stats {
        merge_link_stats(&mut world.links[li as usize].stats, &delta);
    }
    world.counters.merge(&join.counters);
    for (i, delta) in join.node_counters {
        world.node_counters[i as usize].merge(&delta);
    }
    for (at, seq, vis, ev) in join.pending {
        world.queue.schedule_at_seq(at, seq, ev.into_world());
        if vis != NO_VIS && vis != seq {
            world.alias_real.insert(vis, seq);
            world.alias_vis.insert(seq, vis);
        }
    }
    *next_prov = join.next_prov;
    *stall_total += join.stall_secs;
}

fn merge_link_stats(into: &mut LinkStats, delta: &LinkStats) {
    fn add(a: &mut [u64], b: &[u64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += *y;
        }
    }
    add(&mut into.bytes, &delta.bytes);
    add(&mut into.frames, &delta.frames);
    add(&mut into.dropped_bytes, &delta.dropped_bytes);
    add(&mut into.dropped_frames, &delta.dropped_frames);
    add(&mut into.corrupted_bytes, &delta.corrupted_bytes);
    add(&mut into.corrupted_frames, &delta.corrupted_frames);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_of_is_contiguous_and_total() {
        for n_shards in 1u32..=8 {
            for workers in 1..=n_shards as usize {
                let mut last = 0usize;
                let mut seen = vec![false; workers];
                for s in 0..n_shards {
                    let w = worker_of(s, n_shards, workers);
                    assert!(w >= last, "non-monotone assignment");
                    assert!(w < workers);
                    seen[w] = true;
                    last = w;
                }
                assert!(seen.iter().all(|&s| s), "some worker got no shard");
            }
        }
    }

    #[test]
    fn grant_caps_at_epoch_end_key() {
        let end: Key = (SimTime::from_nanos(1_000), 7);
        let bounds = [(SimTime::from_nanos(900), 0), (SimTime::from_nanos(990), 0)];
        let g = grant_for(&bounds, SimDuration::from_nanos(100), end);
        assert_eq!(g, end, "past the end time the grant is the exact key");
        // The grant trails the *global* minimum bound — the granted
        // worker's own included — by exactly the lookahead.
        let g = grant_for(&bounds, SimDuration::from_nanos(5), end);
        assert_eq!(g, (SimTime::from_nanos(905), 0));
        // No bounds at all: the epoch end immediately.
        let g = grant_for(&[], SimDuration::from_nanos(5), end);
        assert_eq!(g, end);
    }
}
