//! Multi-access link model.
//!
//! A link is a broadcast medium (think Ethernet segment / wireless cell):
//! every frame transmitted by one attached interface is delivered to all
//! other attached interfaces after a serialization delay (`len / bandwidth`,
//! charged per sender) plus a fixed propagation delay. Contention between
//! senders is not modelled (each sender has its own transmit queue), which
//! is adequate here: the paper's quantities are protocol-timer driven and
//! links never run near saturation in the experiments.

use crate::fault::LinkFaultState;
use crate::frame::{Frame, FRAME_CLASS_COUNT};
use crate::ids::{IfIndex, NodeId};
use mobicast_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Transmission parameters of a link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Bandwidth in bits per second (per sender).
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

impl Default for LinkParams {
    fn default() -> Self {
        // 100 Mbit/s LAN with 100 µs propagation delay.
        LinkParams {
            bandwidth_bps: 100_000_000,
            delay: SimDuration::from_micros(100),
        }
    }
}

impl LinkParams {
    /// Serialization time for a frame of `len` bytes.
    pub fn tx_time(&self, len: usize) -> SimDuration {
        assert!(self.bandwidth_bps > 0, "link bandwidth must be positive");
        let nanos = (len as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128;
        SimDuration::from_nanos(nanos as u64)
    }
}

/// Per-link, per-class traffic counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Bytes put onto the medium, by frame class.
    pub bytes: [u64; FRAME_CLASS_COUNT],
    /// Frames put onto the medium, by frame class.
    pub frames: [u64; FRAME_CLASS_COUNT],
    /// Bytes destroyed by fault injection (loss, outage, crashed receiver),
    /// by frame class. Counted per receiver copy, not per transmission.
    pub dropped_bytes: [u64; FRAME_CLASS_COUNT],
    /// Frame copies destroyed by fault injection, by frame class.
    pub dropped_frames: [u64; FRAME_CLASS_COUNT],
    /// Bytes of frame copies mangled in flight by the corruption process
    /// (original size), by frame class. Counted per receiver copy.
    pub corrupted_bytes: [u64; FRAME_CLASS_COUNT],
    /// Frame copies mangled in flight, by frame class.
    pub corrupted_frames: [u64; FRAME_CLASS_COUNT],
}

impl LinkStats {
    pub fn record(&mut self, frame: &Frame) {
        let i = frame.class.index();
        self.bytes[i] += frame.len() as u64;
        self.frames[i] += 1;
    }

    /// Account one frame copy destroyed by fault injection.
    pub fn record_drop(&mut self, frame: &Frame) {
        let i = frame.class.index();
        self.dropped_bytes[i] += frame.len() as u64;
        self.dropped_frames[i] += 1;
    }

    /// Account one frame copy mangled in flight by the corruption process.
    pub fn record_corruption(&mut self, frame: &Frame) {
        let i = frame.class.index();
        self.corrupted_bytes[i] += frame.len() as u64;
        self.corrupted_frames[i] += 1;
    }

    pub fn total_dropped_frames(&self) -> u64 {
        self.dropped_frames.iter().sum()
    }

    pub fn total_corrupted_frames(&self) -> u64 {
        self.corrupted_frames.iter().sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    pub fn total_frames(&self) -> u64 {
        self.frames.iter().sum()
    }

    pub fn control_bytes(&self) -> u64 {
        crate::frame::FrameClass::ALL
            .iter()
            .filter(|c| c.is_control())
            .map(|c| self.bytes[c.index()])
            .sum()
    }
}

/// One endpoint attached to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attachment {
    pub node: NodeId,
    pub ifindex: IfIndex,
}

/// Internal link state held by the world.
#[derive(Debug)]
pub struct Link {
    pub params: LinkParams,
    pub members: Vec<Attachment>,
    pub stats: LinkStats,
    /// Cleared during a scheduled outage; a downed link destroys every
    /// frame handed to it and every frame still in flight across it.
    pub up: bool,
    /// Loss/jitter process, when fault injection is installed.
    pub fault: Option<LinkFaultState>,
}

impl Link {
    pub fn new(params: LinkParams) -> Self {
        Link {
            params,
            members: Vec::new(),
            stats: LinkStats::default(),
            up: true,
            fault: None,
        }
    }

    pub fn attach(&mut self, node: NodeId, ifindex: IfIndex) {
        debug_assert!(
            !self
                .members
                .iter()
                .any(|m| m.node == node && m.ifindex == ifindex),
            "{node} if{ifindex} already attached"
        );
        self.members.push(Attachment { node, ifindex });
    }

    /// Detach an endpoint; returns true if it was attached.
    pub fn detach(&mut self, node: NodeId, ifindex: IfIndex) -> bool {
        let before = self.members.len();
        self.members
            .retain(|m| !(m.node == node && m.ifindex == ifindex));
        self.members.len() != before
    }

    pub fn is_attached(&self, node: NodeId) -> bool {
        self.members.iter().any(|m| m.node == node)
    }
}

/// Time at which a frame handed to the transmitter at `now` finishes
/// arriving at the receivers, given the sender's queue state.
///
/// Returns `(arrival_time, new_queue_free_time)`.
pub fn schedule_transmission(
    params: &LinkParams,
    now: SimTime,
    queue_free: SimTime,
    frame_len: usize,
) -> (SimTime, SimTime) {
    let start = now.max(queue_free);
    let done = start + params.tx_time(frame_len);
    (done + params.delay, done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameClass;
    use bytes::Bytes;

    #[test]
    fn tx_time_math() {
        let p = LinkParams {
            bandwidth_bps: 8_000_000, // 1 byte per microsecond
            delay: SimDuration::ZERO,
        };
        assert_eq!(p.tx_time(1000), SimDuration::from_micros(1000));
        assert_eq!(p.tx_time(0), SimDuration::ZERO);
    }

    #[test]
    fn transmission_respects_queue() {
        let p = LinkParams {
            bandwidth_bps: 8_000,
            delay: SimDuration::from_millis(1),
        };
        let now = SimTime::from_secs(1);
        // Idle queue: starts immediately.
        let (arrival, free) = schedule_transmission(&p, now, SimTime::ZERO, 1000);
        assert_eq!(free, now + SimDuration::from_secs(1));
        assert_eq!(arrival, free + SimDuration::from_millis(1));
        // Busy queue: starts when free.
        let busy_until = now + SimDuration::from_millis(500);
        let (arrival2, free2) = schedule_transmission(&p, now, busy_until, 1000);
        assert_eq!(free2, busy_until + SimDuration::from_secs(1));
        assert_eq!(arrival2, free2 + SimDuration::from_millis(1));
    }

    #[test]
    fn stats_accumulate_by_class() {
        let mut s = LinkStats::default();
        s.record(&Frame::new(
            Bytes::from_static(&[0; 100]),
            FrameClass::MulticastData,
        ));
        s.record(&Frame::new(
            Bytes::from_static(&[0; 60]),
            FrameClass::MldControl,
        ));
        s.record(&Frame::new(
            Bytes::from_static(&[0; 60]),
            FrameClass::MldControl,
        ));
        assert_eq!(s.bytes[FrameClass::MulticastData.index()], 100);
        assert_eq!(s.bytes[FrameClass::MldControl.index()], 120);
        assert_eq!(s.total_bytes(), 220);
        assert_eq!(s.total_frames(), 3);
        assert_eq!(s.control_bytes(), 120);
    }

    #[test]
    fn attach_detach() {
        let mut l = Link::new(LinkParams::default());
        l.attach(NodeId(1), 0);
        l.attach(NodeId(2), 1);
        assert!(l.is_attached(NodeId(1)));
        assert!(l.detach(NodeId(1), 0));
        assert!(!l.detach(NodeId(1), 0));
        assert!(!l.is_attached(NodeId(1)));
        assert_eq!(l.members.len(), 1);
    }
}
