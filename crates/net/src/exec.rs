//! Execution configuration for [`World::run`](crate::World::run).
//!
//! One validating entry point replaces the old `run_until` /
//! `run_until_sharded` pair: callers describe *how* to execute
//! ([`ExecutorConfig`]: sequential, sharded, how many worker threads),
//! resolve it against a topology into an [`ExecPlan`], and get back a
//! [`RunStats`] whatever the backend. The executor choice never changes
//! *what* the run produces — traces, reports, oracle verdicts and
//! observability artifacts are byte-identical for every valid
//! `(shards, workers)` — only how fast it is produced.
//!
//! `MOBICAST_WORKERS=<n>` overrides the worker-thread count of any sharded
//! configuration at resolution time, so operators can scale a benchmark
//! from the environment without touching scenario code.

use crate::world::{ShardPlan, ShardRunStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Environment variable overriding the worker count of sharded configs.
pub const WORKERS_ENV: &str = "MOBICAST_WORKERS";

/// A validating description of how to execute a run.
///
/// Build with [`ExecutorConfig::sequential`] or [`ExecutorConfig::sharded`],
/// optionally add worker threads with [`threads`](ExecutorConfig::threads),
/// then resolve against a topology with [`plan`](ExecutorConfig::plan) (or
/// check standalone with [`validate`](ExecutorConfig::validate)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Number of topology shards; `None` = plain sequential loop.
    shards: Option<usize>,
    /// Worker threads dispatching shard batches (only meaningful with
    /// sharding; 1 = the windowed loop runs inline on the caller thread).
    workers: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::sequential()
    }
}

impl ExecutorConfig {
    /// The plain sequential event loop.
    pub fn sequential() -> ExecutorConfig {
        ExecutorConfig {
            shards: None,
            workers: 1,
        }
    }

    /// Conservative-window sharded execution over `shards` topology regions
    /// (inline, single-threaded dispatch until [`threads`](Self::threads)
    /// raises the worker count).
    pub fn sharded(shards: usize) -> ExecutorConfig {
        ExecutorConfig {
            shards: Some(shards),
            workers: 1,
        }
    }

    /// Set the worker-thread count (builder style).
    pub fn threads(mut self, workers: usize) -> ExecutorConfig {
        self.workers = workers;
        self
    }

    /// Shard count, if sharded.
    pub fn shards(&self) -> Option<usize> {
        self.shards
    }

    /// Configured worker count (before any environment override).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The `MOBICAST_WORKERS` override, if set and parseable.
    pub fn env_workers() -> Option<usize> {
        std::env::var(WORKERS_ENV).ok()?.trim().parse().ok()
    }

    /// The worker count after applying the environment override (sharded
    /// configs only; a sequential config ignores the variable).
    pub fn effective_workers(&self) -> usize {
        match self.shards {
            Some(_) => Self::env_workers().unwrap_or(self.workers),
            None => self.workers,
        }
    }

    /// Check the configuration without resolving a topology.
    pub fn validate(&self) -> Result<(), ExecError> {
        let workers = self.effective_workers();
        if workers == 0 {
            return Err(ExecError::ZeroWorkers);
        }
        match self.shards {
            None => {
                if workers > 1 {
                    return Err(ExecError::SequentialWithThreads { workers });
                }
            }
            Some(0) => return Err(ExecError::ZeroShards),
            Some(shards) => {
                if workers > shards {
                    return Err(ExecError::MoreWorkersThanShards { workers, shards });
                }
            }
        }
        Ok(())
    }

    /// Validate and resolve into an [`ExecPlan`], building the topology
    /// shard map through `make_plan` (called with the shard count only for
    /// sharded configs).
    pub fn plan(&self, make_plan: impl FnOnce(usize) -> ShardPlan) -> Result<ExecPlan, ExecError> {
        self.validate()?;
        Ok(match self.shards {
            None => ExecPlan::Sequential,
            Some(shards) => ExecPlan::Sharded {
                plan: make_plan(shards),
                workers: self.effective_workers(),
            },
        })
    }
}

/// A resolved execution plan: the executor config bound to a topology.
#[derive(Clone, Debug)]
pub enum ExecPlan {
    /// Plain sequential event loop.
    Sequential,
    /// Conservative-window sharded execution.
    Sharded {
        plan: ShardPlan,
        /// Worker threads (1 = inline windowed loop).
        workers: usize,
    },
}

impl ExecPlan {
    pub fn sequential() -> ExecPlan {
        ExecPlan::Sequential
    }

    pub fn sharded(plan: ShardPlan, workers: usize) -> ExecPlan {
        ExecPlan::Sharded { plan, workers }
    }
}

/// What one [`World::run`](crate::World::run) did.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Events dispatched by this run (delta, not the world lifetime total).
    pub events_executed: u64,
    /// Present when the run executed sharded (inline or threaded).
    pub sharded: Option<ShardRunStats>,
}

/// An invalid [`ExecutorConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    ZeroWorkers,
    ZeroShards,
    SequentialWithThreads { workers: usize },
    MoreWorkersThanShards { workers: usize, shards: usize },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ZeroWorkers => write!(f, "executor needs at least one worker"),
            ExecError::ZeroShards => write!(f, "sharded executor needs at least one shard"),
            ExecError::SequentialWithThreads { workers } => write!(
                f,
                "sequential executor cannot use {workers} worker threads (shard the world first)"
            ),
            ExecError::MoreWorkersThanShards { workers, shards } => write!(
                f,
                "{workers} workers cannot be fed by {shards} shards (workers must be <= shards)"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicast_sim::SimDuration;

    fn plan2() -> ShardPlan {
        ShardPlan::new(vec![0, 1], SimDuration::from_micros(10))
    }

    #[test]
    fn sequential_is_default_and_valid() {
        assert_eq!(ExecutorConfig::default(), ExecutorConfig::sequential());
        assert!(ExecutorConfig::sequential().validate().is_ok());
        assert!(matches!(
            ExecutorConfig::sequential().plan(|_| unreachable!()),
            Ok(ExecPlan::Sequential)
        ));
    }

    #[test]
    fn rejects_zero_and_oversubscribed() {
        assert_eq!(
            ExecutorConfig::sharded(4).threads(0).validate(),
            Err(ExecError::ZeroWorkers)
        );
        assert_eq!(
            ExecutorConfig::sharded(0).validate(),
            Err(ExecError::ZeroShards)
        );
        assert_eq!(
            ExecutorConfig::sequential().threads(2).validate(),
            Err(ExecError::SequentialWithThreads { workers: 2 })
        );
        assert_eq!(
            ExecutorConfig::sharded(2).threads(4).validate(),
            Err(ExecError::MoreWorkersThanShards {
                workers: 4,
                shards: 2
            })
        );
    }

    #[test]
    fn resolves_sharded_plan() {
        let plan = ExecutorConfig::sharded(2).threads(2).plan(|s| {
            assert_eq!(s, 2);
            plan2()
        });
        match plan {
            Ok(ExecPlan::Sharded { plan, workers }) => {
                assert_eq!(workers, 2);
                assert_eq!(plan.n_shards(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn errors_render() {
        for e in [
            ExecError::ZeroWorkers,
            ExecError::ZeroShards,
            ExecError::SequentialWithThreads { workers: 2 },
            ExecError::MoreWorkersThanShards {
                workers: 4,
                shards: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
