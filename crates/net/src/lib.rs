//! # mobicast-net
//!
//! The network substrate of the `mobicast` simulator: a payload-agnostic
//! world of nodes and multi-access links driven by the deterministic event
//! kernel from `mobicast-sim`.
//!
//! * [`world`] — the event loop, node behaviors, timers, host mobility.
//! * [`link`] — the broadcast link model with per-class byte accounting.
//! * [`frame`] — frames and accounting classes.
//! * [`graph`] — shortest-path routing over the router/link graph (the
//!   unicast substrate PIM-DM's RPF checks are derived from).
//! * [`fault`] — deterministic fault injection: loss models (i.i.d. and
//!   Gilbert–Elliott bursts), delay jitter, link flaps, router crashes.
//! * [`ids`] — identifier newtypes.

pub mod exec;
pub mod fault;
pub mod frame;
pub mod graph;
pub mod ids;
pub mod link;
mod threaded;
pub mod world;

pub use exec::{ExecError, ExecPlan, ExecutorConfig, RunStats, WORKERS_ENV};
pub use fault::{
    CorruptionKind, CorruptionModel, FaultPlan, FaultWindow, LinkFault, LinkFaultState, LinkFlap,
    LossModel, RouterCrash, StormModel, CORRUPTION_KIND_COUNT,
};
pub use frame::{Frame, FrameClass, L2Dest, FRAME_CLASS_COUNT};
pub use graph::{LinkGraph, Route};
pub use ids::{IfIndex, LinkId, NodeId, TimerKey};
pub use link::{Link, LinkParams, LinkStats};
pub use world::{Ctx, NodeBehavior, ShardPlan, ShardRunStats, World, WorldProbe};
