//! The simulation world: nodes, links, the event loop, timers and mobility.
//!
//! A [`World`] owns every node behavior and link, plus the event queue. Node
//! behaviors implement [`NodeBehavior`] and interact with the world through
//! a [`Ctx`] handed to each callback: sending frames, arming timers,
//! tracing, counting. Host mobility (the subject of the paper) is a world
//! operation — `move_iface` detaches an interface from one link and attaches
//! it to another, notifying the behavior so its protocol stack can react
//! (movement detection, care-of address, binding update, …).

use crate::exec::{ExecPlan, RunStats};
use crate::fault::LinkFaultState;
use crate::frame::Frame;
use crate::ids::{IfIndex, LinkId, NodeId, TimerKey};
use crate::link::{schedule_transmission, Link, LinkParams, LinkStats};
use mobicast_sim::profile::{Profiler, SimProfile};
use mobicast_sim::trace::Fields;
use mobicast_sim::{Counters, EventId, EventQueue, SimDuration, SimTime, TraceCategory, Tracer};
use std::any::Any;
use std::rc::Rc;

/// Handler categories the event-loop profiler distinguishes, in the order
/// used by the event queue's internal `WorldEvent::category_index`.
pub const HANDLER_CATEGORIES: &[&str] = &["deliver", "timer", "script"];

/// Passive observer of the event loop: sees every frame handed to a link and
/// every frame delivered to a node, before the receiving behavior runs.
///
/// Probes must not mutate the world (they get no `Ctx`); an invariant oracle
/// uses interior mutability to accumulate its model, exactly like the trace
/// recorder. All methods default to no-ops so probes implement only what
/// they watch.
pub trait WorldProbe {
    /// `node` transmitted `frame` on `ifindex` onto `link` at time `now`.
    /// Called once per transmission, before per-member loss is rolled.
    fn on_transmit(
        &self,
        now: SimTime,
        node: NodeId,
        ifindex: IfIndex,
        link: LinkId,
        frame: &Frame,
    ) {
        let _ = (now, node, ifindex, link, frame);
    }

    /// `frame` is about to be delivered to `node` on `ifindex` from `link`.
    /// Not called for frames destroyed by loss, moves, downed links or
    /// crashed receivers.
    fn on_deliver(
        &self,
        now: SimTime,
        node: NodeId,
        ifindex: IfIndex,
        link: LinkId,
        frame: &Frame,
    ) {
        let _ = (now, node, ifindex, link, frame);
    }
}

/// Implemented by every simulated node (host or router stack).
///
/// `Send` because the threaded executor moves node slots onto worker
/// threads for the duration of an epoch; behaviors own their state and
/// share nothing except explicitly thread-safe handles.
pub trait NodeBehavior: Any + Send {
    /// Called once when the world starts, after all topology is built.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);

    /// A frame arrived on interface `ifindex`.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, ifindex: IfIndex, frame: &Frame);

    /// A timer armed via [`Ctx::set_timer_after`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: TimerKey);

    /// Interface `ifindex` was attached to (`Some`) or detached from
    /// (`None`) a link.
    fn on_link_change(&mut self, ctx: &mut Ctx<'_>, ifindex: IfIndex, link: Option<LinkId>);

    /// Downcasting support so the harness can inspect node state after the
    /// run (e.g. read the receiver application's packet log).
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

type Script = Box<dyn FnOnce(&mut World)>;

pub(crate) enum WorldEvent {
    Deliver {
        node: NodeId,
        ifindex: IfIndex,
        /// The link the frame was sent on; delivery is skipped if the node
        /// has moved away in the meantime.
        link: LinkId,
        frame: Frame,
    },
    Timer {
        node: NodeId,
        key: TimerKey,
        /// Incarnation of the node at arming time; a crash bumps the
        /// node's incarnation, invalidating every timer armed before it.
        incarnation: u64,
    },
    Script(Script),
}

impl WorldEvent {
    /// Index into [`HANDLER_CATEGORIES`] for profiling.
    fn category_index(&self) -> usize {
        match self {
            WorldEvent::Deliver { .. } => 0,
            WorldEvent::Timer { .. } => 1,
            WorldEvent::Script(_) => 2,
        }
    }

    /// The node this event dispatches into; `None` for scripts, which may
    /// mutate arbitrary world state and therefore pin every shard.
    pub(crate) fn target_node(&self) -> Option<NodeId> {
        match self {
            WorldEvent::Deliver { node, .. } | WorldEvent::Timer { node, .. } => Some(*node),
            WorldEvent::Script(_) => None,
        }
    }
}

/// Partition of the world's nodes into topology regions ("shards") plus the
/// conservative lookahead for the sharded event loop.
///
/// The lookahead is the classic conservative-parallel-DES bound: an event
/// executing at time `t` in one shard can only affect another shard after
/// at least the minimum inter-shard link latency, so all events in the
/// window `[t, t + lookahead]` whose targets live in different shards are
/// causally independent and form one parallel batch. [`World::run_until_sharded`]
/// dispatches each window's batch in the same deterministic `(time, seq)`
/// merge order regardless of the worker count, which is what keeps traces,
/// reports and oracle verdicts byte-identical from `workers = 1` to
/// `workers = N` — the parity contract `shard_parity.rs` gates.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Shard index per node id; nodes beyond the vector (attached after
    /// planning) fall into shard 0.
    node_shard: Vec<u32>,
    n_shards: u32,
    /// Conservative lower bound on cross-shard influence latency.
    lookahead: SimDuration,
}

impl ShardPlan {
    /// Build a plan from an explicit node→shard assignment.
    pub fn new(node_shard: Vec<u32>, lookahead: SimDuration) -> ShardPlan {
        let n_shards = node_shard.iter().copied().max().map_or(1, |m| m + 1);
        ShardPlan {
            node_shard,
            n_shards,
            lookahead,
        }
    }

    /// The degenerate single-shard plan (the whole world is one region).
    pub fn single(n_nodes: usize) -> ShardPlan {
        ShardPlan {
            node_shard: vec![0; n_nodes],
            n_shards: 1,
            lookahead: SimDuration::from_millis(1),
        }
    }

    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.node_shard.get(node.index()).copied().unwrap_or(0)
    }
}

/// What one sharded run actually did: window count, per-shard event load,
/// the critical path a parallel executor could not beat, plus (for the
/// threaded backend) measured wall-clock figures. The schedule fields are
/// deterministic in (scenario, seed, plan) and identical for every
/// `(shards, workers)` backend choice — [`same_schedule`](Self::same_schedule)
/// compares exactly those. Wall-clock fields are measurements and excluded
/// from parity.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct ShardRunStats {
    /// Worker count the run executed with (order-inert: it decides which
    /// thread dispatches a shard but never changes dispatch order).
    pub workers: usize,
    /// Conservative lookahead windows executed.
    pub windows: u64,
    /// Windows cut short by a script event (global barrier: scripts may
    /// move nodes between shards or rewire links).
    pub barrier_syncs: u64,
    /// Events dispatched into each shard over the whole run.
    pub events_per_shard: Vec<u64>,
    /// Total events dispatched by the sharded loop.
    pub events_total: u64,
    /// Largest single-window batch observed.
    pub max_window_batch: u64,
    /// Sum over windows of the largest per-shard batch (plus barriers):
    /// the serial fraction no worker count can parallelize away.
    pub critical_path_events: u64,
    /// Events that crossed a worker boundary (forwarded between threads).
    /// Always 0 for inline execution; deterministic for a fixed
    /// `(plan, workers)` but naturally different across worker counts, so
    /// excluded from [`same_schedule`](Self::same_schedule).
    pub handoff_events: u64,
    /// Wall-clock duration of the run (measurement, not deterministic).
    pub wall_clock_secs: f64,
    /// Wall-clock time worker threads spent blocked waiting for grants or
    /// epoch barriers, summed over workers (measurement).
    pub barrier_stall_secs: f64,
    /// Measured sequential-wall / threaded-wall speedup, when a benchmark
    /// harness ran both and filled it in (`None` otherwise).
    pub measured_speedup: Option<f64>,
}

impl ShardRunStats {
    /// Upper bound on parallel speedup for this run under this plan
    /// (Amdahl over the conservative windows): total work divided by the
    /// critical path.
    pub fn achievable_speedup(&self) -> f64 {
        if self.critical_path_events == 0 {
            1.0
        } else {
            self.events_total as f64 / self.critical_path_events as f64
        }
    }

    /// True when `other` realized the exact same deterministic schedule:
    /// identical windows, barriers, per-shard loads and critical path.
    /// Worker count, handoff volume and wall-clock measurements are
    /// execution details and not compared.
    pub fn same_schedule(&self, other: &ShardRunStats) -> bool {
        self.windows == other.windows
            && self.barrier_syncs == other.barrier_syncs
            && self.events_per_shard == other.events_per_shard
            && self.events_total == other.events_total
            && self.max_window_batch == other.max_window_batch
            && self.critical_path_events == other.critical_path_events
    }
}

/// Replays the conservative-window bookkeeping of the inline sharded loop
/// over a stream of dispatches in global `(time, seq)` order. Both the
/// inline backend (feeding it while popping the queue) and the threaded
/// backend (feeding it the merged worker streams) drive this one state
/// machine, which is what keeps `ShardRunStats` identical across backends.
pub(crate) struct WindowRecon {
    t_end: SimTime,
    lookahead: SimDuration,
    horizon: Option<SimTime>,
    window_batch: Vec<u64>,
    window_events: u64,
    window_barriers: u64,
    stats: ShardRunStats,
}

impl WindowRecon {
    pub(crate) fn new(
        n_shards: usize,
        workers: usize,
        t_end: SimTime,
        lookahead: SimDuration,
    ) -> Self {
        WindowRecon {
            t_end,
            lookahead,
            horizon: None,
            window_batch: vec![0; n_shards],
            window_events: 0,
            window_barriers: 0,
            stats: ShardRunStats {
                workers: workers.max(1),
                events_per_shard: vec![0; n_shards],
                ..ShardRunStats::default()
            },
        }
    }

    /// Account one dispatched event (`shard` is `None` for scripts, which
    /// barrier the window).
    pub(crate) fn on_event(&mut self, at: SimTime, shard: Option<u32>) {
        match self.horizon {
            Some(h) if at <= h => {}
            _ => {
                self.close_window();
                self.horizon = Some((at + self.lookahead).min(self.t_end));
                self.stats.windows += 1;
            }
        }
        self.window_events += 1;
        self.stats.events_total += 1;
        match shard {
            Some(s) => self.window_batch[s as usize] += 1,
            None => {
                self.window_barriers += 1;
                self.stats.barrier_syncs += 1;
                self.close_window();
            }
        }
    }

    fn close_window(&mut self) {
        if self.horizon.take().is_none() {
            return;
        }
        for (shard, n) in self.window_batch.iter().enumerate() {
            self.stats.events_per_shard[shard] += n;
        }
        self.stats.max_window_batch = self.stats.max_window_batch.max(self.window_events);
        self.stats.critical_path_events +=
            self.window_batch.iter().copied().max().unwrap_or(0) + self.window_barriers;
        self.window_batch.iter_mut().for_each(|c| *c = 0);
        self.window_events = 0;
        self.window_barriers = 0;
    }

    pub(crate) fn finish(mut self) -> ShardRunStats {
        self.close_window();
        self.stats
    }
}

pub(crate) struct IfaceState {
    pub(crate) link: Option<LinkId>,
    pub(crate) tx_free: SimTime,
}

pub(crate) struct NodeSlot {
    pub(crate) behavior: Option<Box<dyn NodeBehavior>>,
    pub(crate) ifaces: Vec<IfaceState>,
    /// Bumped on crash so stale timers can be recognized and discarded.
    pub(crate) incarnation: u64,
    /// While true, the node processes no frames or timers.
    pub(crate) crashed: bool,
}

/// The simulation world.
pub struct World {
    pub(crate) queue: EventQueue<WorldEvent>,
    pub(crate) nodes: Vec<NodeSlot>,
    pub(crate) links: Vec<Link>,
    pub(crate) tracer: Tracer,
    pub(crate) counters: Counters,
    /// Per-node MIB-style counters maintained by the world itself (fault
    /// drops attributed to a node); node behaviors keep their own registry
    /// and the harness merges both when snapshotting.
    pub(crate) node_counters: Vec<Counters>,
    pub(crate) probe: Option<Rc<dyn WorldProbe>>,
    pub(crate) started: bool,
    /// Events dispatched so far (always on; one increment per event).
    pub(crate) events_executed: u64,
    /// Wall-clock profiler; `None` (the default) costs one branch per event.
    pub(crate) profiler: Option<Profiler>,
    /// `(time, seq)` keys of pending Script events. The threaded executor
    /// reads the earliest to find the next epoch boundary (scripts are
    /// global barriers); maintained on schedule and pop, never observable
    /// otherwise.
    pub(crate) script_keys: std::collections::BTreeSet<(SimTime, u64)>,
    /// Provenance timer ids handed out by the threaded executor mapped to
    /// the real queue sequence of the pending event (and the reverse map).
    /// A timer armed on a worker thread gets a provenance [`EventId`]
    /// before its global sequence exists; when the pending timer survives
    /// its epoch it re-enters the global queue under the real sequence,
    /// and a later cancel through either id must keep working. Empty
    /// unless the threaded executor ran.
    pub(crate) alias_real: std::collections::HashMap<u64, u64>,
    pub(crate) alias_vis: std::collections::HashMap<u64, u64>,
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    pub fn new() -> Self {
        World {
            queue: EventQueue::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            tracer: Tracer::null(),
            counters: Counters::new(),
            node_counters: Vec::new(),
            probe: None,
            started: false,
            events_executed: 0,
            profiler: None,
            script_keys: std::collections::BTreeSet::new(),
            alias_real: std::collections::HashMap::new(),
            alias_vis: std::collections::HashMap::new(),
        }
    }

    pub fn with_tracer(tracer: Tracer) -> Self {
        World {
            tracer,
            ..World::new()
        }
    }

    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    pub fn tracer(&self) -> &Tracer {
        self.tracer.clone_ref()
    }

    /// Create a link; returns its id.
    pub fn add_link(&mut self, params: LinkParams) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(params));
        id
    }

    /// Create a node with `n_ifaces` interfaces driven by `behavior`.
    pub fn add_node(&mut self, n_ifaces: usize, behavior: Box<dyn NodeBehavior>) -> NodeId {
        assert!(!self.started, "cannot add nodes after start");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            behavior: Some(behavior),
            ifaces: (0..n_ifaces)
                .map(|_| IfaceState {
                    link: None,
                    tx_free: SimTime::ZERO,
                })
                .collect(),
            incarnation: 0,
            crashed: false,
        });
        self.node_counters.push(Counters::new());
        id
    }

    /// Attach interface `ifindex` of `node` to `link`.
    pub fn attach(&mut self, node: NodeId, ifindex: IfIndex, link: LinkId) {
        let slot = &mut self.nodes[node.index()];
        let iface = &mut slot.ifaces[usize::from(ifindex)];
        assert!(
            iface.link.is_none(),
            "{node} if{ifindex} already attached to {:?}",
            iface.link
        );
        iface.link = Some(link);
        self.links[link.index()].attach(node, ifindex);
        if self.started {
            self.notify_link_change(node, ifindex, Some(link));
        }
    }

    /// Detach interface `ifindex` of `node` from its link, if any.
    pub fn detach(&mut self, node: NodeId, ifindex: IfIndex) {
        let slot = &mut self.nodes[node.index()];
        let iface = &mut slot.ifaces[usize::from(ifindex)];
        if let Some(link) = iface.link.take() {
            self.links[link.index()].detach(node, ifindex);
            if self.started {
                self.notify_link_change(node, ifindex, None);
            }
        }
    }

    /// Move an interface to a new link (detach + attach): host mobility.
    pub fn move_iface(&mut self, node: NodeId, ifindex: IfIndex, new_link: LinkId) {
        self.tracer
            .emit_with(self.now(), TraceCategory::Mobility, node.index(), || {
                format!("if{ifindex} moves to {new_link}")
            });
        self.detach(node, ifindex);
        self.attach(node, ifindex, new_link);
    }

    /// The link interface `ifindex` of `node` is attached to.
    pub fn link_of(&self, node: NodeId, ifindex: IfIndex) -> Option<LinkId> {
        self.nodes[node.index()].ifaces[usize::from(ifindex)].link
    }

    /// Number of interfaces on `node` (shard planning walks these).
    pub fn n_ifaces(&self, node: NodeId) -> usize {
        self.nodes[node.index()].ifaces.len()
    }

    /// Members `(node, ifindex)` currently attached to `link`.
    pub fn link_members(&self, link: LinkId) -> Vec<(NodeId, IfIndex)> {
        self.links[link.index()]
            .members
            .iter()
            .map(|a| (a.node, a.ifindex))
            .collect()
    }

    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.links[link.index()].stats
    }

    pub fn link_params(&self, link: LinkId) -> &LinkParams {
        &self.links[link.index()].params
    }

    /// Install (or clear) a loss/jitter fault process on a link.
    pub fn set_link_fault(&mut self, link: LinkId, fault: Option<LinkFaultState>) {
        self.links[link.index()].fault = fault;
    }

    /// Bring a link down (destroying all frames handed to it or in flight
    /// across it) or back up.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.tracer
            .emit_with(self.now(), TraceCategory::Fault, usize::MAX, || {
                format!("{link} {}", if up { "up" } else { "down" })
            });
        self.counters.inc(if up {
            "faults.link_up"
        } else {
            "faults.link_down"
        });
        self.links[link.index()].up = up;
    }

    pub fn link_up(&self, link: LinkId) -> bool {
        self.links[link.index()].up
    }

    /// Crash a node: it stops processing frames and timers, and every timer
    /// armed before the crash is permanently invalidated (soft state dies
    /// with the process). The behavior object is dropped; the node stays
    /// dead until [`World::restart_node`].
    pub fn crash_node(&mut self, node: NodeId) {
        let slot = &mut self.nodes[node.index()];
        slot.crashed = true;
        slot.incarnation += 1;
        slot.behavior = None;
        self.counters.inc("faults.node_crashes");
        self.tracer
            .emit_with(self.now(), TraceCategory::Fault, node.index(), || {
                "crashed".to_string()
            });
    }

    /// Restart a crashed node with a freshly constructed behavior (all
    /// protocol state lost). Delivers `on_start` so the new stack can
    /// rebuild its soft state from the wire.
    pub fn restart_node(&mut self, node: NodeId, behavior: Box<dyn NodeBehavior>) {
        let slot = &mut self.nodes[node.index()];
        assert!(slot.crashed, "{node} restarted without crashing");
        slot.crashed = false;
        slot.behavior = Some(behavior);
        self.counters.inc("faults.node_restarts");
        self.tracer
            .emit_with(self.now(), TraceCategory::Fault, node.index(), || {
                "restarted".to_string()
            });
        self.with_node(node, |b, ctx| b.on_start(ctx));
    }

    pub fn node_crashed(&self, node: NodeId) -> bool {
        self.nodes[node.index()].crashed
    }

    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Global world counters (frame drops etc.), merged by the harness into
    /// the run result.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// World-maintained MIB counters for one node (fault drops attributed
    /// to it). Complements the counters node behaviors keep themselves.
    pub fn node_counters(&self, node: NodeId) -> &Counters {
        &self.node_counters[node.index()]
    }

    /// Turn on wall-clock profiling of the event loop. Call before the run;
    /// collect with [`World::take_profile`] afterwards.
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Profiler::new(HANDLER_CATEGORIES));
    }

    /// Finish and detach the profiler, if one was enabled.
    pub fn take_profile(&mut self) -> Option<SimProfile> {
        self.profiler
            .take()
            .map(|p| p.finish(self.queue.depth_high_water(), self.queue.scheduled_total()))
    }

    /// Events dispatched by the event loop so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Highest number of simultaneously pending events observed so far.
    pub fn queue_depth_high_water(&self) -> usize {
        self.queue.depth_high_water()
    }

    /// Number of live events pending right now (gauge samplers read this
    /// mid-run to build the queue-depth timeline).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Install a [`WorldProbe`] observing all transmissions and deliveries.
    /// At most one probe is active; installing replaces any previous one.
    pub fn set_probe(&mut self, probe: Rc<dyn WorldProbe>) {
        self.probe = Some(probe);
    }

    /// Schedule a closure to run against the world at time `t` (mobility
    /// scripts, workload events).
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut World) + 'static) {
        let id = self.queue.schedule(t, WorldEvent::Script(Box::new(f)));
        self.script_keys.insert((t, id.seq()));
    }

    /// Pop the next event, keeping the script-key index and timer-alias
    /// maps in sync.
    pub(crate) fn pop_next(&mut self) -> Option<(SimTime, WorldEvent)> {
        let (at, id, ev) = self.queue.pop_entry()?;
        if matches!(ev, WorldEvent::Script(_)) {
            self.script_keys.remove(&(at, id.seq()));
        }
        if !self.alias_vis.is_empty() {
            if let Some(vis) = self.alias_vis.remove(&id.seq()) {
                self.alias_real.remove(&vis);
            }
        }
        Some((at, ev))
    }

    /// Cancel a pending event by id, resolving threaded-executor timer
    /// aliases (backend of [`Ctx::cancel_timer`] for world-backed contexts).
    pub(crate) fn cancel_event(&mut self, id: EventId) -> bool {
        if let Some(real) = self.alias_real.remove(&id.seq()) {
            self.alias_vis.remove(&real);
            return self.queue.cancel(EventId::from_seq(real));
        }
        self.queue.cancel(id)
    }

    /// Inspect a node behavior as a concrete type.
    pub fn behavior<T: NodeBehavior>(&self, node: NodeId) -> Option<&T> {
        self.nodes[node.index()]
            .behavior
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutably access a node behavior as a concrete type.
    pub fn behavior_mut<T: NodeBehavior>(&mut self, node: NodeId) -> Option<&mut T> {
        self.nodes[node.index()]
            .behavior
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Run `f` with a [`Ctx`] for `node`, dispatching into its behavior.
    /// Used by the harness to poke nodes outside of frame/timer events
    /// (e.g. "application joins group now").
    pub fn with_node<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn NodeBehavior, &mut Ctx<'_>) -> R,
    ) -> R {
        // Re-entrancy guard: a behavior calling back into itself through
        // `with_node` is a programming error, not a runtime condition a
        // typed error could describe — panicking here is deliberate.
        #[allow(clippy::expect_used)]
        let mut behavior = self.nodes[node.index()]
            .behavior
            .take()
            .expect("node behavior re-entered");
        let mut ctx = Ctx::for_world(self, node);
        let r = f(behavior.as_mut(), &mut ctx);
        self.nodes[node.index()].behavior = Some(behavior);
        r
    }

    /// Deliver `on_start` to every node (id order). Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u32);
            self.with_node(node, |b, ctx| b.on_start(ctx));
        }
    }

    fn notify_link_change(&mut self, node: NodeId, ifindex: IfIndex, link: Option<LinkId>) {
        if self.nodes[node.index()].crashed {
            return;
        }
        self.with_node(node, |b, ctx| b.on_link_change(ctx, ifindex, link));
    }

    fn dispatch(&mut self, ev: WorldEvent) {
        match ev {
            WorldEvent::Deliver {
                node,
                ifindex,
                link,
                frame,
            } => {
                // Skip delivery if the interface moved between transmission
                // and arrival (the host left the link).
                if self.nodes[node.index()].ifaces[usize::from(ifindex)].link != Some(link) {
                    self.counters.inc("world.frames_missed_due_to_move");
                    return;
                }
                // A link that went down mid-flight destroys the frame.
                if !self.links[link.index()].up {
                    self.links[link.index()].stats.record_drop(&frame);
                    self.counters.inc("faults.frames_dropped_link_down");
                    self.node_counters[node.index()].inc("framesDroppedByFault");
                    return;
                }
                // A crashed receiver hears nothing.
                if self.nodes[node.index()].crashed {
                    self.links[link.index()].stats.record_drop(&frame);
                    self.counters.inc("faults.frames_dropped_node_crashed");
                    self.node_counters[node.index()].inc("framesDroppedByFault");
                    return;
                }
                if let Some(probe) = self.probe.clone() {
                    probe.on_deliver(self.queue.now(), node, ifindex, link, &frame);
                }
                self.with_node(node, |b, ctx| b.on_frame(ctx, ifindex, &frame));
            }
            WorldEvent::Timer {
                node,
                key,
                incarnation,
            } => {
                let slot = &self.nodes[node.index()];
                if slot.crashed || slot.incarnation != incarnation {
                    self.counters.inc("faults.timers_dropped_stale");
                    return;
                }
                self.with_node(node, |b, ctx| b.on_timer(ctx, key));
            }
            WorldEvent::Script(f) => f(self),
        }
    }

    /// Dispatch one event, counting it and (if profiling is on) timing the
    /// handler by category.
    pub(crate) fn dispatch_counted(&mut self, ev: WorldEvent) {
        self.events_executed += 1;
        if self.profiler.is_some() {
            let idx = ev.category_index();
            let started = std::time::Instant::now();
            self.dispatch(ev);
            if let Some(p) = self.profiler.as_mut() {
                p.record(idx, started);
            }
        } else {
            self.dispatch(ev);
        }
    }

    /// Run the event loop until (and including) time `t` under the given
    /// execution plan; the clock ends at exactly `t`.
    ///
    /// This is the single entry point subsuming the deprecated
    /// [`run_until`](Self::run_until) / [`run_until_sharded`](Self::run_until_sharded)
    /// pair. The plan never changes what the run produces — traces,
    /// counters, recorder contents, oracle verdicts and observability
    /// artifacts are byte-identical for every valid `(shards, workers)` —
    /// only how it is executed:
    ///
    /// - [`ExecPlan::Sequential`]: the plain event loop.
    /// - [`ExecPlan::Sharded`] with `workers == 1`: the conservative
    ///   lookahead-window loop, inline on the caller thread, producing the
    ///   realized window schedule in [`RunStats::sharded`].
    /// - [`ExecPlan::Sharded`] with `workers > 1`: per-shard worker threads
    ///   dispatch concurrently under conservative time grants; all
    ///   observable side effects are replayed by a coordinator in global
    ///   `(time, seq)` order (see `threaded.rs`). Epochs that cannot be
    ///   parallelized safely (zero lookahead, active cross-worker link
    ///   faults, profiling enabled) fall back to the inline loop.
    pub fn run(&mut self, t: SimTime, plan: &ExecPlan) -> RunStats {
        let before = self.events_executed;
        let sharded = match plan {
            ExecPlan::Sequential => {
                self.run_seq(t);
                None
            }
            ExecPlan::Sharded { plan, workers } => {
                let started = std::time::Instant::now();
                let mut stats = if *workers > 1 && self.profiler.is_none() {
                    crate::threaded::run_threaded(self, t, plan, *workers)
                } else {
                    self.run_windowed_inline(t, plan, *workers)
                };
                stats.wall_clock_secs = started.elapsed().as_secs_f64();
                Some(stats)
            }
        };
        RunStats {
            events_executed: self.events_executed - before,
            sharded,
        }
    }

    /// The plain sequential event loop (backend of [`ExecPlan::Sequential`]).
    fn run_seq(&mut self, t: SimTime) {
        self.start();
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let Some((_, ev)) = self.pop_next() else {
                break; // unreachable: peek_time just returned Some
            };
            self.dispatch_counted(ev);
        }
        self.queue.advance_to(t);
    }

    /// Run the event loop until time `t` in conservative lookahead windows
    /// over `plan`'s topology shards, dispatching inline on this thread.
    ///
    /// Each window spans `[next, next + lookahead]`; events inside it whose
    /// targets live in different shards are causally independent (no frame
    /// can cross a shard boundary faster than the lookahead), so they form
    /// one parallel batch. Dispatch itself stays in the global `(time, seq)`
    /// merge order — the batch schedule assigns shards to workers but
    /// never reorders events — so the run is byte-identical to the
    /// sequential loop, including traces, counters and oracle polls.
    /// Script events are global barriers: they may rewire topology
    /// (mobility!) and end the current window.
    pub(crate) fn run_windowed_inline(
        &mut self,
        t: SimTime,
        plan: &ShardPlan,
        workers: usize,
    ) -> ShardRunStats {
        self.start();
        let mut recon = WindowRecon::new(plan.n_shards() as usize, workers, t, plan.lookahead());
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let Some((_, ev)) = self.pop_next() else {
                break; // unreachable: peek_time just returned Some
            };
            recon.on_event(next, ev.target_node().map(|n| plan.shard_of(n)));
            self.dispatch_counted(ev);
        }
        self.queue.advance_to(t);
        recon.finish()
    }

    /// Run the event loop until (and including) time `t`.
    #[deprecated(since = "0.10.0", note = "use World::run(t, &ExecPlan::sequential())")]
    pub fn run_until(&mut self, t: SimTime) {
        self.run(t, &ExecPlan::Sequential);
    }

    /// Run the event loop until time `t` in conservative lookahead windows.
    #[deprecated(
        since = "0.10.0",
        note = "use World::run(t, &ExecPlan::sharded(plan, workers))"
    )]
    pub fn run_until_sharded(
        &mut self,
        t: SimTime,
        plan: &ShardPlan,
        workers: usize,
    ) -> ShardRunStats {
        let stats = self.run(t, &ExecPlan::sharded(plan.clone(), workers));
        #[allow(clippy::expect_used)]
        stats
            .sharded
            .expect("sharded plan always yields shard stats")
    }

    /// Run until the event queue drains (useful for small tests). A safety
    /// cap bounds runaway event cascades.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        self.start();
        let mut n = 0u64;
        while let Some((_, ev)) = self.pop_next() {
            self.dispatch_counted(ev);
            n += 1;
            assert!(n <= max_events, "exceeded {max_events} events");
        }
    }

    /// Total events ever scheduled (diagnostic; used by kernel benches).
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Transmit `frame` from `node` on `ifindex` (backend of [`Ctx::send`]
    /// for world-backed contexts; the threaded executor mirrors this logic
    /// in its per-worker shard context).
    fn send_from(&mut self, node: NodeId, ifindex: IfIndex, frame: Frame) -> bool {
        let now = self.now();
        let Some(link_id) = self.link_of(node, ifindex) else {
            self.counters.inc("world.frames_dropped_detached");
            return false;
        };
        let link = &mut self.links[link_id.index()];
        // A downed link eats the frame at the transmitter.
        if !link.up {
            link.stats.record_drop(&frame);
            self.counters.inc("faults.frames_dropped_link_down");
            self.node_counters[node.index()].inc("framesDroppedByFault");
            return true;
        }
        link.stats.record(&frame);
        let params = link.params;
        if let Some(probe) = self.probe.clone() {
            probe.on_transmit(now, node, ifindex, link_id, &frame);
        }
        let iface = &mut self.nodes[node.index()].ifaces[usize::from(ifindex)];
        let (arrival, free) = schedule_transmission(&params, now, iface.tx_free, frame.len());
        iface.tx_free = free;
        // Iterate membership by index: behaviors cannot run (and so
        // membership cannot change) while the copies are being scheduled,
        // and re-indexing per member lets the loss process below borrow
        // the link's fault state mutably without cloning the member list
        // on every transmission — the flood path's hottest allocation.
        let n_members = self.links[link_id.index()].members.len();
        for mi in 0..n_members {
            let member = self.links[link_id.index()].members[mi];
            if member.node == node && member.ifindex == ifindex {
                continue;
            }
            // NIC filtering: L2-unicast frames only reach their addressee.
            if let crate::frame::L2Dest::Node(to) = frame.l2 {
                if member.node != to {
                    continue;
                }
            }
            // Fault injection: each receiver copy independently rolls for
            // loss, surviving copies may pick up extra jitter, and the
            // corruption process may mangle the copy's bytes, duplicate it,
            // or delay it past frames transmitted later. The probe (and so
            // the invariant oracle) saw the clean transmission above;
            // corruption is strictly a receive-side disturbance.
            let mut arrival = arrival;
            let mut dropped = false;
            let mut corrupted = None;
            let mut deliver_bytes = None;
            let mut duplicate_at = None;
            if let Some(fault) = self.links[link_id.index()].fault.as_mut() {
                if fault.should_drop() {
                    dropped = true;
                } else {
                    arrival += fault.jitter();
                    if let Some(kind) = fault.corruption() {
                        corrupted = Some(kind);
                        match kind {
                            crate::fault::CorruptionKind::Duplicate => {
                                duplicate_at = Some(arrival + fault.replay_delay());
                            }
                            crate::fault::CorruptionKind::Replay => {
                                arrival += fault.replay_delay();
                            }
                            _ => deliver_bytes = Some(fault.corrupt_bytes(kind, &frame.bytes)),
                        }
                    }
                }
            }
            if dropped {
                self.links[link_id.index()].stats.record_drop(&frame);
                self.counters.inc("faults.frames_dropped_loss");
                // Attributed to the receiver that would have heard the copy.
                self.node_counters[member.node.index()].inc("framesDroppedByFault");
                continue;
            }
            if let Some(kind) = corrupted {
                self.links[link_id.index()].stats.record_corruption(&frame);
                self.counters.inc("faults.frames_corrupted");
                self.counters.inc(kind.counter());
                // Attributed to the receiver that hears the mangled copy.
                self.node_counters[member.node.index()].inc("framesCorruptedOnLink");
                self.tracer.emit_typed(
                    now,
                    TraceCategory::Fault,
                    member.node.index(),
                    "corrupted",
                    || {
                        vec![
                            ("link", link_id.0.into()),
                            ("kind", kind.name().into()),
                            ("class", frame.class.name().into()),
                        ]
                    },
                );
            }
            let mut copy = frame.clone();
            if let Some(bytes) = deliver_bytes {
                copy.bytes = bytes;
                copy.damaged = true;
            }
            if let Some(dup_at) = duplicate_at {
                self.queue.schedule(
                    dup_at,
                    WorldEvent::Deliver {
                        node: member.node,
                        ifindex: member.ifindex,
                        link: link_id,
                        frame: frame.clone(),
                    },
                );
            }
            self.queue.schedule(
                arrival,
                WorldEvent::Deliver {
                    node: member.node,
                    ifindex: member.ifindex,
                    link: link_id,
                    frame: copy,
                },
            );
        }
        true
    }
}

/// Extension trait so `World::tracer` can hand out a reference cheaply.
trait CloneRef {
    fn clone_ref(&self) -> &Self;
}
impl CloneRef for Tracer {
    fn clone_ref(&self) -> &Self {
        self
    }
}

/// The world context handed to node behaviors during callbacks.
///
/// Backed either by the world itself (sequential and inline sharded
/// execution) or by a per-worker shard context (threaded execution).
/// Behaviors cannot tell the difference: every operation has identical
/// observable semantics under both backends, which is the byte-parity
/// contract of [`World::run`].
pub struct Ctx<'a> {
    inner: CtxInner<'a>,
    /// The node being dispatched.
    pub node: NodeId,
}

enum CtxInner<'a> {
    World(&'a mut World),
    Shard(&'a mut crate::threaded::ShardCtx),
}

impl<'a> Ctx<'a> {
    pub(crate) fn for_world(world: &'a mut World, node: NodeId) -> Ctx<'a> {
        Ctx {
            inner: CtxInner::World(world),
            node,
        }
    }

    pub(crate) fn for_shard(shard: &'a mut crate::threaded::ShardCtx, node: NodeId) -> Ctx<'a> {
        Ctx {
            inner: CtxInner::Shard(shard),
            node,
        }
    }
}

impl Ctx<'_> {
    pub fn now(&self) -> SimTime {
        match &self.inner {
            CtxInner::World(w) => w.now(),
            CtxInner::Shard(s) => s.now(),
        }
    }

    /// The link the given interface is attached to, if any.
    pub fn link_on(&self, ifindex: IfIndex) -> Option<LinkId> {
        match &self.inner {
            CtxInner::World(w) => w.link_of(self.node, ifindex),
            CtxInner::Shard(s) => s.link_of(self.node, ifindex),
        }
    }

    /// Number of interfaces on this node.
    pub fn n_ifaces(&self) -> usize {
        match &self.inner {
            CtxInner::World(w) => w.nodes[self.node.index()].ifaces.len(),
            CtxInner::Shard(s) => s.n_ifaces(self.node),
        }
    }

    /// Transmit `frame` on `ifindex`. Returns `false` (and counts a drop)
    /// if the interface is not attached to any link.
    pub fn send(&mut self, ifindex: IfIndex, frame: Frame) -> bool {
        let node = self.node;
        match &mut self.inner {
            CtxInner::World(w) => w.send_from(node, ifindex, frame),
            CtxInner::Shard(s) => s.send_from(node, ifindex, frame),
        }
    }

    /// Arm a timer that fires after `d`, delivering `key` to `on_timer`.
    pub fn set_timer_after(&mut self, d: SimDuration, key: TimerKey) -> EventId {
        let at = self.now() + d;
        self.set_timer_at(at, key)
    }

    /// Arm a timer for an absolute instant.
    pub fn set_timer_at(&mut self, at: SimTime, key: TimerKey) -> EventId {
        let node = self.node;
        match &mut self.inner {
            CtxInner::World(w) => w.queue.schedule(
                at,
                WorldEvent::Timer {
                    node,
                    key,
                    incarnation: w.nodes[node.index()].incarnation,
                },
            ),
            CtxInner::Shard(s) => s.set_timer_at(node, at, key),
        }
    }

    /// Cancel a pending timer. Returns false if it already fired.
    pub fn cancel_timer(&mut self, id: EventId) -> bool {
        match &mut self.inner {
            CtxInner::World(w) => w.cancel_event(id),
            CtxInner::Shard(s) => s.cancel_timer(id),
        }
    }

    /// Emit a trace event attributed to this node.
    pub fn trace(&self, category: TraceCategory, f: impl FnOnce() -> String) {
        match &self.inner {
            CtxInner::World(w) => w.tracer.emit_with(w.now(), category, self.node.index(), f),
            CtxInner::Shard(s) => s.trace(self.node, category, f),
        }
    }

    /// Emit a typed trace event attributed to this node. The field closure
    /// runs only when the category is enabled.
    pub fn trace_event(
        &self,
        category: TraceCategory,
        kind: &'static str,
        fields: impl FnOnce() -> Fields,
    ) {
        match &self.inner {
            CtxInner::World(w) => {
                w.tracer
                    .emit_typed(w.now(), category, self.node.index(), kind, fields)
            }
            CtxInner::Shard(s) => s.trace_event(self.node, category, kind, fields),
        }
    }

    /// Mutable access to the global counters.
    pub fn counters(&mut self) -> &mut Counters {
        match &mut self.inner {
            CtxInner::World(w) => &mut w.counters,
            CtxInner::Shard(s) => s.counters(),
        }
    }

    /// Members currently attached to a link (used by test harness nodes).
    pub fn link_members(&self, link: LinkId) -> Vec<(NodeId, IfIndex)> {
        match &self.inner {
            CtxInner::World(w) => w.link_members(link),
            CtxInner::Shard(s) => s.link_members(link),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecPlan;
    use crate::frame::FrameClass;
    use bytes::Bytes;
    use mobicast_sim::defer::defer_or_run;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::{Arc, Mutex};

    type Log = Arc<Mutex<Vec<String>>>;

    fn new_log() -> Log {
        Arc::new(Mutex::new(Vec::new()))
    }

    /// Append through the defer layer: immediate under the sequential
    /// executor, buffered per dispatch and replayed in global order under
    /// the threaded one — so parity tests compare byte-identical logs.
    fn push(log: &Log, line: String) {
        let log = log.clone();
        defer_or_run(move || log.lock().unwrap().push(line));
    }

    fn read(log: &Log) -> Vec<String> {
        log.lock().unwrap().clone()
    }

    /// Records everything that happens to it; replies to "ping" frames.
    struct Probe {
        log: Log,
        reply: bool,
    }

    impl Probe {
        fn new(log: Log, reply: bool) -> Box<Self> {
            Box::new(Probe { log, reply })
        }
    }

    impl NodeBehavior for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            push(&self.log, format!("{}:start", ctx.node));
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, ifindex: IfIndex, frame: &Frame) {
            push(
                &self.log,
                format!(
                    "{}:rx if{} {}B @{}",
                    ctx.node,
                    ifindex,
                    frame.len(),
                    ctx.now()
                ),
            );
            if self.reply && frame.bytes.as_ref() == b"ping" {
                ctx.send(
                    ifindex,
                    Frame::new(Bytes::from_static(b"pong"), FrameClass::Other),
                );
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, key: TimerKey) {
            push(&self.log, format!("{}:timer {}", ctx.node, key.0));
        }
        fn on_link_change(&mut self, ctx: &mut Ctx<'_>, ifindex: IfIndex, link: Option<LinkId>) {
            push(
                &self.log,
                format!("{}:linkchange if{} {:?}", ctx.node, ifindex, link),
            );
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn quick_params() -> LinkParams {
        LinkParams {
            bandwidth_bps: 8_000_000,
            delay: SimDuration::from_micros(10),
        }
    }

    #[test]
    fn broadcast_delivery_to_all_members() {
        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log.clone(), false));
        let c = w.add_node(1, Probe::new(log.clone(), false));
        for n in [a, b, c] {
            w.attach(n, 0, l);
        }
        w.start();
        w.with_node(a, |_b, ctx| {
            ctx.send(
                0,
                Frame::new(Bytes::from_static(b"hello"), FrameClass::Other),
            );
        });
        w.run_to_quiescence(100);
        let log = read(&log);
        // b and c each got it; a (the sender) did not.
        assert_eq!(log.iter().filter(|s| s.contains(":rx")).count(), 2);
        assert!(log.iter().any(|s| s.starts_with("n1:rx")));
        assert!(log.iter().any(|s| s.starts_with("n2:rx")));
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log.clone(), true));
        w.attach(a, 0, l);
        w.attach(b, 0, l);
        w.start();
        w.with_node(a, |_n, ctx| {
            ctx.send(
                0,
                Frame::new(Bytes::from_static(b"ping"), FrameClass::Other),
            );
        });
        w.run_to_quiescence(100);
        // 4 bytes at 1 byte/µs = 4 µs + 10 µs propagation each way.
        let expect_one_way = SimDuration::from_micros(14);
        assert_eq!(w.now(), SimTime::ZERO + expect_one_way + expect_one_way);
        let log = read(&log);
        assert!(
            log.iter().any(|s| s.starts_with("n0:rx")),
            "got pong: {log:?}"
        );
    }

    #[test]
    fn serialization_queueing_delays_back_to_back_frames() {
        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(LinkParams {
            bandwidth_bps: 8_000, // 1 ms per byte
            delay: SimDuration::ZERO,
        });
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log.clone(), false));
        w.attach(a, 0, l);
        w.attach(b, 0, l);
        w.start();
        w.with_node(a, |_n, ctx| {
            ctx.send(
                0,
                Frame::new(Bytes::from_static(&[0; 10]), FrameClass::Other),
            );
            ctx.send(
                0,
                Frame::new(Bytes::from_static(&[0; 10]), FrameClass::Other),
            );
        });
        w.run_to_quiescence(100);
        let log = read(&log);
        let rx: Vec<&String> = log.iter().filter(|s| s.contains("n1:rx")).collect();
        assert_eq!(rx.len(), 2);
        assert!(rx[0].contains("@0.01"), "first at 10ms: {rx:?}");
        assert!(rx[1].contains("@0.02"), "second at 20ms (queued): {rx:?}");
    }

    #[test]
    fn timers_fire_and_cancel() {
        let log = new_log();
        let mut w = World::new();
        let a = w.add_node(0, Probe::new(log.clone(), false));
        w.start();
        let cancelled = w.with_node(a, |_n, ctx| {
            ctx.set_timer_after(SimDuration::from_secs(1), TimerKey(1));
            let id = ctx.set_timer_after(SimDuration::from_secs(2), TimerKey(2));
            ctx.set_timer_after(SimDuration::from_secs(3), TimerKey(3));
            id
        });
        w.at(SimTime::from_millis(500), move |w| {
            w.with_node(NodeId(0), |_n, ctx| {
                assert!(ctx.cancel_timer(cancelled));
            });
        });
        w.run(SimTime::from_secs(10), &ExecPlan::sequential());
        let log = read(&log);
        assert!(log.contains(&"n0:timer 1".to_string()));
        assert!(!log.contains(&"n0:timer 2".to_string()));
        assert!(log.contains(&"n0:timer 3".to_string()));
    }

    #[test]
    fn mobility_notifies_and_redirects_delivery() {
        let log = new_log();
        let mut w = World::new();
        let l1 = w.add_link(quick_params());
        let l2 = w.add_link(quick_params());
        let fixed = w.add_node(1, Probe::new(log.clone(), false));
        let mobile = w.add_node(1, Probe::new(log.clone(), false));
        let fixed2 = w.add_node(1, Probe::new(log.clone(), false));
        w.attach(fixed, 0, l1);
        w.attach(mobile, 0, l1);
        w.attach(fixed2, 0, l2);
        w.start();
        w.at(SimTime::from_secs(1), move |w| {
            w.move_iface(mobile, 0, l2);
        });
        // After the move, a frame sent on l2 must reach the mobile node.
        w.at(SimTime::from_secs(2), move |w| {
            w.with_node(fixed2, |_n, ctx| {
                ctx.send(0, Frame::new(Bytes::from_static(b"hi"), FrameClass::Other));
            });
        });
        w.run(SimTime::from_secs(3), &ExecPlan::sequential());
        let log = read(&log);
        assert!(log.iter().any(|s| s.contains("n1:linkchange if0 None")));
        assert!(log.iter().any(|s| s.contains("n1:linkchange if0 Some(L1)")));
        assert!(log.iter().any(|s| s.starts_with("n1:rx")));
    }

    #[test]
    fn frame_in_flight_to_moved_node_is_dropped() {
        let log = new_log();
        let mut w = World::new();
        // Long propagation delay so we can move the node mid-flight.
        let l1 = w.add_link(LinkParams {
            bandwidth_bps: 100_000_000,
            delay: SimDuration::from_secs(1),
        });
        let l2 = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log.clone(), false));
        w.attach(a, 0, l1);
        w.attach(b, 0, l1);
        w.start();
        w.at(SimTime::from_millis(1), move |w| {
            w.with_node(a, |_n, ctx| {
                ctx.send(0, Frame::new(Bytes::from_static(b"x"), FrameClass::Other));
            });
        });
        w.at(SimTime::from_millis(500), move |w| {
            w.move_iface(b, 0, l2);
        });
        w.run(SimTime::from_secs(3), &ExecPlan::sequential());
        assert_eq!(w.counters().get("world.frames_missed_due_to_move"), 1);
        assert!(!read(&log).iter().any(|s| s.starts_with("n1:rx")));
    }

    #[test]
    fn sending_while_detached_is_counted() {
        let mut w = World::new();
        let log = new_log();
        let a = w.add_node(1, Probe::new(log, false));
        w.start();
        let sent = w.with_node(a, |_n, ctx| {
            ctx.send(0, Frame::new(Bytes::from_static(b"x"), FrameClass::Other))
        });
        assert!(!sent);
        assert_eq!(w.counters().get("world.frames_dropped_detached"), 1);
    }

    #[test]
    fn link_stats_account_sent_bytes() {
        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log, false));
        w.attach(a, 0, l);
        w.attach(b, 0, l);
        w.start();
        w.with_node(a, |_n, ctx| {
            ctx.send(
                0,
                Frame::new(Bytes::from_static(&[0; 64]), FrameClass::MulticastData),
            );
        });
        w.run_to_quiescence(10);
        let stats = w.link_stats(l);
        assert_eq!(stats.bytes[FrameClass::MulticastData.index()], 64);
        assert_eq!(stats.total_frames(), 1);
    }

    #[test]
    fn run_sets_clock_exactly() {
        let mut w = World::new();
        let stats = w.run(SimTime::from_secs(42), &ExecPlan::sequential());
        assert_eq!(w.now(), SimTime::from_secs(42));
        assert_eq!(stats.events_executed, 0);
        assert!(stats.sharded.is_none());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_run() {
        let mut w = World::new();
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.now(), SimTime::from_secs(1));
        let plan = ShardPlan::single(1);
        let stats = w.run_until_sharded(SimTime::from_secs(2), &plan, 1);
        assert_eq!(w.now(), SimTime::from_secs(2));
        assert_eq!(stats.events_total, 0);
    }

    #[test]
    fn downed_link_destroys_frames_both_at_send_and_in_flight() {
        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(LinkParams {
            bandwidth_bps: 100_000_000,
            delay: SimDuration::from_secs(1), // long flight time
        });
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log.clone(), false));
        w.attach(a, 0, l);
        w.attach(b, 0, l);
        w.start();
        // Frame 1 is in flight when the link goes down at t=0.5s.
        w.at(SimTime::from_millis(1), move |w| {
            w.with_node(a, |_n, ctx| {
                ctx.send(0, Frame::new(Bytes::from_static(b"x"), FrameClass::Other));
            });
        });
        w.at(SimTime::from_millis(500), move |w| w.set_link_up(l, false));
        // Frame 2 is handed to the downed link at t=0.6s.
        w.at(SimTime::from_millis(600), move |w| {
            w.with_node(a, |_n, ctx| {
                assert!(ctx.send(0, Frame::new(Bytes::from_static(b"y"), FrameClass::Other)));
            });
        });
        w.at(SimTime::from_secs(2), move |w| w.set_link_up(l, true));
        // Frame 3 after the link is back: delivered.
        w.at(SimTime::from_secs(3), move |w| {
            w.with_node(a, |_n, ctx| {
                ctx.send(0, Frame::new(Bytes::from_static(b"z"), FrameClass::Other));
            });
        });
        w.run(SimTime::from_secs(5), &ExecPlan::sequential());
        assert_eq!(w.counters().get("faults.frames_dropped_link_down"), 2);
        assert_eq!(w.link_stats(l).total_dropped_frames(), 2);
        let log = read(&log);
        assert_eq!(log.iter().filter(|s| s.contains("n1:rx")).count(), 1);
    }

    #[test]
    fn crash_kills_timers_and_restart_rebuilds() {
        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log.clone(), false));
        w.attach(a, 0, l);
        w.attach(b, 0, l);
        w.start();
        // b arms a timer for t=2s, then crashes at t=1s.
        w.with_node(b, |_n, ctx| {
            ctx.set_timer_after(SimDuration::from_secs(2), TimerKey(7));
        });
        w.at(SimTime::from_secs(1), move |w| w.crash_node(b));
        // Frames to a crashed node vanish.
        w.at(SimTime::from_millis(1500), move |w| {
            w.with_node(a, |_n, ctx| {
                ctx.send(
                    0,
                    Frame::new(Bytes::from_static(b"lost"), FrameClass::Other),
                );
            });
        });
        let log2 = log.clone();
        w.at(SimTime::from_secs(3), move |w| {
            w.restart_node(b, Probe::new(log2, false));
        });
        // After restart, delivery works and fresh timers fire.
        w.at(SimTime::from_secs(4), move |w| {
            w.with_node(a, |_n, ctx| {
                ctx.send(
                    0,
                    Frame::new(Bytes::from_static(b"back"), FrameClass::Other),
                );
            });
            w.with_node(b, |_n, ctx| {
                ctx.set_timer_after(SimDuration::from_secs(1), TimerKey(8));
            });
        });
        w.run(SimTime::from_secs(10), &ExecPlan::sequential());
        assert_eq!(w.counters().get("faults.frames_dropped_node_crashed"), 1);
        assert_eq!(w.counters().get("faults.timers_dropped_stale"), 1);
        let log = read(&log);
        assert!(
            !log.contains(&"n1:timer 7".to_string()),
            "stale timer fired"
        );
        assert!(log.contains(&"n1:timer 8".to_string()), "fresh timer lost");
        // on_start ran twice (initial + restart), exactly one rx (post-restart).
        assert_eq!(log.iter().filter(|s| *s == "n1:start").count(), 2);
        assert_eq!(log.iter().filter(|s| s.starts_with("n1:rx")).count(), 1);
    }

    #[test]
    fn lossy_link_drops_are_counted_and_deterministic() {
        use crate::fault::{CorruptionModel, LinkFault, LinkFaultState, LossModel};
        use rand::SeedableRng;

        let run = |seed: u64| {
            let log = new_log();
            let mut w = World::new();
            let l = w.add_link(quick_params());
            let a = w.add_node(1, Probe::new(log.clone(), false));
            let b = w.add_node(1, Probe::new(log.clone(), false));
            w.attach(a, 0, l);
            w.attach(b, 0, l);
            w.set_link_fault(
                l,
                Some(LinkFaultState::new(
                    LinkFault {
                        loss: LossModel::iid(0.3),
                        jitter: SimDuration::from_micros(50),
                        corruption: CorruptionModel::none(),
                    },
                    rand::rngs::SmallRng::seed_from_u64(seed),
                )),
            );
            w.start();
            for i in 0..200u64 {
                w.at(SimTime::from_millis(i * 10), move |w| {
                    w.with_node(a, |_n, ctx| {
                        ctx.send(
                            0,
                            Frame::new(Bytes::from_static(&[0; 8]), FrameClass::Other),
                        );
                    });
                });
            }
            w.run(SimTime::from_secs(5), &ExecPlan::sequential());
            let delivered: Vec<String> = read(&log)
                .iter()
                .filter(|s| s.starts_with("n1:rx"))
                .cloned()
                .collect();
            (w.counters().get("faults.frames_dropped_loss"), delivered)
        };

        let (drops1, rx1) = run(42);
        let (drops2, rx2) = run(42);
        let (drops3, _) = run(43);
        assert_eq!(drops1, drops2, "same seed, same drops");
        assert_eq!(rx1, rx2, "same seed, same delivery times (incl. jitter)");
        assert_ne!(drops1, 0, "30% loss on 200 frames must drop some");
        assert_ne!(drops1 as i64, 200, "and deliver some");
        assert_ne!(drops1, drops3, "different seed, different sequence");
        assert_eq!(drops1 + rx1.len() as u64, 200);
    }

    #[test]
    fn probe_sees_transmissions_and_deliveries_but_not_losses() {
        struct LogProbe(Rc<RefCell<Vec<String>>>);
        impl WorldProbe for LogProbe {
            fn on_transmit(
                &self,
                now: SimTime,
                node: NodeId,
                _ifindex: IfIndex,
                link: LinkId,
                frame: &Frame,
            ) {
                self.0
                    .borrow_mut()
                    .push(format!("tx {node} {link} {}B @{now}", frame.len()));
            }
            fn on_deliver(
                &self,
                _now: SimTime,
                node: NodeId,
                _ifindex: IfIndex,
                link: LinkId,
                frame: &Frame,
            ) {
                self.0
                    .borrow_mut()
                    .push(format!("rx {node} {link} {}B", frame.len()));
            }
        }

        let log = new_log();
        let probe_log = Rc::new(RefCell::new(Vec::new()));
        let mut w = World::new();
        let l = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log.clone(), false));
        let c = w.add_node(1, Probe::new(log, false));
        for n in [a, b, c] {
            w.attach(n, 0, l);
        }
        w.set_probe(Rc::new(LogProbe(probe_log.clone())));
        w.start();
        w.with_node(a, |_n, ctx| {
            ctx.send(
                0,
                Frame::new(Bytes::from_static(&[0; 5]), FrameClass::Other),
            );
        });
        // Crash c so its delivery is destroyed: the probe must not see it.
        w.crash_node(c);
        w.run_to_quiescence(100);
        let plog = probe_log.borrow();
        // One transmission (not one per member), one surviving delivery (b).
        assert_eq!(
            plog.iter().filter(|s| s.starts_with("tx")).count(),
            1,
            "{plog:?}"
        );
        let rx: Vec<&String> = plog.iter().filter(|s| s.starts_with("rx")).collect();
        assert_eq!(rx.len(), 1, "{plog:?}");
        assert!(rx[0].contains("n1"), "{plog:?}");
    }

    #[test]
    fn profiling_counts_events_and_buckets_handlers() {
        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log, false));
        w.attach(a, 0, l);
        w.attach(b, 0, l);
        w.enable_profiling();
        w.start();
        w.with_node(a, |_n, ctx| {
            ctx.set_timer_after(SimDuration::from_secs(1), TimerKey(1));
        });
        w.at(SimTime::from_secs(2), move |w| {
            w.with_node(a, |_n, ctx| {
                ctx.send(0, Frame::new(Bytes::from_static(b"x"), FrameClass::Other));
            });
        });
        w.run(SimTime::from_secs(3), &ExecPlan::sequential());
        // timer + script + one delivery (to b) = 3 events.
        assert_eq!(w.events_executed(), 3);
        assert!(w.queue_depth_high_water() >= 2);
        let prof = w.take_profile().expect("profiling was enabled");
        assert_eq!(prof.events_executed, 3);
        assert_eq!(prof.handlers["deliver"].count, 1);
        assert_eq!(prof.handlers["timer"].count, 1);
        assert_eq!(prof.handlers["script"].count, 1);
        assert!(w.take_profile().is_none(), "profiler detaches on take");
    }

    #[test]
    fn node_counters_attribute_fault_drops() {
        use crate::fault::{CorruptionModel, LinkFault, LinkFaultState, LossModel};
        use rand::SeedableRng;

        let log = new_log();
        let mut w = World::new();
        let l = w.add_link(quick_params());
        let a = w.add_node(1, Probe::new(log.clone(), false));
        let b = w.add_node(1, Probe::new(log, false));
        w.attach(a, 0, l);
        w.attach(b, 0, l);
        w.set_link_fault(
            l,
            Some(LinkFaultState::new(
                LinkFault {
                    loss: LossModel::iid(1.0), // drop everything
                    jitter: SimDuration::ZERO,
                    corruption: CorruptionModel::none(),
                },
                rand::rngs::SmallRng::seed_from_u64(1),
            )),
        );
        w.start();
        w.with_node(a, |_n, ctx| {
            ctx.send(0, Frame::new(Bytes::from_static(b"x"), FrameClass::Other));
        });
        w.run_to_quiescence(10);
        assert_eq!(w.node_counters(b).get("framesDroppedByFault"), 1);
        assert_eq!(w.node_counters(a).get("framesDroppedByFault"), 0);
    }

    #[test]
    fn corrupted_copies_are_counted_and_deterministic() {
        use crate::fault::{CorruptionModel, LinkFault, LinkFaultState};
        use rand::SeedableRng;

        let run = |seed: u64| {
            let log = new_log();
            let mut w = World::new();
            let l = w.add_link(quick_params());
            let a = w.add_node(1, Probe::new(log.clone(), false));
            let b = w.add_node(1, Probe::new(log.clone(), false));
            w.attach(a, 0, l);
            w.attach(b, 0, l);
            w.set_link_fault(
                l,
                Some(LinkFaultState::new(
                    LinkFault {
                        corruption: CorruptionModel::uniform(0.5),
                        ..LinkFault::default()
                    },
                    rand::rngs::SmallRng::seed_from_u64(seed),
                )),
            );
            w.start();
            for i in 0..200u64 {
                w.at(SimTime::from_millis(i * 10), move |w| {
                    w.with_node(a, |_n, ctx| {
                        ctx.send(
                            0,
                            Frame::new(Bytes::from_static(&[0x55; 16]), FrameClass::Other),
                        );
                    });
                });
            }
            w.run(SimTime::from_secs(5), &ExecPlan::sequential());
            let rx: Vec<String> = read(&log)
                .iter()
                .filter(|s| s.starts_with("n1:rx"))
                .cloned()
                .collect();
            (
                w.counters().get("faults.frames_corrupted"),
                w.counters().get("faults.corrupt_duplicate"),
                w.link_stats(l).total_corrupted_frames(),
                w.node_counters(b).get("framesCorruptedOnLink"),
                rx,
            )
        };

        let (c1, dups1, stats1, node1, rx1) = run(42);
        let (c2, _, _, _, rx2) = run(42);
        let (c3, _, _, _, _) = run(43);
        assert_eq!(c1, c2, "same seed, same corruption count");
        assert_eq!(rx1, rx2, "same seed, same deliveries");
        assert_ne!(c1, c3, "different seed, different sequence");
        assert_ne!(c1, 0, "50% corruption on 200 frames must hit some");
        assert_eq!(c1, stats1, "link stats agree with world counter");
        assert_eq!(c1, node1, "receiver attribution agrees");
        // Corruption never destroys a copy outright: every transmission is
        // heard at least once, duplicates add extra deliveries.
        assert_eq!(rx1.len() as u64, 200 + dups1);
    }

    #[test]
    fn zero_corruption_leaves_loss_realization_unchanged() {
        use crate::fault::{CorruptionModel, LinkFault, LinkFaultState, LossModel};
        use rand::SeedableRng;

        // Adding a disabled corruption model must not perturb the drop/jitter
        // sequence of an existing seed — the determinism contract for every
        // scenario recorded before the corruption layer existed.
        let run = |corruption: CorruptionModel| {
            let log = new_log();
            let mut w = World::new();
            let l = w.add_link(quick_params());
            let a = w.add_node(1, Probe::new(log.clone(), false));
            let b = w.add_node(1, Probe::new(log.clone(), false));
            w.attach(a, 0, l);
            w.attach(b, 0, l);
            w.set_link_fault(
                l,
                Some(LinkFaultState::new(
                    LinkFault {
                        loss: LossModel::iid(0.3),
                        jitter: SimDuration::from_micros(50),
                        corruption,
                    },
                    rand::rngs::SmallRng::seed_from_u64(7),
                )),
            );
            w.start();
            for i in 0..100u64 {
                w.at(SimTime::from_millis(i * 10), move |w| {
                    w.with_node(a, |_n, ctx| {
                        ctx.send(
                            0,
                            Frame::new(Bytes::from_static(&[0; 8]), FrameClass::Other),
                        );
                    });
                });
            }
            w.run(SimTime::from_secs(2), &ExecPlan::sequential());
            let rx: Vec<String> = read(&log)
                .iter()
                .filter(|s| s.starts_with("n1:rx"))
                .cloned()
                .collect();
            rx
        };

        assert_eq!(run(CorruptionModel::none()), run(CorruptionModel::none()));
        // weights all zero => is_none() even with positive rate field unused
        let disabled = CorruptionModel {
            rate: 0.0,
            weights: [1.0; crate::fault::CORRUPTION_KIND_COUNT],
            max_replay_delay: SimDuration::from_millis(50),
        };
        assert_eq!(run(CorruptionModel::none()), run(disabled));
    }

    #[test]
    fn sharded_run_matches_sequential_byte_for_byte() {
        // Two links in different shards, ping-pong plus timers plus a
        // scripted move: the sharded loop must produce the identical log
        // (same dispatch order) for every worker count.
        let run = |shards: Option<(ShardPlan, usize)>| {
            let log = new_log();
            let mut w = World::new();
            let l1 = w.add_link(quick_params());
            let l2 = w.add_link(quick_params());
            let a = w.add_node(1, Probe::new(log.clone(), false));
            let b = w.add_node(1, Probe::new(log.clone(), true));
            let c = w.add_node(1, Probe::new(log.clone(), false));
            w.attach(a, 0, l1);
            w.attach(b, 0, l1);
            w.attach(c, 0, l2);
            w.start();
            for i in 0..50u64 {
                w.at(SimTime::from_millis(i * 7), move |w| {
                    w.with_node(a, |_n, ctx| {
                        ctx.send(
                            0,
                            Frame::new(Bytes::from_static(b"ping"), FrameClass::Other),
                        );
                    });
                });
            }
            w.with_node(c, |_n, ctx| {
                ctx.set_timer_after(SimDuration::from_millis(100), TimerKey(1));
            });
            w.at(SimTime::from_millis(200), move |w| w.move_iface(c, 0, l1));
            let end = SimTime::from_secs(1);
            let plan = match shards {
                Some((plan, workers)) => ExecPlan::sharded(plan, workers),
                None => ExecPlan::sequential(),
            };
            let stats = w.run(end, &plan);
            (read(&log), w.events_executed(), stats.sharded)
        };

        let (seq_log, seq_events, _) = run(None);
        let plan = ShardPlan::new(vec![0, 0, 1], SimDuration::from_micros(10));
        let (log1, ev1, stats1) = run(Some((plan.clone(), 1)));
        // workers > 1 takes the threaded backend; 4 workers over 2 shards
        // clamps to 2 threads.
        let (log2, ev2, stats2) = run(Some((plan.clone(), 2)));
        let (log4, ev4, stats4) = run(Some((plan, 4)));
        assert_eq!(seq_log, log1, "sharded(1) diverged from sequential");
        assert_eq!(seq_log, log2, "threaded(2) diverged from sequential");
        assert_eq!(seq_log, log4, "threaded(4) diverged from sequential");
        assert_eq!(seq_events, ev1);
        assert_eq!(seq_events, ev2);
        assert_eq!(seq_events, ev4);
        let (stats1, stats2, stats4) = (stats1.unwrap(), stats2.unwrap(), stats4.unwrap());
        assert!(stats1.same_schedule(&stats2), "schedule stats diverged");
        assert!(stats1.same_schedule(&stats4), "schedule stats diverged");
        assert_eq!(stats1.events_total, seq_events);
        assert!(stats1.windows > 0);
        assert!(stats1.barrier_syncs >= 51, "scripts are barriers");
        assert!(stats1.achievable_speedup() >= 1.0);
        // Both shards saw work: the timer fired in shard 1.
        assert!(stats1.events_per_shard.iter().all(|&n| n > 0));
    }

    #[test]
    fn behavior_downcast() {
        let log = new_log();
        let mut w = World::new();
        let a = w.add_node(0, Probe::new(log, true));
        assert!(w.behavior::<Probe>(a).unwrap().reply);
        w.behavior_mut::<Probe>(a).unwrap().reply = false;
        assert!(!w.behavior::<Probe>(a).unwrap().reply);
    }
}
