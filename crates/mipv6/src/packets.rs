//! Helpers that wrap Mobile IPv6 signalling into real IPv6 packets.
//!
//! Binding Updates travel as destination options in an otherwise empty
//! packet, together with a Home Address option identifying the mobile host
//! (the care-of address is the IPv6 source). Binding Acknowledgements go
//! back to the care-of address.

use bytes::Bytes;
use mobicast_ipv6::exthdr::{BindingAck, BindingUpdate, ExtHeader, Option6};
use mobicast_ipv6::packet::{proto, Packet};
use std::net::Ipv6Addr;

/// Build the Binding Update packet a mobile node sends from its care-of
/// address to its home agent.
pub fn binding_update_packet(
    care_of: Ipv6Addr,
    home_agent: Ipv6Addr,
    home_address: Ipv6Addr,
    bu: BindingUpdate,
) -> Packet {
    Packet::new(care_of, home_agent, proto::NONE, Bytes::new()).with_ext(
        ExtHeader::DestinationOptions(vec![
            Option6::HomeAddress(home_address),
            Option6::BindingUpdate(bu),
        ]),
    )
}

/// Build the Binding Acknowledgement packet a home agent returns to the
/// mobile node's care-of address.
pub fn binding_ack_packet(home_agent: Ipv6Addr, care_of: Ipv6Addr, ack: BindingAck) -> Packet {
    Packet::new(home_agent, care_of, proto::NONE, Bytes::new()).with_ext(
        ExtHeader::DestinationOptions(vec![Option6::BindingAck(ack)]),
    )
}

/// Extract `(home_address, binding_update)` from a received packet, if it
/// carries one.
pub fn parse_binding_update(p: &Packet) -> Option<(Ipv6Addr, BindingUpdate)> {
    let opts = p.dest_options()?;
    let home = opts.iter().find_map(|o| match o {
        Option6::HomeAddress(a) => Some(*a),
        _ => None,
    })?;
    let bu = opts.iter().find_map(|o| match o {
        Option6::BindingUpdate(b) => Some(b.clone()),
        _ => None,
    })?;
    Some((home, bu))
}

/// Extract a Binding Acknowledgement from a received packet.
pub fn parse_binding_ack(p: &Packet) -> Option<BindingAck> {
    p.dest_options()?.iter().find_map(|o| match o {
        Option6::BindingAck(b) => Some(b.clone()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicast_ipv6::addr::GroupAddr;
    use mobicast_ipv6::exthdr::{SubOption, BU_FLAG_ACK, BU_FLAG_HOME};

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn binding_update_round_trip_through_wire() {
        let bu = BindingUpdate {
            flags: BU_FLAG_ACK | BU_FLAG_HOME,
            sequence: 3,
            lifetime_secs: 256,
            sub_options: vec![SubOption::MulticastGroupList(vec![GroupAddr::test_group(
                1,
            )])],
        };
        let p = binding_update_packet(
            a("2001:db8:6::9"),
            a("2001:db8:4::d"),
            a("2001:db8:4::9"),
            bu.clone(),
        );
        let wire = p.encode();
        let q = Packet::decode(&wire).unwrap();
        let (home, got) = parse_binding_update(&q).expect("BU present");
        assert_eq!(home, a("2001:db8:4::9"));
        assert_eq!(got, bu);
        assert_eq!(q.src, a("2001:db8:6::9"), "sent from the care-of address");
    }

    #[test]
    fn binding_ack_round_trip() {
        let ack = BindingAck {
            status: 0,
            sequence: 3,
            lifetime_secs: 256,
            refresh_secs: 128,
        };
        let p = binding_ack_packet(a("2001:db8:4::d"), a("2001:db8:6::9"), ack.clone());
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(parse_binding_ack(&q), Some(ack));
        assert!(parse_binding_update(&q).is_none());
    }

    #[test]
    fn plain_packet_has_no_bindings() {
        let p = Packet::new(a("::1"), a("::2"), proto::NONE, Bytes::new());
        assert!(parse_binding_update(&p).is_none());
        assert!(parse_binding_ack(&p).is_none());
    }

    #[test]
    fn bu_signalling_size_is_accounted() {
        // The paper counts extended Binding Updates as protocol overhead;
        // the wire length must grow by exactly 16 bytes per group.
        let size_with = |n: u16| {
            let groups: Vec<GroupAddr> = (0..n).map(GroupAddr::test_group).collect();
            let bu = BindingUpdate {
                flags: BU_FLAG_HOME,
                sequence: 1,
                lifetime_secs: 256,
                sub_options: vec![SubOption::MulticastGroupList(groups)],
            };
            binding_update_packet(a("::1"), a("::2"), a("::3"), bu).wire_len()
        };
        let base = size_with(0);
        for n in 1..6 {
            let len = size_with(n);
            // Padding to 8-byte alignment may absorb part of the growth,
            // but 16-byte groups keep alignment stable.
            assert_eq!(len, base + 16 * usize::from(n));
        }
    }
}
