//! The mobile node side of Mobile IPv6 (draft-ietf-mobileip-ipv6-10,
//! simplified to what the paper's scenarios exercise).
//!
//! Movement detection is driven by Router Advertisements: when the mobile
//! node hears an RA for a prefix other than its home prefix, it forms a
//! care-of address by stateless autoconfiguration (RFC 2462) and registers
//! it with its home agent via a Binding Update. The machine optionally
//! appends the paper's Multicast Group List Sub-Option so the home agent
//! joins groups on the host's behalf (receive-via-tunnel strategies).

use mobicast_ipv6::addr::{GroupAddr, Prefix};
use mobicast_ipv6::exthdr::{BindingUpdate, SubOption, BU_FLAG_ACK, BU_FLAG_HOME};
use mobicast_sim::{SimDuration, SimTime};
use std::net::Ipv6Addr;

/// Default binding lifetime; the paper cites
/// `MAX_BINDACK_TIMEOUT = 256 s` from the draft.
pub const DEFAULT_BINDING_LIFETIME: SimDuration = SimDuration::from_secs(256);

/// First retransmission timeout for an unacknowledged Binding Update
/// (draft §11.8: `INITIAL_BINDACK_TIMEOUT`).
pub const INITIAL_BINDACK_TIMEOUT: SimDuration = SimDuration::from_secs(1);

/// Retransmission backoff cap (draft §11.8: `MAX_BINDACK_TIMEOUT`).
pub const MAX_BINDACK_TIMEOUT: SimDuration = SimDuration::from_secs(256);

/// Where the mobile node currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Location {
    AtHome,
    Away { care_of: Ipv6Addr },
}

/// Outputs of the mobile-node machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MnOutput {
    /// Transmit a Binding Update to the current mobility agent (the home
    /// agent, or a regional MAP-style agent after
    /// [`MobileNode::set_agent`]). The glue wraps it in an IPv6 packet from
    /// `source` carrying a Home Address option.
    SendBindingUpdate {
        home_agent: Ipv6Addr,
        source: Ipv6Addr,
        binding_update: BindingUpdate,
    },
}

/// Mobile IPv6 state of one mobile host.
#[derive(Debug)]
pub struct MobileNode {
    home_address: Ipv6Addr,
    home_prefix: Prefix,
    home_agent: Ipv6Addr,
    /// Where Binding Updates currently go: the home agent by default, or a
    /// regional (MAP-style) agent selected by a hierarchical delivery
    /// policy via [`MobileNode::set_agent`].
    agent: Ipv6Addr,
    /// Interface identifier used for stateless autoconfiguration.
    iid: u64,
    sequence: u16,
    location: Location,
    lifetime: SimDuration,
    /// When to refresh the binding (while away).
    refresh_at: Option<SimTime>,
    /// The last Binding Update sent, kept until acknowledged so it can be
    /// retransmitted verbatim (same sequence number, draft §11.8).
    pending_bu: Option<BindingUpdate>,
    /// When to retransmit the pending Binding Update.
    retransmit_at: Option<SimTime>,
    /// Current retransmission timeout; doubles per retry up to
    /// [`MAX_BINDACK_TIMEOUT`].
    retransmit_timeout: SimDuration,
    /// Groups to advertise in the Multicast Group List Sub-Option.
    groups: Vec<GroupAddr>,
    /// Whether Binding Updates carry the group list (paper Fig. 5) —
    /// enabled by the receive-via-home-tunnel strategies.
    include_group_list: bool,
    binding_updates_sent: u64,
    /// Times a fresh Binding Update replaced a still-unacknowledged one
    /// (rapid-roaming signalling churn metric).
    bu_replaced: u64,
}

impl MobileNode {
    pub fn new(
        home_address: Ipv6Addr,
        home_prefix: Prefix,
        home_agent: Ipv6Addr,
        iid: u64,
        include_group_list: bool,
    ) -> Self {
        debug_assert!(home_prefix.contains(home_address));
        MobileNode {
            home_address,
            home_prefix,
            home_agent,
            agent: home_agent,
            iid,
            sequence: 0,
            location: Location::AtHome,
            lifetime: DEFAULT_BINDING_LIFETIME,
            refresh_at: None,
            pending_bu: None,
            retransmit_at: None,
            retransmit_timeout: INITIAL_BINDACK_TIMEOUT,
            groups: Vec::new(),
            include_group_list,
            binding_updates_sent: 0,
            bu_replaced: 0,
        }
    }

    pub fn home_address(&self) -> Ipv6Addr {
        self.home_address
    }

    pub fn home_agent(&self) -> Ipv6Addr {
        self.home_agent
    }

    /// The agent Binding Updates are currently addressed to.
    pub fn agent(&self) -> Ipv6Addr {
        self.agent
    }

    /// Retarget registration at a different mobility agent (hierarchical
    /// policies: the domain MAP while roaming inside its domain, the home
    /// agent elsewhere). A no-op when `agent` is already the target.
    ///
    /// When the target changes while the node holds (or is establishing) a
    /// binding away from home, the previous agent is released with a
    /// fire-and-forget zero-lifetime Binding Update — no ack is requested
    /// because the reply would race the handoff the retarget is part of.
    /// In-flight registration state is dropped; the next Router
    /// Advertisement registers cleanly with the new agent.
    pub fn set_agent(&mut self, agent: Ipv6Addr) -> Vec<MnOutput> {
        if agent == self.agent {
            return Vec::new();
        }
        let old = std::mem::replace(&mut self.agent, agent);
        let mut out = Vec::new();
        if !self.at_home() {
            self.sequence = self.sequence.wrapping_add(1);
            self.binding_updates_sent += 1;
            out.push(MnOutput::SendBindingUpdate {
                home_agent: old,
                source: self.current_address(),
                binding_update: BindingUpdate {
                    flags: BU_FLAG_HOME,
                    sequence: self.sequence,
                    lifetime_secs: 0,
                    sub_options: Vec::new(),
                },
            });
        }
        self.pending_bu = None;
        self.retransmit_at = None;
        self.refresh_at = None;
        out
    }

    pub fn location(&self) -> Location {
        self.location
    }

    pub fn at_home(&self) -> bool {
        self.location == Location::AtHome
    }

    /// The source address this host currently uses on the wire: the care-of
    /// address when away (Mobile IPv6 §10.1), the home address at home.
    pub fn current_address(&self) -> Ipv6Addr {
        match self.location {
            Location::AtHome => self.home_address,
            Location::Away { care_of } => care_of,
        }
    }

    /// Signalling load metric: number of Binding Updates sent.
    pub fn binding_updates_sent(&self) -> u64 {
        self.binding_updates_sent
    }

    /// Pending (unacknowledged) Binding Updates: 0 or 1 in this
    /// single-slot implementation. Feeds the retransmit-queue
    /// high-water metric.
    pub fn pending_bu_depth(&self) -> usize {
        usize::from(self.pending_bu.is_some())
    }

    /// Times a fresh Binding Update replaced a still-unacknowledged one.
    pub fn bu_replaced(&self) -> u64 {
        self.bu_replaced
    }

    fn build_bu(&mut self, lifetime: SimDuration, now: SimTime) -> Vec<MnOutput> {
        self.sequence = self.sequence.wrapping_add(1);
        self.binding_updates_sent += 1;
        let mut sub_options = Vec::new();
        if self.include_group_list && !lifetime.is_zero() {
            sub_options.push(SubOption::MulticastGroupList(self.groups.clone()));
        }
        let secs = lifetime.as_nanos() / 1_000_000_000;
        let bu = BindingUpdate {
            flags: BU_FLAG_ACK | BU_FLAG_HOME,
            sequence: self.sequence,
            lifetime_secs: secs.min(u64::from(u32::MAX)) as u32,
            sub_options,
        };
        self.refresh_at = if lifetime.is_zero() {
            None
        } else {
            // Refresh at 80 % of the lifetime so the binding never lapses.
            Some(now + lifetime.mul_f64(0.8))
        };
        // Every BU requests an ack; retransmit until one arrives. A BU
        // still awaiting its ack is superseded, not queued.
        if self.pending_bu.is_some() {
            self.bu_replaced += 1;
        }
        self.pending_bu = Some(bu.clone());
        self.retransmit_timeout = INITIAL_BINDACK_TIMEOUT;
        self.retransmit_at = Some(now + INITIAL_BINDACK_TIMEOUT);
        vec![MnOutput::SendBindingUpdate {
            home_agent: self.agent,
            source: self.current_address(),
            binding_update: bu,
        }]
    }

    /// A Router Advertisement for `prefix` was heard on the host's
    /// interface. Performs movement detection and, when a new foreign link
    /// is detected, care-of address configuration + Binding Update.
    pub fn on_router_advert(&mut self, prefix: Prefix, now: SimTime) -> Vec<MnOutput> {
        if prefix == self.home_prefix {
            return match self.location {
                Location::AtHome => Vec::new(),
                Location::Away { .. } => {
                    // Returned home: deregister the binding.
                    self.location = Location::AtHome;
                    self.build_bu(SimDuration::ZERO, now)
                }
            };
        }
        let care_of = prefix.addr_with_iid(self.iid);
        match self.location {
            Location::Away { care_of: cur } if cur == care_of => Vec::new(), // same link
            _ => {
                self.location = Location::Away { care_of };
                self.build_bu(self.lifetime, now)
            }
        }
    }

    /// A Binding Acknowledgement arrived. An accepted ack confirms the
    /// pending Binding Update and stops its retransmission; a rejected ack
    /// (while away) triggers an immediate retry with a fresh sequence.
    pub fn on_binding_ack(&mut self, accepted: bool, now: SimTime) -> Vec<MnOutput> {
        self.pending_bu = None;
        self.retransmit_at = None;
        if accepted || self.at_home() {
            return Vec::new();
        }
        self.build_bu(self.lifetime, now)
    }

    /// Update the group list the host wants its home agent to serve. While
    /// away (and when the sub-option is enabled), a fresh Binding Update
    /// carries the change immediately — the paper's extended BU.
    pub fn set_groups(&mut self, groups: Vec<GroupAddr>, now: SimTime) -> Vec<MnOutput> {
        self.groups = groups;
        if !self.at_home() && self.include_group_list {
            self.build_bu(self.lifetime, now)
        } else {
            Vec::new()
        }
    }

    pub fn groups(&self) -> &[GroupAddr] {
        &self.groups
    }

    /// Send an unscheduled Binding Update refreshing the current binding
    /// (used by storm scripts to model BU floods: a buggy or hostile mobile
    /// re-registering far faster than the refresh timer requires). At home
    /// there is no binding to refresh, so nothing happens.
    pub fn force_refresh(&mut self, now: SimTime) -> Vec<MnOutput> {
        if self.at_home() {
            return Vec::new();
        }
        self.build_bu(self.lifetime, now)
    }

    /// Next instant the machine needs a timer callback: the earlier of the
    /// binding refresh and the pending-BU retransmission.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.refresh_at, self.retransmit_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire the timer: retransmit an unacknowledged Binding Update (with
    /// exponential backoff, draft §11.8) and/or refresh the binding.
    pub fn on_deadline(&mut self, now: SimTime) -> Vec<MnOutput> {
        let mut out = Vec::new();
        if matches!(self.retransmit_at, Some(t) if t <= now) {
            match self.pending_bu.clone() {
                Some(bu) => {
                    // Same sequence number: this is a retransmission, not a
                    // new registration.
                    self.retransmit_timeout =
                        (self.retransmit_timeout * 2).min(MAX_BINDACK_TIMEOUT);
                    self.retransmit_at = Some(now + self.retransmit_timeout);
                    self.binding_updates_sent += 1;
                    out.push(MnOutput::SendBindingUpdate {
                        home_agent: self.agent,
                        source: self.current_address(),
                        binding_update: bu,
                    });
                }
                None => self.retransmit_at = None,
            }
        }
        if matches!(self.refresh_at, Some(t) if t <= now) && !self.at_home() {
            out.extend(self.build_bu(self.lifetime, now));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }
    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn mn(with_groups: bool) -> MobileNode {
        MobileNode::new(
            a("2001:db8:4::1234"),
            p("2001:db8:4::/64"),
            a("2001:db8:4::d"),
            0x1234,
            with_groups,
        )
    }

    #[test]
    fn home_ra_while_home_is_quiet() {
        let mut m = mn(false);
        assert!(m.on_router_advert(p("2001:db8:4::/64"), t(0)).is_empty());
        assert!(m.at_home());
        assert_eq!(m.current_address(), a("2001:db8:4::1234"));
    }

    #[test]
    fn foreign_ra_triggers_coa_and_binding_update() {
        let mut m = mn(false);
        let out = m.on_router_advert(p("2001:db8:6::/64"), t(5));
        assert_eq!(out.len(), 1);
        match &out[0] {
            MnOutput::SendBindingUpdate {
                home_agent,
                source,
                binding_update,
            } => {
                assert_eq!(*home_agent, a("2001:db8:4::d"));
                assert_eq!(*source, a("2001:db8:6::1234"), "SLAAC care-of address");
                assert!(binding_update.home_registration());
                assert!(binding_update.ack_requested());
                assert_eq!(binding_update.lifetime_secs, 256);
                assert!(binding_update.multicast_groups().is_none());
            }
        }
        assert!(!m.at_home());
        assert_eq!(m.current_address(), a("2001:db8:6::1234"));
        assert_eq!(m.binding_updates_sent(), 1);
    }

    #[test]
    fn repeated_ra_on_same_link_is_quiet() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(5));
        assert!(m.on_router_advert(p("2001:db8:6::/64"), t(10)).is_empty());
        assert_eq!(m.binding_updates_sent(), 1);
    }

    #[test]
    fn moving_again_re_registers() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(5));
        let out = m.on_router_advert(p("2001:db8:1::/64"), t(50));
        assert_eq!(out.len(), 1);
        assert_eq!(m.current_address(), a("2001:db8:1::1234"));
        assert_eq!(m.binding_updates_sent(), 2);
    }

    #[test]
    fn returning_home_deregisters() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(5));
        let out = m.on_router_advert(p("2001:db8:4::/64"), t(60));
        match &out[0] {
            MnOutput::SendBindingUpdate { binding_update, .. } => {
                assert_eq!(binding_update.lifetime_secs, 0, "deregistration");
            }
        }
        assert!(m.at_home());
        // The deregistration BU itself awaits an ack; once acknowledged,
        // nothing is pending at home.
        m.on_binding_ack(true, t(61));
        assert_eq!(m.next_deadline(), None, "no refresh while home");
    }

    #[test]
    fn group_list_included_when_enabled() {
        let mut m = mn(true);
        m.set_groups(vec![g(1), g(2)], t(0));
        let out = m.on_router_advert(p("2001:db8:6::/64"), t(5));
        match &out[0] {
            MnOutput::SendBindingUpdate { binding_update, .. } => {
                assert_eq!(
                    binding_update.multicast_groups().unwrap(),
                    &[g(1), g(2)],
                    "paper Fig. 5 sub-option"
                );
            }
        }
    }

    #[test]
    fn group_change_while_away_sends_fresh_bu() {
        let mut m = mn(true);
        m.on_router_advert(p("2001:db8:6::/64"), t(5));
        let out = m.set_groups(vec![g(3)], t(20));
        assert_eq!(out.len(), 1, "extended BU on group change");
        // Without the sub-option enabled nothing is sent.
        let mut m2 = mn(false);
        m2.on_router_advert(p("2001:db8:6::/64"), t(5));
        assert!(m2.set_groups(vec![g(3)], t(20)).is_empty());
    }

    #[test]
    fn binding_refresh_fires_at_80_percent() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(0));
        // Until the BU is acked, the next deadline is its retransmission.
        m.on_binding_ack(true, t(1));
        // 80% of 256 s = 204.8 s.
        let dl = m.next_deadline().unwrap();
        assert_eq!(dl, SimTime::from_nanos(204_800_000_000));
        let out = m.on_deadline(dl);
        assert_eq!(out.len(), 1, "refresh BU");
        m.on_binding_ack(true, dl + SimDuration::from_millis(10));
        assert!(m.next_deadline().unwrap() > dl);
    }

    #[test]
    fn unacked_bu_retransmits_with_exponential_backoff() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(0));
        assert_eq!(m.binding_updates_sent(), 1);
        // First retransmission after INITIAL_BINDACK_TIMEOUT = 1 s.
        assert_eq!(m.next_deadline(), Some(t(1)));
        // Retries at t = 1, 3, 7, 15, 31, 63, 127 (gaps 2, 4, ..., 128);
        // past that, the 204.8 s binding refresh precedes the next retry.
        let mut now = t(1);
        let mut expected_gap = 2u64; // doubled after the first retry
        for _ in 0..7 {
            let out = m.on_deadline(now);
            assert_eq!(out.len(), 1, "retransmission at {now}");
            match &out[0] {
                MnOutput::SendBindingUpdate { binding_update, .. } => {
                    assert_eq!(binding_update.sequence, 1, "same sequence on retry");
                }
            }
            now += SimDuration::from_secs(expected_gap);
            expected_gap *= 2;
        }
        assert_eq!(now, t(255), "exponential backoff schedule");
        // 1 original + 7 retransmissions.
        assert_eq!(m.binding_updates_sent(), 8);
        // An accepted ack stops the retransmission cycle.
        m.on_binding_ack(true, t(130));
        assert_eq!(
            m.next_deadline(),
            Some(SimTime::from_nanos(204_800_000_000)),
            "only the refresh remains armed"
        );
        assert!(m.on_deadline(now + SimDuration::from_secs(300)).len() == 1);
    }

    #[test]
    fn deadline_before_retransmit_time_is_a_no_op() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(0));
        assert!(m.on_deadline(SimTime::from_millis(500)).is_empty());
        assert_eq!(m.binding_updates_sent(), 1);
    }

    #[test]
    fn new_movement_replaces_pending_bu() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(0));
        // Moves again before the first BU is acked: the new BU (seq 2)
        // supersedes the old one and retransmission restarts at 1 s.
        let out = m.on_router_advert(p("2001:db8:1::/64"), t(10));
        match &out[0] {
            MnOutput::SendBindingUpdate { binding_update, .. } => {
                assert_eq!(binding_update.sequence, 2);
            }
        }
        assert_eq!(m.next_deadline(), Some(t(11)));
        let retry = m.on_deadline(t(11));
        match &retry[0] {
            MnOutput::SendBindingUpdate {
                binding_update,
                source,
                ..
            } => {
                assert_eq!(binding_update.sequence, 2, "retries the newest BU");
                assert_eq!(*source, a("2001:db8:1::1234"));
            }
        }
    }

    #[test]
    fn retarget_while_away_releases_old_agent_and_registers_with_new() {
        let mut m = mn(true);
        m.set_groups(vec![g(1)], t(0));
        m.on_router_advert(p("2001:db8:6::/64"), t(5));
        m.on_binding_ack(true, t(6));
        // Switch to a regional agent: one fire-and-forget deregistration
        // to the old agent, no retransmission armed for it.
        let out = m.set_agent(a("2001:db8:5::e"));
        assert_eq!(out.len(), 1);
        match &out[0] {
            MnOutput::SendBindingUpdate {
                home_agent,
                binding_update,
                ..
            } => {
                assert_eq!(
                    *home_agent,
                    a("2001:db8:4::d"),
                    "dereg goes to the old agent"
                );
                assert_eq!(binding_update.lifetime_secs, 0);
                assert!(!binding_update.ack_requested(), "fire-and-forget");
            }
        }
        assert_eq!(m.agent(), a("2001:db8:5::e"));
        assert_eq!(m.next_deadline(), None, "old binding state dropped");
        // The next movement registers with the new agent.
        let out = m.on_router_advert(p("2001:db8:5::/64"), t(10));
        match &out[0] {
            MnOutput::SendBindingUpdate { home_agent, .. } => {
                assert_eq!(*home_agent, a("2001:db8:5::e"));
            }
        }
        // Retargeting to the current agent is a strict no-op.
        assert!(m.set_agent(a("2001:db8:5::e")).is_empty());
    }

    #[test]
    fn retarget_at_home_is_silent() {
        let mut m = mn(false);
        let out = m.set_agent(a("2001:db8:5::e"));
        assert!(out.is_empty(), "no binding exists at home to release");
        assert_eq!(m.home_agent(), a("2001:db8:4::d"), "home agent unchanged");
        assert_eq!(m.binding_updates_sent(), 0);
    }

    #[test]
    fn rejected_ack_retries() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(0));
        assert!(m.on_binding_ack(true, t(1)).is_empty());
        let out = m.on_binding_ack(false, t(2));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut m = mn(false);
        m.on_router_advert(p("2001:db8:6::/64"), t(0));
        let out = m.on_router_advert(p("2001:db8:1::/64"), t(10));
        match &out[0] {
            MnOutput::SendBindingUpdate { binding_update, .. } => {
                assert_eq!(binding_update.sequence, 2);
            }
        }
    }
}
