//! # mobicast-mipv6
//!
//! Mobile IPv6 (draft-ietf-mobileip-ipv6-10 subset) as sans-IO state
//! machines: the mobile node ([`MobileNode`]: RA-driven movement detection,
//! stateless care-of address configuration, Binding Updates with refresh)
//! and the home agent ([`HomeAgent`]: binding cache, interception of
//! home-addressed traffic, multicast proxy membership driven by the paper's
//! proposed **Multicast Group List Sub-Option**).
//!
//! Packet construction helpers live in [`packets`]; actual transmission is
//! the job of the node glue in `mobicast-core`.

pub mod binding;
pub mod home_agent;
pub mod mobile;
pub mod packets;

pub use binding::{BindingCache, BindingView, CacheDelta};
pub use home_agent::{HaNote, HaOutput, HomeAgent};
pub use mobile::{Location, MnOutput, MobileNode, DEFAULT_BINDING_LIFETIME};
