//! The binding cache kept by a home agent (draft-ietf-mobileip-ipv6-10 §4.4)
//! extended with the paper's per-binding multicast group list (the data the
//! proposed Multicast Group List Sub-Option carries, §4.3.2).

use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;

/// One binding: home address → care-of address, plus the multicast groups
/// the mobile host asked its home agent to join on its behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindingEntry {
    pub care_of: Ipv6Addr,
    pub expires: SimTime,
    pub sequence: u16,
    pub groups: Vec<GroupAddr>,
}

/// Effect of a cache update, as seen by the multicast proxy machinery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheDelta {
    /// Groups whose subscriber count went 0 → 1 (proxy must join).
    pub groups_added: Vec<GroupAddr>,
    /// Groups whose subscriber count went 1 → 0 (proxy must leave).
    pub groups_removed: Vec<GroupAddr>,
}

impl CacheDelta {
    pub fn is_empty(&self) -> bool {
        self.groups_added.is_empty() && self.groups_removed.is_empty()
    }
}

/// The home agent's binding cache.
#[derive(Debug, Default)]
pub struct BindingCache {
    entries: BTreeMap<Ipv6Addr, BindingEntry>,
    /// Subscriber counts per group across all bindings.
    group_refs: BTreeMap<GroupAddr, usize>,
}

impl BindingCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn lookup(&self, home: Ipv6Addr) -> Option<&BindingEntry> {
        self.entries.get(&home)
    }

    pub fn contains(&self, home: Ipv6Addr) -> bool {
        self.entries.contains_key(&home)
    }

    /// Remove the binding closest to expiry (ties break on home-address
    /// order) to make room for a new one. Returns the victim and the
    /// proxy-group delta, or `None` when the cache is empty.
    pub fn evict_stalest(&mut self) -> Option<(Ipv6Addr, CacheDelta)> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(h, e)| (e.expires, **h))
            .map(|(h, _)| *h)?;
        let mut delta = CacheDelta::default();
        if let Some(e) = self.entries.remove(&victim) {
            self.unref_groups(&e.groups, &mut delta);
        }
        Some((victim, delta))
    }

    /// All `(home, entry)` pairs, in home-address order (oracle freshness
    /// checks walk the whole cache).
    pub fn entries(&self) -> impl Iterator<Item = (&Ipv6Addr, &BindingEntry)> {
        self.entries.iter()
    }

    /// Care-of addresses of every binding subscribed to `group`, in home
    /// address order (the fan-out set for tunnelled multicast).
    pub fn subscribers(&self, group: GroupAddr) -> Vec<(Ipv6Addr, Ipv6Addr)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.groups.contains(&group))
            .map(|(home, e)| (*home, e.care_of))
            .collect()
    }

    /// All groups with at least one subscriber.
    pub fn subscribed_groups(&self) -> Vec<GroupAddr> {
        self.group_refs.keys().copied().collect()
    }

    fn ref_groups(&mut self, groups: &[GroupAddr], delta: &mut CacheDelta) {
        for g in groups {
            let c = self.group_refs.entry(*g).or_insert(0);
            *c += 1;
            if *c == 1 {
                delta.groups_added.push(*g);
            }
        }
    }

    fn unref_groups(&mut self, groups: &[GroupAddr], delta: &mut CacheDelta) {
        for g in groups {
            if let Some(c) = self.group_refs.get_mut(g) {
                *c -= 1;
                if *c == 0 {
                    self.group_refs.remove(g);
                    delta.groups_removed.push(*g);
                }
            }
        }
    }

    /// Register or refresh a binding. `lifetime` of zero deregisters.
    /// Returns the proxy-group delta.
    pub fn update(
        &mut self,
        home: Ipv6Addr,
        care_of: Ipv6Addr,
        lifetime: SimDuration,
        sequence: u16,
        groups: Vec<GroupAddr>,
        now: SimTime,
    ) -> CacheDelta {
        let mut delta = CacheDelta::default();
        if lifetime.is_zero() {
            if let Some(old) = self.entries.remove(&home) {
                self.unref_groups(&old.groups, &mut delta);
            }
            return delta;
        }
        let expires = now + lifetime;
        match self.entries.get_mut(&home) {
            Some(e) => {
                let old_groups = std::mem::take(&mut e.groups);
                e.care_of = care_of;
                e.expires = expires;
                e.sequence = sequence;
                e.groups = groups.clone();
                self.ref_groups(&groups, &mut delta);
                self.unref_groups(&old_groups, &mut delta);
            }
            None => {
                self.entries.insert(
                    home,
                    BindingEntry {
                        care_of,
                        expires,
                        sequence,
                        groups: groups.clone(),
                    },
                );
                self.ref_groups(&groups, &mut delta);
            }
        }
        delta
    }

    /// Earliest binding expiry.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.entries.values().map(|e| e.expires).min()
    }

    /// Drop expired bindings (the paper: a missing refresh lets the home
    /// agent "give up the representation of the host as member of its
    /// multicast group"). Returns the expired homes and the proxy delta.
    pub fn expire(&mut self, now: SimTime) -> (Vec<Ipv6Addr>, CacheDelta) {
        let mut delta = CacheDelta::default();
        let dead: Vec<Ipv6Addr> = self
            .entries
            .iter()
            .filter(|(_, e)| e.expires <= now)
            .map(|(h, _)| *h)
            .collect();
        for h in &dead {
            if let Some(e) = self.entries.remove(h) {
                self.unref_groups(&e.groups, &mut delta);
            }
        }
        (dead, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }
    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    const LIFE: SimDuration = SimDuration::from_secs(256);

    #[test]
    fn register_and_lookup() {
        let mut c = BindingCache::new();
        let d = c.update(
            a("2001:db8:4::9"),
            a("2001:db8:1::9"),
            LIFE,
            1,
            vec![],
            t(0),
        );
        assert!(d.is_empty());
        let e = c.lookup(a("2001:db8:4::9")).unwrap();
        assert_eq!(e.care_of, a("2001:db8:1::9"));
        assert_eq!(e.expires, t(256));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn group_refcounting_across_hosts() {
        let mut c = BindingCache::new();
        let d1 = c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        assert_eq!(d1.groups_added, vec![g(1)], "first subscriber joins");
        let d2 = c.update(a("::b"), a("::b1"), LIFE, 1, vec![g(1), g(2)], t(0));
        assert_eq!(d2.groups_added, vec![g(2)], "g1 already subscribed");
        // First host drops g1.
        let d3 = c.update(a("::a"), a("::a1"), LIFE, 2, vec![], t(1));
        assert!(d3.groups_removed.is_empty(), "::b still holds g1");
        // Second host deregisters entirely.
        let d4 = c.update(a("::b"), a("::b1"), SimDuration::ZERO, 3, vec![], t(2));
        let mut removed = d4.groups_removed.clone();
        removed.sort();
        assert_eq!(removed, vec![g(1), g(2)]);
        assert!(c.subscribed_groups().is_empty());
    }

    #[test]
    fn subscribers_fan_out() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        c.update(a("::b"), a("::b1"), LIFE, 1, vec![g(1)], t(0));
        c.update(a("::c"), a("::c1"), LIFE, 1, vec![g(2)], t(0));
        let subs = c.subscribers(g(1));
        assert_eq!(subs, vec![(a("::a"), a("::a1")), (a("::b"), a("::b1"))]);
    }

    #[test]
    fn refresh_moves_expiry_and_coa() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        let d = c.update(a("::a"), a("::a2"), LIFE, 2, vec![g(1)], t(100));
        assert!(d.is_empty(), "same groups: no proxy change");
        let e = c.lookup(a("::a")).unwrap();
        assert_eq!(e.care_of, a("::a2"));
        assert_eq!(e.expires, t(356));
        assert_eq!(e.sequence, 2);
    }

    #[test]
    fn expiry_releases_groups() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        c.update(a("::b"), a("::b1"), LIFE, 1, vec![g(1)], t(50));
        assert_eq!(c.next_deadline(), Some(t(256)));
        let (dead, delta) = c.expire(t(256));
        assert_eq!(dead, vec![a("::a")]);
        assert!(delta.groups_removed.is_empty(), "::b still subscribed");
        let (dead, delta) = c.expire(t(306));
        assert_eq!(dead, vec![a("::b")]);
        assert_eq!(delta.groups_removed, vec![g(1)]);
        assert!(c.is_empty());
    }

    #[test]
    fn dereg_of_unknown_home_is_noop() {
        let mut c = BindingCache::new();
        let d = c.update(a("::a"), a("::a1"), SimDuration::ZERO, 1, vec![], t(0));
        assert!(d.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn group_churn_within_one_host() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1), g(2)], t(0));
        let d = c.update(a("::a"), a("::a1"), LIFE, 2, vec![g(2), g(3)], t(1));
        assert_eq!(d.groups_added, vec![g(3)]);
        assert_eq!(d.groups_removed, vec![g(1)]);
    }
}
