//! The binding cache kept by a home agent (draft-ietf-mobileip-ipv6-10 §4.4)
//! extended with the paper's per-binding multicast group list (the data the
//! proposed Multicast Group List Sub-Option carries, §4.3.2).
//!
//! State lives in struct-of-arrays columns — interned home/care-of address
//! ids, expiry, sequence, and a per-binding list of interned group ids —
//! indexed by a reusable slot, with an `order` index sorted by home
//! address preserving the old `BTreeMap` iteration order byte-for-byte.
//! Expiry scans, eviction and the oracle's freshness checks are linear
//! sweeps over dense columns; per-group subscriber counts are aggregated
//! in `group_refs` (the paper's aggregation level: one entry per group
//! per home agent, however many bindings subscribe).

use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::arena::{InternId, SharedInterner};
use mobicast_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;

/// A read-only view of one binding: home address → care-of address, plus
/// registration metadata. Copied out of the columns on lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BindingView {
    pub care_of: Ipv6Addr,
    pub expires: SimTime,
    pub sequence: u16,
}

/// Effect of a cache update, as seen by the multicast proxy machinery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheDelta {
    /// Groups whose subscriber count went 0 → 1 (proxy must join).
    pub groups_added: Vec<GroupAddr>,
    /// Groups whose subscriber count went 1 → 0 (proxy must leave).
    pub groups_removed: Vec<GroupAddr>,
}

impl CacheDelta {
    pub fn is_empty(&self) -> bool {
        self.groups_added.is_empty() && self.groups_removed.is_empty()
    }
}

/// The home agent's binding cache (SoA columns + interned addresses).
#[derive(Debug)]
pub struct BindingCache {
    /// Home and care-of addresses share one world-level id space.
    addrs: SharedInterner<Ipv6Addr>,
    groups_interner: SharedInterner<GroupAddr>,
    /// Columns, indexed by slot. A slot is live iff `live[slot]`.
    home: Vec<InternId>,
    care_of: Vec<InternId>,
    expires: Vec<SimTime>,
    sequence: Vec<u16>,
    /// Interned ids of the groups each binding subscribes to, in the
    /// order the Binding Update listed them.
    groups: Vec<Vec<InternId>>,
    live: Vec<bool>,
    /// Retired slots available for reuse (LIFO).
    free: Vec<u32>,
    /// Live slots sorted by home address.
    order: Vec<u32>,
    /// Subscriber counts per group across all bindings.
    group_refs: BTreeMap<GroupAddr, usize>,
    /// Conservative lower bound on every live expiry (`SimTime::MAX` when
    /// empty); see `min_expires()`.
    min_expires: SimTime,
}

impl Default for BindingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl BindingCache {
    /// A cache with its own private id spaces (unit tests).
    pub fn new() -> Self {
        Self::with_interners(
            mobicast_sim::shared_interner(),
            mobicast_sim::shared_interner(),
        )
    }

    /// A cache drawing address and group ids from world-level interners.
    pub fn with_interners(
        addrs: SharedInterner<Ipv6Addr>,
        groups: SharedInterner<GroupAddr>,
    ) -> Self {
        BindingCache {
            addrs,
            groups_interner: groups,
            home: Vec::new(),
            care_of: Vec::new(),
            expires: Vec::new(),
            sequence: Vec::new(),
            groups: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            group_refs: BTreeMap::new(),
            min_expires: SimTime::MAX,
        }
    }

    fn resolve_addr(&self, id: InternId) -> Ipv6Addr {
        *self
            .addrs
            .borrow()
            .resolve(id)
            .unwrap_or_else(|| unreachable!("live slot holds an interned address"))
    }

    fn resolve_group(&self, id: InternId) -> GroupAddr {
        *self
            .groups_interner
            .borrow()
            .resolve(id)
            .unwrap_or_else(|| unreachable!("binding holds an interned group"))
    }

    fn home_of(&self, slot: u32) -> Ipv6Addr {
        self.resolve_addr(self.home[slot as usize])
    }

    /// Binary search `order` for `home`.
    fn locate(&self, home: Ipv6Addr) -> Result<usize, usize> {
        self.order
            .binary_search_by(|&slot| self.home_of(slot).cmp(&home))
    }

    fn slot_of(&self, home: Ipv6Addr) -> Option<u32> {
        self.locate(home).ok().map(|pos| self.order[pos])
    }

    fn view(&self, slot: u32) -> BindingView {
        let i = slot as usize;
        BindingView {
            care_of: self.resolve_addr(self.care_of[i]),
            expires: self.expires[i],
            sequence: self.sequence[i],
        }
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn lookup(&self, home: Ipv6Addr) -> Option<BindingView> {
        self.slot_of(home).map(|slot| self.view(slot))
    }

    pub fn contains(&self, home: Ipv6Addr) -> bool {
        self.locate(home).is_ok()
    }

    /// Remove the binding closest to expiry (ties break on home-address
    /// order) to make room for a new one. Returns the victim and the
    /// proxy-group delta, or `None` when the cache is empty.
    pub fn evict_stalest(&mut self) -> Option<(Ipv6Addr, CacheDelta)> {
        let victim = self
            .order
            .iter()
            .map(|&slot| (self.expires[slot as usize], self.home_of(slot)))
            .min()
            .map(|(_, h)| h)?;
        let mut delta = CacheDelta::default();
        self.remove_slot(victim, &mut delta);
        Some((victim, delta))
    }

    /// All `(home, binding)` pairs, in home-address order (oracle
    /// freshness checks walk the whole cache — guarded by
    /// [`BindingCache::min_expires`] so they rarely have to).
    pub fn entries(&self) -> impl Iterator<Item = (Ipv6Addr, BindingView)> + '_ {
        self.order
            .iter()
            .map(|&slot| (self.home_of(slot), self.view(slot)))
    }

    /// Care-of addresses of every binding subscribed to `group`, in home
    /// address order (the fan-out set for tunnelled multicast).
    pub fn subscribers(&self, group: GroupAddr) -> Vec<(Ipv6Addr, Ipv6Addr)> {
        let Some(gid) = self.groups_interner.borrow().get(&group) else {
            return Vec::new();
        };
        self.order
            .iter()
            .filter(|&&slot| self.groups[slot as usize].contains(&gid))
            .map(|&slot| {
                (
                    self.home_of(slot),
                    self.resolve_addr(self.care_of[slot as usize]),
                )
            })
            .collect()
    }

    /// All groups with at least one subscriber.
    pub fn subscribed_groups(&self) -> Vec<GroupAddr> {
        self.group_refs.keys().copied().collect()
    }

    fn ref_groups(&mut self, groups: &[InternId], delta: &mut CacheDelta) {
        for &gid in groups {
            let g = self.resolve_group(gid);
            let c = self.group_refs.entry(g).or_insert(0);
            *c += 1;
            if *c == 1 {
                delta.groups_added.push(g);
            }
        }
    }

    fn unref_groups(&mut self, groups: &[InternId], delta: &mut CacheDelta) {
        for &gid in groups {
            let g = self.resolve_group(gid);
            if let Some(c) = self.group_refs.get_mut(&g) {
                *c -= 1;
                if *c == 0 {
                    self.group_refs.remove(&g);
                    delta.groups_removed.push(g);
                }
            }
        }
    }

    fn remove_slot(&mut self, home: Ipv6Addr, delta: &mut CacheDelta) -> bool {
        let Ok(pos) = self.locate(home) else {
            return false;
        };
        let slot = self.order.remove(pos);
        let old_groups = std::mem::take(&mut self.groups[slot as usize]);
        self.unref_groups(&old_groups, delta);
        self.live[slot as usize] = false;
        self.free.push(slot);
        if self.order.is_empty() {
            self.min_expires = SimTime::MAX;
        }
        true
    }

    /// Register or refresh a binding. `lifetime` of zero deregisters.
    /// Returns the proxy-group delta.
    pub fn update(
        &mut self,
        home: Ipv6Addr,
        care_of: Ipv6Addr,
        lifetime: SimDuration,
        sequence: u16,
        groups: Vec<GroupAddr>,
        now: SimTime,
    ) -> CacheDelta {
        let mut delta = CacheDelta::default();
        if lifetime.is_zero() {
            self.remove_slot(home, &mut delta);
            return delta;
        }
        let expires = now + lifetime;
        // The id spaces span the full u32 range — in any buildable
        // topology interning cannot fail, but degrade to ignoring the
        // update rather than panicking if it ever does.
        let Ok(coa_id) = self.addrs.borrow_mut().intern(care_of) else {
            return delta;
        };
        let gids: Vec<InternId> = {
            let mut gi = self.groups_interner.borrow_mut();
            let Ok(gids) = groups.iter().map(|g| gi.intern(*g)).collect() else {
                return delta;
            };
            gids
        };
        match self.slot_of(home) {
            Some(slot) => {
                let i = slot as usize;
                let old_groups = std::mem::replace(&mut self.groups[i], gids.clone());
                self.care_of[i] = coa_id;
                self.expires[i] = expires;
                self.sequence[i] = sequence;
                self.ref_groups(&gids, &mut delta);
                self.unref_groups(&old_groups, &mut delta);
            }
            None => {
                let Ok(home_id) = self.addrs.borrow_mut().intern(home) else {
                    return delta;
                };
                let slot = match self.free.pop() {
                    Some(slot) => {
                        let i = slot as usize;
                        self.home[i] = home_id;
                        self.care_of[i] = coa_id;
                        self.expires[i] = expires;
                        self.sequence[i] = sequence;
                        self.groups[i] = gids.clone();
                        self.live[i] = true;
                        slot
                    }
                    None => {
                        let slot = self.home.len() as u32;
                        self.home.push(home_id);
                        self.care_of.push(coa_id);
                        self.expires.push(expires);
                        self.sequence.push(sequence);
                        self.groups.push(gids.clone());
                        self.live.push(true);
                        slot
                    }
                };
                let pos = match self.locate(home) {
                    Ok(_) => unreachable!("insert of a present home"),
                    Err(pos) => pos,
                };
                self.order.insert(pos, slot);
                self.ref_groups(&gids, &mut delta);
            }
        }
        self.min_expires = self.min_expires.min(expires);
        delta
    }

    /// Earliest binding expiry (linear sweep over the expiry column).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.order
            .iter()
            .map(|&slot| self.expires[slot as usize])
            .min()
    }

    /// O(1) conservative lower bound on all binding expiries. If this is
    /// in the future, no binding can be overdue — the guard that keeps
    /// oracle polls flat as binding counts grow.
    pub fn min_expires(&self) -> SimTime {
        self.min_expires
    }

    /// Drop expired bindings (the paper: a missing refresh lets the home
    /// agent "give up the representation of the host as member of its
    /// multicast group"). Returns the expired homes and the proxy delta.
    pub fn expire(&mut self, now: SimTime) -> (Vec<Ipv6Addr>, CacheDelta) {
        let mut delta = CacheDelta::default();
        let dead: Vec<Ipv6Addr> = self
            .order
            .iter()
            .filter(|&&slot| self.expires[slot as usize] <= now)
            .map(|&slot| self.home_of(slot))
            .collect();
        for h in &dead {
            self.remove_slot(*h, &mut delta);
        }
        // The sweep visited everything anyway: recompute the watermark
        // exactly so the next poll-guard read is tight again.
        self.min_expires = self
            .order
            .iter()
            .map(|&slot| self.expires[slot as usize])
            .min()
            .unwrap_or(SimTime::MAX);
        (dead, delta)
    }

    /// Deterministic byte audit of the cache, per the documented model:
    /// every allocated slot costs its column footprint (home 4 + care-of
    /// 4 + expires 8 + sequence 2 + group-list header 24 + live 1 = 43
    /// bytes) plus 4 bytes per subscribed group id; the sorted index and
    /// free list cost 4 bytes per entry; the per-group refcount map costs
    /// one `(GroupAddr, usize)` pair per distinct group. No allocator
    /// introspection — the same numbers on every platform.
    pub fn state_bytes(&self) -> usize {
        let per_slot = 4 + 4 + 8 + 2 + 24 + 1;
        let group_ids: usize = self.groups.iter().map(Vec::len).sum();
        self.home.len() * per_slot
            + group_ids * 4
            + (self.order.len() + self.free.len()) * 4
            + self.group_refs.len() * (16 + 8)
    }
}

/// The pre-SoA binding cache — one boxed map node per binding, full
/// 16-byte addresses throughout — kept verbatim as the reference model
/// for the differential state tests.
#[cfg(any(test, feature = "legacy_state"))]
pub mod legacy {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct LegacyBindingEntry {
        pub care_of: Ipv6Addr,
        pub expires: SimTime,
        pub sequence: u16,
        pub groups: Vec<GroupAddr>,
    }

    #[derive(Debug, Default)]
    pub struct LegacyBindingCache {
        entries: BTreeMap<Ipv6Addr, Box<LegacyBindingEntry>>,
        group_refs: BTreeMap<GroupAddr, usize>,
    }

    impl LegacyBindingCache {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }

        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        pub fn lookup(&self, home: Ipv6Addr) -> Option<&LegacyBindingEntry> {
            self.entries.get(&home).map(Box::as_ref)
        }

        pub fn evict_stalest(&mut self) -> Option<(Ipv6Addr, CacheDelta)> {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(h, e)| (e.expires, **h))
                .map(|(h, _)| *h)?;
            let mut delta = CacheDelta::default();
            if let Some(e) = self.entries.remove(&victim) {
                self.unref_groups(&e.groups, &mut delta);
            }
            Some((victim, delta))
        }

        pub fn entries(&self) -> impl Iterator<Item = (&Ipv6Addr, &LegacyBindingEntry)> {
            self.entries.iter().map(|(h, e)| (h, e.as_ref()))
        }

        pub fn subscribers(&self, group: GroupAddr) -> Vec<(Ipv6Addr, Ipv6Addr)> {
            self.entries
                .iter()
                .filter(|(_, e)| e.groups.contains(&group))
                .map(|(home, e)| (*home, e.care_of))
                .collect()
        }

        pub fn subscribed_groups(&self) -> Vec<GroupAddr> {
            self.group_refs.keys().copied().collect()
        }

        fn ref_groups(&mut self, groups: &[GroupAddr], delta: &mut CacheDelta) {
            for g in groups {
                let c = self.group_refs.entry(*g).or_insert(0);
                *c += 1;
                if *c == 1 {
                    delta.groups_added.push(*g);
                }
            }
        }

        fn unref_groups(&mut self, groups: &[GroupAddr], delta: &mut CacheDelta) {
            for g in groups {
                if let Some(c) = self.group_refs.get_mut(g) {
                    *c -= 1;
                    if *c == 0 {
                        self.group_refs.remove(g);
                        delta.groups_removed.push(*g);
                    }
                }
            }
        }

        pub fn update(
            &mut self,
            home: Ipv6Addr,
            care_of: Ipv6Addr,
            lifetime: SimDuration,
            sequence: u16,
            groups: Vec<GroupAddr>,
            now: SimTime,
        ) -> CacheDelta {
            let mut delta = CacheDelta::default();
            if lifetime.is_zero() {
                if let Some(old) = self.entries.remove(&home) {
                    self.unref_groups(&old.groups, &mut delta);
                }
                return delta;
            }
            let expires = now + lifetime;
            match self.entries.get_mut(&home) {
                Some(e) => {
                    let old_groups = std::mem::take(&mut e.groups);
                    e.care_of = care_of;
                    e.expires = expires;
                    e.sequence = sequence;
                    e.groups = groups.clone();
                    self.ref_groups(&groups, &mut delta);
                    self.unref_groups(&old_groups, &mut delta);
                }
                None => {
                    self.entries.insert(
                        home,
                        Box::new(LegacyBindingEntry {
                            care_of,
                            expires,
                            sequence,
                            groups: groups.clone(),
                        }),
                    );
                    self.ref_groups(&groups, &mut delta);
                }
            }
            delta
        }

        pub fn next_deadline(&self) -> Option<SimTime> {
            self.entries.values().map(|e| e.expires).min()
        }

        pub fn expire(&mut self, now: SimTime) -> (Vec<Ipv6Addr>, CacheDelta) {
            let mut delta = CacheDelta::default();
            let dead: Vec<Ipv6Addr> = self
                .entries
                .iter()
                .filter(|(_, e)| e.expires <= now)
                .map(|(h, _)| *h)
                .collect();
            for h in &dead {
                if let Some(e) = self.entries.remove(h) {
                    self.unref_groups(&e.groups, &mut delta);
                }
            }
            (dead, delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }
    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    const LIFE: SimDuration = SimDuration::from_secs(256);

    #[test]
    fn register_and_lookup() {
        let mut c = BindingCache::new();
        let d = c.update(
            a("2001:db8:4::9"),
            a("2001:db8:1::9"),
            LIFE,
            1,
            vec![],
            t(0),
        );
        assert!(d.is_empty());
        let e = c.lookup(a("2001:db8:4::9")).unwrap();
        assert_eq!(e.care_of, a("2001:db8:1::9"));
        assert_eq!(e.expires, t(256));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn group_refcounting_across_hosts() {
        let mut c = BindingCache::new();
        let d1 = c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        assert_eq!(d1.groups_added, vec![g(1)], "first subscriber joins");
        let d2 = c.update(a("::b"), a("::b1"), LIFE, 1, vec![g(1), g(2)], t(0));
        assert_eq!(d2.groups_added, vec![g(2)], "g1 already subscribed");
        // First host drops g1.
        let d3 = c.update(a("::a"), a("::a1"), LIFE, 2, vec![], t(1));
        assert!(d3.groups_removed.is_empty(), "::b still holds g1");
        // Second host deregisters entirely.
        let d4 = c.update(a("::b"), a("::b1"), SimDuration::ZERO, 3, vec![], t(2));
        let mut removed = d4.groups_removed.clone();
        removed.sort();
        assert_eq!(removed, vec![g(1), g(2)]);
        assert!(c.subscribed_groups().is_empty());
    }

    #[test]
    fn subscribers_fan_out() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        c.update(a("::b"), a("::b1"), LIFE, 1, vec![g(1)], t(0));
        c.update(a("::c"), a("::c1"), LIFE, 1, vec![g(2)], t(0));
        let subs = c.subscribers(g(1));
        assert_eq!(subs, vec![(a("::a"), a("::a1")), (a("::b"), a("::b1"))]);
    }

    #[test]
    fn refresh_moves_expiry_and_coa() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        let d = c.update(a("::a"), a("::a2"), LIFE, 2, vec![g(1)], t(100));
        assert!(d.is_empty(), "same groups: no proxy change");
        let e = c.lookup(a("::a")).unwrap();
        assert_eq!(e.care_of, a("::a2"));
        assert_eq!(e.expires, t(356));
        assert_eq!(e.sequence, 2);
    }

    #[test]
    fn expiry_releases_groups() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1)], t(0));
        c.update(a("::b"), a("::b1"), LIFE, 1, vec![g(1)], t(50));
        assert_eq!(c.next_deadline(), Some(t(256)));
        let (dead, delta) = c.expire(t(256));
        assert_eq!(dead, vec![a("::a")]);
        assert!(delta.groups_removed.is_empty(), "::b still subscribed");
        let (dead, delta) = c.expire(t(306));
        assert_eq!(dead, vec![a("::b")]);
        assert_eq!(delta.groups_removed, vec![g(1)]);
        assert!(c.is_empty());
    }

    #[test]
    fn dereg_of_unknown_home_is_noop() {
        let mut c = BindingCache::new();
        let d = c.update(a("::a"), a("::a1"), SimDuration::ZERO, 1, vec![], t(0));
        assert!(d.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn group_churn_within_one_host() {
        let mut c = BindingCache::new();
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![g(1), g(2)], t(0));
        let d = c.update(a("::a"), a("::a1"), LIFE, 2, vec![g(2), g(3)], t(1));
        assert_eq!(d.groups_added, vec![g(3)]);
        assert_eq!(d.groups_removed, vec![g(1)]);
    }

    #[test]
    fn watermark_guards_expiry_polls() {
        let mut c = BindingCache::new();
        assert_eq!(c.min_expires(), SimTime::MAX);
        c.update(a("::a"), a("::a1"), LIFE, 1, vec![], t(0));
        c.update(a("::b"), a("::b1"), LIFE, 1, vec![], t(40));
        assert_eq!(c.min_expires(), t(256));
        // Nothing can be overdue before the watermark.
        assert!(c.min_expires() > t(100));
        let (dead, _) = c.expire(t(256));
        assert_eq!(dead, vec![a("::a")]);
        assert_eq!(c.min_expires(), t(296), "sweep retightens the watermark");
    }

    /// Differential state model: the SoA cache and the legacy boxed-map
    /// cache driven through identical randomized register/refresh/move/
    /// deregister/expiry/evict ops must return identical deltas and
    /// expose identical observable state after every single op — 8
    /// seeds' worth.
    #[test]
    fn differential_vs_legacy_boxed_map() {
        use legacy::LegacyBindingCache;
        use mobicast_sim::RngFactory;
        use rand::Rng;

        fn home(i: u16) -> Ipv6Addr {
            Ipv6Addr::from(0x2001_0db8_0004_0000_0000_0000_0000_0000u128 + u128::from(i))
        }
        fn coa(i: u16) -> Ipv6Addr {
            Ipv6Addr::from(0x2001_0db8_0001_0000_0000_0000_0000_0000u128 + u128::from(i))
        }

        for seed in 0..8u64 {
            let rng_factory = RngFactory::new(seed);
            let mut rng = rng_factory.stream("bc-diff");
            let mut soa = BindingCache::new();
            let mut old = LegacyBindingCache::new();
            let mut now = 0u64;
            let mut seq = 0u16;
            for step in 0..400 {
                now += rng.random_range(0u64..40);
                seq = seq.wrapping_add(1);
                let h = home(rng.random_range(0u16..16));
                match rng.random_range(0u32..6) {
                    // Register / refresh / move with a random group list.
                    0..=2 => {
                        let n_groups = rng.random_range(0usize..4);
                        let groups: Vec<GroupAddr> = (0..n_groups)
                            .map(|_| GroupAddr::test_group(rng.random_range(0u16..12)))
                            .collect();
                        // Duplicate groups in one BU are possible on the
                        // wire; both models must agree on them too.
                        let c = coa(rng.random_range(0u16..8));
                        let life = SimDuration::from_secs(rng.random_range(1u64..300));
                        let d1 = soa.update(h, c, life, seq, groups.clone(), t(now));
                        let d2 = old.update(h, c, life, seq, groups, t(now));
                        assert_eq!(d1, d2, "seed {seed} step {step}: delta diverged");
                    }
                    // Deregister.
                    3 => {
                        let d1 = soa.update(h, coa(0), SimDuration::ZERO, seq, vec![], t(now));
                        let d2 = old.update(h, coa(0), SimDuration::ZERO, seq, vec![], t(now));
                        assert_eq!(d1, d2, "seed {seed} step {step}: dereg diverged");
                    }
                    // Expiry sweep.
                    4 => {
                        let (dead1, d1) = soa.expire(t(now));
                        let (dead2, d2) = old.expire(t(now));
                        assert_eq!(dead1, dead2, "seed {seed} step {step}: dead diverged");
                        assert_eq!(d1, d2);
                    }
                    // Evict-stalest (budget pressure).
                    _ => {
                        let r1 = soa.evict_stalest();
                        let r2 = old.evict_stalest();
                        assert_eq!(r1, r2, "seed {seed} step {step}: victim diverged");
                    }
                }
                // Full observable state must match after every op.
                assert_eq!(soa.len(), old.len());
                assert_eq!(soa.next_deadline(), old.next_deadline());
                assert_eq!(soa.subscribed_groups(), old.subscribed_groups());
                let snap1: Vec<(Ipv6Addr, Ipv6Addr, SimTime, u16)> = soa
                    .entries()
                    .map(|(h, v)| (h, v.care_of, v.expires, v.sequence))
                    .collect();
                let snap2: Vec<(Ipv6Addr, Ipv6Addr, SimTime, u16)> = old
                    .entries()
                    .map(|(h, e)| (*h, e.care_of, e.expires, e.sequence))
                    .collect();
                assert_eq!(snap1, snap2, "seed {seed} step {step}: entries diverged");
                for grp in soa.subscribed_groups() {
                    assert_eq!(soa.subscribers(grp), old.subscribers(grp));
                }
                // Watermark invariant: never later than any live expiry.
                for (_, v) in soa.entries() {
                    assert!(soa.min_expires() <= v.expires);
                }
            }
        }
    }
}
