//! The home agent: binding registration, proxy group membership, and the
//! decision logic for tunnelling intercepted traffic to mobile hosts.
//!
//! The paper's "second (and more general) scenario" (§4.3.2) is implemented:
//! the home agent is *not* assumed to be a PIM-DM router; it learns the
//! mobile host's multicast subscriptions from the extended Binding Update
//! (Multicast Group List Sub-Option) and acts as an ordinary MLD listener
//! on the home link on the host's behalf. The owning router node feeds
//! [`HaOutput::ProxyJoin`]/[`HaOutput::ProxyLeave`] into its local MLD host
//! machine.

use crate::binding::{BindingCache, CacheDelta};
use mobicast_ipv6::addr::GroupAddr;
use mobicast_ipv6::exthdr::{BindingAck, BindingUpdate};
use mobicast_sim::arena::SharedInterner;
use mobicast_sim::{ShedPolicy, SimDuration, SimTime};
use std::net::Ipv6Addr;

/// Outputs of the home-agent machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HaOutput {
    /// Send a Binding Acknowledgement to the mobile host's care-of address.
    SendBindingAck {
        care_of: Ipv6Addr,
        home: Ipv6Addr,
        ack: BindingAck,
    },
    /// Start proxy MLD membership for `0` on the home link.
    ProxyJoin(GroupAddr),
    /// Stop proxy MLD membership.
    ProxyLeave(GroupAddr),
}

/// Admission-control transitions, buffered for the owner to drain with
/// [`HomeAgent::take_notes`] and convert into counters and trace events.
/// Notes carry no behavioural weight: dropping them changes nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaNote {
    /// A first-time registration was refused because the binding cache is
    /// at capacity under [`ShedPolicy::RejectNew`].
    BindingShed { home: Ipv6Addr },
    /// The stalest binding was evicted to admit a new registration under
    /// [`ShedPolicy::EvictStalest`].
    BindingEvicted { home: Ipv6Addr },
    /// A Binding Update older than the cached binding (modulo-2^16
    /// sequence comparison, draft-10 §4.4) was discarded — a replayed or
    /// reordered update must not reinstall a stale care-of address.
    BindingStaleSeq { home: Ipv6Addr },
}

/// Home-agent state for one router.
#[derive(Debug, Default)]
pub struct HomeAgent {
    cache: BindingCache,
    /// Processing-load metrics (the paper's "system load" criterion).
    pub binding_updates_processed: u64,
    pub packets_tunneled: u64,
    /// Binding-cache capacity; `None` = unbounded (the default).
    budget: Option<u32>,
    shed_policy: ShedPolicy,
    notes: Vec<HaNote>,
}

impl HomeAgent {
    pub fn new() -> Self {
        Self::default()
    }

    /// A home agent whose binding cache draws address and group ids from
    /// world-level interners shared across every node.
    pub fn with_interners(
        addrs: SharedInterner<Ipv6Addr>,
        groups: SharedInterner<GroupAddr>,
    ) -> Self {
        HomeAgent {
            cache: BindingCache::with_interners(addrs, groups),
            ..Self::default()
        }
    }

    /// Bound the binding cache at `capacity` entries, shedding per
    /// `policy`. `None` restores the unbounded default.
    pub fn set_budget(&mut self, capacity: Option<u32>, policy: ShedPolicy) {
        self.budget = capacity;
        self.shed_policy = policy;
    }

    /// Drain buffered admission-control notes (see [`HaNote`]).
    pub fn take_notes(&mut self) -> Vec<HaNote> {
        std::mem::take(&mut self.notes)
    }

    pub fn cache(&self) -> &BindingCache {
        &self.cache
    }

    /// Number of bindings currently held (state-load metric) — an O(1)
    /// occupancy counter read.
    pub fn binding_count(&self) -> usize {
        self.cache.len()
    }

    /// Deterministic byte audit of the binding cache (see
    /// [`BindingCache::state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.cache.state_bytes()
    }

    fn delta_outputs(delta: CacheDelta) -> Vec<HaOutput> {
        let mut out = Vec::new();
        for g in delta.groups_added {
            out.push(HaOutput::ProxyJoin(g));
        }
        for g in delta.groups_removed {
            out.push(HaOutput::ProxyLeave(g));
        }
        out
    }

    /// Process a Binding Update received from `care_of` for `home`.
    pub fn on_binding_update(
        &mut self,
        home: Ipv6Addr,
        care_of: Ipv6Addr,
        bu: &BindingUpdate,
        now: SimTime,
    ) -> Vec<HaOutput> {
        self.binding_updates_processed += 1;
        // Sequence freshness (draft-10 §4.4): an update strictly older than
        // the cached one — in the modulo-2^16 half-window sense — is a
        // replay or reordering artifact and must not clobber newer state.
        // Equal sequence numbers pass: retransmissions of the current BU
        // are idempotent and still deserve an acknowledgement.
        if let Some(e) = self.cache.lookup(home) {
            if bu.sequence != e.sequence && bu.sequence.wrapping_sub(e.sequence) & 0x8000 != 0 {
                self.notes.push(HaNote::BindingStaleSeq { home });
                return Vec::new();
            }
        }
        let groups = bu
            .multicast_groups()
            .map(<[GroupAddr]>::to_vec)
            .unwrap_or_default();
        let lifetime = SimDuration::from_secs(u64::from(bu.lifetime_secs));
        let mut out = Vec::new();
        // Admission control: only first-time registrations can grow the
        // cache; refreshes and deregistrations always pass.
        if !lifetime.is_zero() && !self.cache.contains(home) {
            if let Some(cap) = self.budget {
                if self.cache.len() >= cap as usize {
                    match self.shed_policy {
                        // Also taken when eviction cannot make room
                        // (capacity zero).
                        ShedPolicy::EvictStalest if !self.cache.is_empty() => {
                            if let Some((victim, delta)) = self.cache.evict_stalest() {
                                self.notes.push(HaNote::BindingEvicted { home: victim });
                                out.extend(Self::delta_outputs(delta));
                            }
                        }
                        _ => {
                            // Silent drop: the mobile host's BU retransmit
                            // machinery retries once load subsides.
                            self.notes.push(HaNote::BindingShed { home });
                            return out;
                        }
                    }
                }
            }
        }
        let delta = self
            .cache
            .update(home, care_of, lifetime, bu.sequence, groups, now);
        out.extend(Self::delta_outputs(delta));
        if bu.ack_requested() {
            out.push(HaOutput::SendBindingAck {
                care_of,
                home,
                ack: BindingAck {
                    status: 0,
                    sequence: bu.sequence,
                    lifetime_secs: bu.lifetime_secs,
                    refresh_secs: bu.lifetime_secs / 2,
                },
            });
        }
        out
    }

    /// Should a unicast packet for `dst` be intercepted and tunnelled?
    /// Returns the care-of address if so.
    pub fn intercept(&self, dst: Ipv6Addr) -> Option<Ipv6Addr> {
        self.cache.lookup(dst).map(|e| e.care_of)
    }

    /// `(home, care-of)` pairs to tunnel a multicast datagram for `group`
    /// to (the paper's observation that co-located receivers each get
    /// their own unicast copy falls straight out of this list). The home
    /// address lets the caller attribute the tunnel copy to its agent role
    /// — home agent for on-link homes, regional MAP otherwise.
    pub fn multicast_tunnel_targets(&mut self, group: GroupAddr) -> Vec<(Ipv6Addr, Ipv6Addr)> {
        let targets = self.cache.subscribers(group);
        self.packets_tunneled += targets.len() as u64;
        targets
    }

    /// Is any binding subscribed to `group`?
    pub fn has_group_subscribers(&self, group: GroupAddr) -> bool {
        !self.cache.subscribers(group).is_empty()
    }

    /// Earliest binding expiry.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.cache.next_deadline()
    }

    /// Expire stale bindings; returns proxy-leave outputs.
    pub fn on_deadline(&mut self, now: SimTime) -> Vec<HaOutput> {
        let (_dead, delta) = self.cache.expire(now);
        Self::delta_outputs(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicast_ipv6::exthdr::{SubOption, BU_FLAG_ACK, BU_FLAG_HOME};

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }
    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn bu(seq: u16, lifetime: u32, groups: Vec<GroupAddr>) -> BindingUpdate {
        let mut sub_options = Vec::new();
        if !groups.is_empty() {
            sub_options.push(SubOption::MulticastGroupList(groups));
        }
        BindingUpdate {
            flags: BU_FLAG_ACK | BU_FLAG_HOME,
            sequence: seq,
            lifetime_secs: lifetime,
            sub_options,
        }
    }

    #[test]
    fn binding_update_acked_and_cached() {
        let mut ha = HomeAgent::new();
        let out = ha.on_binding_update(a("::aa"), a("::c"), &bu(1, 256, vec![]), t(0));
        assert_eq!(out.len(), 1);
        match &out[0] {
            HaOutput::SendBindingAck { care_of, home, ack } => {
                assert_eq!(*care_of, a("::c"));
                assert_eq!(*home, a("::aa"));
                assert!(ack.accepted());
                assert_eq!(ack.sequence, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ha.intercept(a("::aa")), Some(a("::c")));
        assert_eq!(ha.intercept(a("::ee")), None);
        assert_eq!(ha.binding_count(), 1);
        assert_eq!(ha.binding_updates_processed, 1);
    }

    #[test]
    fn group_list_triggers_proxy_join_and_leave() {
        let mut ha = HomeAgent::new();
        let out = ha.on_binding_update(a("::aa"), a("::c"), &bu(1, 256, vec![g(1)]), t(0));
        assert!(out.contains(&HaOutput::ProxyJoin(g(1))));
        // Deregistration releases the proxy membership.
        let out = ha.on_binding_update(a("::aa"), a("::c"), &bu(2, 0, vec![]), t(10));
        assert!(out.contains(&HaOutput::ProxyLeave(g(1))));
        assert_eq!(ha.binding_count(), 0);
    }

    #[test]
    fn multicast_fanout_counts_tunnel_load() {
        let mut ha = HomeAgent::new();
        ha.on_binding_update(a("::a1"), a("::c1"), &bu(1, 256, vec![g(1)]), t(0));
        ha.on_binding_update(a("::a2"), a("::c2"), &bu(1, 256, vec![g(1)]), t(0));
        ha.on_binding_update(a("::a3"), a("::c3"), &bu(1, 256, vec![g(2)]), t(0));
        assert!(ha.has_group_subscribers(g(1)));
        let targets = ha.multicast_tunnel_targets(g(1));
        assert_eq!(
            targets,
            vec![(a("::a1"), a("::c1")), (a("::a2"), a("::c2"))]
        );
        assert_eq!(ha.packets_tunneled, 2, "one tunnel copy per subscriber");
    }

    #[test]
    fn binding_expiry_releases_proxy_membership() {
        let mut ha = HomeAgent::new();
        ha.on_binding_update(a("::aa"), a("::c"), &bu(1, 256, vec![g(1)]), t(0));
        assert_eq!(ha.next_deadline(), Some(t(256)));
        let out = ha.on_deadline(t(256));
        assert_eq!(out, vec![HaOutput::ProxyLeave(g(1))]);
        assert_eq!(ha.intercept(a("::aa")), None);
    }

    #[test]
    fn budget_reject_new_sheds_registration_but_allows_refresh() {
        let mut ha = HomeAgent::new();
        ha.set_budget(Some(1), ShedPolicy::RejectNew);
        let out = ha.on_binding_update(a("::a1"), a("::c1"), &bu(1, 256, vec![g(1)]), t(0));
        assert!(out.contains(&HaOutput::ProxyJoin(g(1))));
        // Second host: shed silently — no ack, no proxy change.
        let out = ha.on_binding_update(a("::a2"), a("::c2"), &bu(1, 256, vec![g(2)]), t(1));
        assert!(out.is_empty());
        assert_eq!(ha.binding_count(), 1);
        assert_eq!(
            ha.take_notes(),
            vec![HaNote::BindingShed { home: a("::a2") }]
        );
        // Refreshing the admitted binding still works.
        let out = ha.on_binding_update(a("::a1"), a("::c9"), &bu(2, 256, vec![g(1)]), t(2));
        assert!(out
            .iter()
            .any(|o| matches!(o, HaOutput::SendBindingAck { .. })));
        assert_eq!(ha.intercept(a("::a1")), Some(a("::c9")));
        assert!(ha.take_notes().is_empty());
        // Deregistration always passes and frees the slot.
        ha.on_binding_update(a("::a1"), a("::c9"), &bu(3, 0, vec![]), t(3));
        let out = ha.on_binding_update(a("::a2"), a("::c2"), &bu(2, 256, vec![g(2)]), t(4));
        assert!(out.contains(&HaOutput::ProxyJoin(g(2))));
    }

    #[test]
    fn budget_evict_stalest_releases_victim_groups() {
        let mut ha = HomeAgent::new();
        ha.set_budget(Some(2), ShedPolicy::EvictStalest);
        ha.on_binding_update(a("::a1"), a("::c1"), &bu(1, 100, vec![g(1)]), t(0));
        ha.on_binding_update(a("::a2"), a("::c2"), &bu(1, 256, vec![g(2)]), t(0));
        // ::a1 expires first -> evicted; its proxy membership is released.
        let out = ha.on_binding_update(a("::a3"), a("::c3"), &bu(1, 256, vec![g(3)]), t(5));
        assert!(out.contains(&HaOutput::ProxyLeave(g(1))));
        assert!(out.contains(&HaOutput::ProxyJoin(g(3))));
        assert_eq!(ha.binding_count(), 2);
        assert_eq!(
            ha.take_notes(),
            vec![HaNote::BindingEvicted { home: a("::a1") }]
        );
        assert_eq!(ha.intercept(a("::a1")), None);
        assert_eq!(ha.intercept(a("::a3")), Some(a("::c3")));
    }

    #[test]
    fn no_ack_when_not_requested() {
        let mut ha = HomeAgent::new();
        let quiet = BindingUpdate {
            flags: BU_FLAG_HOME,
            sequence: 1,
            lifetime_secs: 256,
            sub_options: vec![],
        };
        let out = ha.on_binding_update(a("::aa"), a("::c"), &quiet, t(0));
        assert!(out.is_empty());
    }
}
