//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API this workspace uses:
//! cheaply-clonable immutable [`Bytes`], growable [`BytesMut`], and the
//! big-endian [`BufMut`] writer methods. Semantics match the real crate
//! for this subset; `slice`/`split`/zero-copy views are not provided.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a static slice (no allocation, no copy).
    pub const fn from_static(b: &'static [u8]) -> Self {
        Bytes(Repr::Static(b))
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(b)))
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable, cheaply clonable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn extend_from_slice(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

/// Big-endian append-only writer, as used by the wire codecs.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.clone(), b);
        assert_eq!(Bytes::from_static(b"abc").to_vec(), b"abc");
    }

    #[test]
    fn bufmut_big_endian() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u16(0x0102);
        m.put_u8(0xff);
        m.put_bytes(0, 2);
        assert_eq!(&m[..], &[1, 2, 0xff, 0, 0]);
        assert_eq!(m.freeze().as_ref(), &[1, 2, 0xff, 0, 0]);
    }
}
