/root/repo/crates/shims/bytes/target/debug/deps/bytes-a161ac7d2be50879.d: src/lib.rs

/root/repo/crates/shims/bytes/target/debug/deps/bytes-a161ac7d2be50879: src/lib.rs

src/lib.rs:
