/root/repo/crates/shims/bytes/target/debug/deps/bytes-f456adf11f558aa8.d: src/lib.rs

/root/repo/crates/shims/bytes/target/debug/deps/libbytes-f456adf11f558aa8.rlib: src/lib.rs

/root/repo/crates/shims/bytes/target/debug/deps/libbytes-f456adf11f558aa8.rmeta: src/lib.rs

src/lib.rs:
