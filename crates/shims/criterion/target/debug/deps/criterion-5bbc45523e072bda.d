/root/repo/crates/shims/criterion/target/debug/deps/criterion-5bbc45523e072bda.d: src/lib.rs

/root/repo/crates/shims/criterion/target/debug/deps/libcriterion-5bbc45523e072bda.rlib: src/lib.rs

/root/repo/crates/shims/criterion/target/debug/deps/libcriterion-5bbc45523e072bda.rmeta: src/lib.rs

src/lib.rs:
