/root/repo/crates/shims/criterion/target/debug/deps/criterion-06117031a6101ad2.d: src/lib.rs

/root/repo/crates/shims/criterion/target/debug/deps/criterion-06117031a6101ad2: src/lib.rs

src/lib.rs:
