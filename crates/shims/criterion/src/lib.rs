//! Offline shim for `criterion`.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros — with a coarse wall-clock timer and plain-text output instead of
//! statistical analysis. Good enough to keep `cargo bench` runnable and the
//! bench code compiling; not a measurement-grade harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, echoed in the output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim runs one setup per
/// measured call regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.criterion.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    /// Mean duration of one routine call, filled in by `iter`/`iter_batched`.
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.samples as u32;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.mean;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {id:<50} {per_iter:>12.2?}/iter{rate}");
}

/// Define a group of benchmark functions. Both the plain and the
/// `name =`/`config =`/`targets =` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = sample_bench, sample_bench
    }

    #[test]
    fn configured_group_runs() {
        configured();
    }
}
