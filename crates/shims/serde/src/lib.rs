//! Offline shim for `serde`.
//!
//! Instead of serde's visitor architecture this shim serializes directly to
//! an in-memory JSON [`Value`] tree ([`Serialize::to_json_value`]) and
//! deserializes from one ([`Deserialize::from_json_value`]). The companion
//! `serde_json` shim re-exports [`Value`] and provides `json!`,
//! `to_string_pretty`, `from_value` and `to_value` on top of it. Object
//! fields keep insertion order, so serialized output is deterministic.

use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv6Addr;

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON tree. Object entries preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup used by derived `Deserialize` impls:
    /// missing key / non-object falls back to `Null` (so `Option` fields
    /// can absorb absent members).
    pub fn get_field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]`: `Null` for non-objects and missing keys (matching
    /// real serde_json's forgiving indexing).
    fn index(&self, key: &str) -> &Value {
        self.get_field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// `value["key"] = ...`: auto-vivifies `Null` into an object and inserts
    /// a `Null` placeholder for missing keys, like real serde_json.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Vec::new());
        }
        match self {
            Value::Object(o) => {
                let pos = match o.iter().position(|(k, _)| k == key) {
                    Some(pos) => pos,
                    None => {
                        o.push((key.to_string(), Value::Null));
                        o.len() - 1
                    }
                };
                &mut o[pos].1
            }
            other => panic!(
                "cannot index-assign key {key:?} into JSON {}",
                other.type_name()
            ),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    /// `value[i] = ...`: only existing array elements are assignable
    /// (matching real serde_json, which panics out of bounds).
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => {
                let len = a.len();
                a.get_mut(idx)
                    .unwrap_or_else(|| panic!("array index {idx} out of bounds (len {len})"))
            }
            other => panic!(
                "cannot index-assign index {idx} into JSON {}",
                other.type_name()
            ),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Null
    }
}

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into a JSON [`Value`].
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Deserialize from a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        v.type_name()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        v.type_name()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {}", v.type_name())))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        f64::from_json_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", v.type_name())))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.type_name())))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.type_name())))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

// Tuples serialize as fixed-length arrays (matching the real serde).
macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, got {}", v.type_name()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json_value(v).map(Some)
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.type_name())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl Serialize for Ipv6Addr {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv6Addr {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .ok_or_else(|| Error::custom(format!("expected IPv6 string, got {}", v.type_name())))?
            .parse()
            .map_err(|e| Error::custom(format!("bad IPv6 address: {e}")))
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u32::from_json_value(&42u32.to_json_value()).unwrap(), 42);
        assert_eq!(i64::from_json_value(&(-7i64).to_json_value()).unwrap(), -7);
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()).unwrap(), 1.5);
        assert!(bool::from_json_value(&true.to_json_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_json_value(&s.to_json_value()).unwrap(), s);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_json_value(&v.to_json_value()).unwrap(), v);
        let a = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_json_value(&a.to_json_value()).unwrap(), a);
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 9u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_json_value(&m.to_json_value()).unwrap(),
            m
        );
        assert_eq!(Option::<u64>::from_json_value(&Value::Null).unwrap(), None);
        let addr: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(
            Ipv6Addr::from_json_value(&addr.to_json_value()).unwrap(),
            addr
        );
    }

    #[test]
    fn index_and_index_mut() {
        let mut v = Value::Null;
        v["a"] = Value::U64(1);
        v["b"] = Value::Str("x".into());
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v[0], Value::Null);
        let arr = Value::Array(vec![Value::Bool(true)]);
        assert_eq!(arr[0].as_bool(), Some(true));
    }
}
