/root/repo/crates/shims/serde/target/debug/deps/serde-aa85ddd9ccabe3b4.d: src/lib.rs

/root/repo/crates/shims/serde/target/debug/deps/libserde-aa85ddd9ccabe3b4.rlib: src/lib.rs

/root/repo/crates/shims/serde/target/debug/deps/libserde-aa85ddd9ccabe3b4.rmeta: src/lib.rs

src/lib.rs:
