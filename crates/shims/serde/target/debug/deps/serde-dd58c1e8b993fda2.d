/root/repo/crates/shims/serde/target/debug/deps/serde-dd58c1e8b993fda2.d: src/lib.rs

/root/repo/crates/shims/serde/target/debug/deps/serde-dd58c1e8b993fda2: src/lib.rs

src/lib.rs:
