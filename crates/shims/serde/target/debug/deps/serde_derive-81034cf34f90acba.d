/root/repo/crates/shims/serde/target/debug/deps/serde_derive-81034cf34f90acba.d: /root/repo/crates/shims/serde_derive/src/lib.rs

/root/repo/crates/shims/serde/target/debug/deps/libserde_derive-81034cf34f90acba.so: /root/repo/crates/shims/serde_derive/src/lib.rs

/root/repo/crates/shims/serde_derive/src/lib.rs:
