//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()` for unsigned integers,
//! integer ranges as strategies, `collection::vec`, and the `proptest!` /
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!` macros. Each test
//! runs a fixed number of cases drawn from an RNG seeded by the test name,
//! so failures are reproducible; there is no shrinking.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cases per `proptest!` test function.
pub const CASES: usize = 64;

/// Why a test case did not complete (only rejection, via `prop_assume!`).
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
}

#[doc(hidden)]
pub mod test_runner {
    use super::*;

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
    /// name, so each test sees a stable input sequence across runs.
    pub struct TestRng(pub SmallRng);

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        use rand::RngCore;
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for "any value of `T`".
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

pub mod collection {
    use super::*;

    /// Strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests. Each `fn` body runs [`CASES`] times with fresh
/// random arguments; `prop_assume!` rejections skip the case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name)).0;
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    // Err is only `Reject` from prop_assume!: skip the case.
                    drop(result);
                }
            }
        )*
    };
}

/// Skip the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps(
            x in 5u32..10,
            y in 1u8..=3,
            v in crate::collection::vec(any::<u8>(), 0..16),
            z in any::<u64>().prop_map(|n| n % 7),
        ) {
            prop_assume!(x != 9);
            prop_assert!((5..9).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!(v.len() < 16);
            prop_assert!(z < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let strat = crate::collection::vec(any::<u8>(), 0..32);
        let mut r1 = TestRng::for_test("t").0;
        let mut r2 = TestRng::for_test("t").0;
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
