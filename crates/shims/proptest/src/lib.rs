//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()` for unsigned integers,
//! integer ranges as strategies, `collection::vec`, and the `proptest!` /
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!` macros. Each test
//! runs a fixed number of cases drawn from an RNG seeded by the test name,
//! so failures are reproducible.
//!
//! Failing cases are **shrunk**: [`Strategy::shrink`] proposes simpler
//! candidate values (integers toward zero, vectors toward fewer elements)
//! and the runner greedily keeps any candidate that still fails, one
//! argument at a time, until no candidate fails or the step budget runs
//! out. The minimized arguments are printed and the minimized case is
//! re-run un-caught so the original assertion failure propagates.
//! `prop_map` adapters are opaque to shrinking (the mapping cannot be
//! inverted); strategies that need good shrinking implement [`Strategy`]
//! directly with a domain-specific `shrink`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cases per `proptest!` test function.
pub const CASES: usize = 64;

/// Upper bound on candidate evaluations during shrinking of one failure.
pub const MAX_SHRINK_STEPS: usize = 512;

/// Why a test case did not complete (only rejection, via `prop_assume!`).
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
}

#[doc(hidden)]
pub mod test_runner {
    use super::*;

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
    /// name, so each test sees a stable input sequence across runs.
    pub struct TestRng(pub SmallRng);

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// Returning an empty vec means the value cannot shrink further.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;

    /// Simpler candidate values (see [`Strategy::shrink`]).
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<Self> {
                shrink_int_toward(0, *self)
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        use rand::RngCore;
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }

    fn shrink_value(&self) -> Vec<Self> {
        shrink_int_toward(0, *self)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }

    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Integer shrink candidates between `low` and `value`, simplest first:
/// the lower bound itself, the midpoint, and one step down.
fn shrink_int_toward<T>(low: T, value: T) -> Vec<T>
where
    T: Copy
        + PartialOrd
        + PartialEq
        + core::ops::Add<Output = T>
        + core::ops::Sub<Output = T>
        + core::ops::Div<Output = T>
        + From<u8>,
{
    let mut out = Vec::new();
    if value > low {
        out.push(low);
        let mid = low + (value - low) / T::from(2u8);
        if mid > low && mid < value {
            out.push(mid);
        }
        let down = value - T::from(1u8);
        if out.last() != Some(&down) {
            out.push(down);
        }
    }
    out
}

/// Strategy for "any value of `T`".
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(self.start, *value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*self.start(), *value)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

pub mod collection {
    use super::*;

    /// Strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.start;
            let mut out = Vec::new();
            // Structurally smaller first: the minimal prefix, half the
            // excess, then each single-element removal.
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = (min + value.len()) / 2;
                if half > min && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Then element-wise simplification.
            for i in 0..value.len() {
                for cand in self.element.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define property tests. Each `fn` body runs [`CASES`] times with fresh
/// random arguments; `prop_assume!` rejections skip the case. A failing
/// case is shrunk (greedily, one argument at a time, within
/// [`MAX_SHRINK_STEPS`] candidate evaluations), the minimized arguments are
/// printed, and the minimized case is re-run uncaught so the original
/// assertion failure propagates. Argument values must be `Clone + Debug`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name)).0;
                for _case in 0..$crate::CASES {
                    // Args live in RefCells so a zero-argument `probe`
                    // closure can read them all without the macro needing
                    // nested repetition over the argument list.
                    $(let $arg =
                        ::std::cell::RefCell::new($crate::Strategy::generate(&($strat), &mut rng));)+
                    let probe = || -> bool {
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                            $(let $arg = ::std::clone::Clone::clone(&*$arg.borrow());)+
                            let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                            // Err is only `Reject` from prop_assume!.
                            drop(result);
                        }))
                        .is_err()
                    };
                    // A case fails on panic; `prop_assume!` rejections land
                    // in Ok(Err(Reject)) and are simply skipped.
                    if !probe() {
                        continue;
                    }
                    // Greedy shrink: keep any candidate that still fails,
                    // one argument at a time, until a fixpoint.
                    let mut steps = 0usize;
                    let mut progress = true;
                    while progress && steps < $crate::MAX_SHRINK_STEPS {
                        progress = false;
                        $(
                            if !progress && steps < $crate::MAX_SHRINK_STEPS {
                                let cands = {
                                    let current = $arg.borrow();
                                    $crate::Strategy::shrink(&($strat), &*current)
                                };
                                for cand in cands {
                                    steps += 1;
                                    let prev = $arg.replace(cand);
                                    if probe() {
                                        progress = true;
                                        break;
                                    }
                                    $arg.replace(prev);
                                    if steps >= $crate::MAX_SHRINK_STEPS {
                                        break;
                                    }
                                }
                            }
                        )+
                    }
                    ::std::eprintln!(
                        "proptest: case {} failed; minimized arguments:",
                        _case
                    );
                    $(::std::eprintln!("  {} = {:?}", stringify!($arg), $arg.borrow());)+
                    // Re-run the minimized case uncaught so the original
                    // assertion failure propagates with its message.
                    $(let $arg = $arg.into_inner();)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    drop(result);
                    ::std::unreachable!("minimized case no longer fails");
                }
            }
        )*
    };
}

/// Skip the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps(
            x in 5u32..10,
            y in 1u8..=3,
            v in crate::collection::vec(any::<u8>(), 0..16),
            z in any::<u64>().prop_map(|n| n % 7),
        ) {
            prop_assume!(x != 9);
            prop_assert!((5..9).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!(v.len() < 16);
            prop_assert!(z < 7);
        }
    }

    #[test]
    fn integer_shrink_moves_toward_low_bound() {
        use crate::Strategy;
        let strat = 5u32..100;
        let cands = strat.shrink(&80);
        assert_eq!(cands, vec![5, 42, 79]);
        assert!(strat.shrink(&5).is_empty(), "at the bound: fully shrunk");
        let incl = 1u8..=3;
        assert_eq!(incl.shrink(&3), vec![1, 2]);
        assert!(any::<bool>().shrink(&false).is_empty());
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
    }

    #[test]
    fn vec_shrink_prefers_fewer_elements() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..100, 1..20);
        let cands = strat.shrink(&vec![7, 50]);
        // Minimal prefix first, then single removals, then element shrinks.
        assert_eq!(cands[0], vec![7]);
        assert!(cands.contains(&vec![50]));
        assert!(cands.contains(&vec![0, 50]));
        assert!(strat.shrink(&vec![0]).is_empty(), "minimal and all-zero");
    }

    #[test]
    fn greedy_shrink_finds_minimal_failing_vec() {
        use crate::Strategy;
        // Property under test: "no element is >= 10". Minimal failing
        // input is a single element equal to 10.
        let strat = crate::collection::vec(0u32..100, 0..20);
        let fails = |v: &Vec<u32>| v.iter().any(|&x| x >= 10);
        let mut value = vec![3, 50, 7, 12];
        assert!(fails(&value));
        let mut progress = true;
        let mut steps = 0;
        while progress && steps < crate::MAX_SHRINK_STEPS {
            progress = false;
            for cand in strat.shrink(&value) {
                steps += 1;
                if fails(&cand) {
                    value = cand;
                    progress = true;
                    break;
                }
            }
        }
        assert_eq!(value, vec![10]);
    }

    static SHRUNK_LEN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    proptest! {
        // Deliberately failing property (no #[test] attribute: driven by
        // `runner_shrinks_failing_case_to_minimum` below). Records the
        // length of every failing input it sees; the runner's final
        // uncaught re-run records the minimized one last.
        fn failing_len_property(v in crate::collection::vec(any::<u8>(), 0..16)) {
            if v.len() >= 3 {
                SHRUNK_LEN.store(v.len(), std::sync::atomic::Ordering::SeqCst);
            }
            prop_assert!(v.len() < 3);
        }
    }

    #[test]
    fn runner_shrinks_failing_case_to_minimum() {
        let result = std::panic::catch_unwind(failing_len_property);
        assert!(result.is_err(), "property must fail");
        assert_eq!(
            SHRUNK_LEN.load(std::sync::atomic::Ordering::SeqCst),
            3,
            "runner did not shrink the failing vec to its minimal length"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let strat = crate::collection::vec(any::<u8>(), 0..32);
        let mut r1 = TestRng::for_test("t").0;
        let mut r2 = TestRng::for_test("t").0;
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
