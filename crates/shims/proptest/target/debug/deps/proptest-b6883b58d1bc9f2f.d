/root/repo/crates/shims/proptest/target/debug/deps/proptest-b6883b58d1bc9f2f.d: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/proptest-b6883b58d1bc9f2f: src/lib.rs

src/lib.rs:
