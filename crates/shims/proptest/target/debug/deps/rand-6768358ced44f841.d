/root/repo/crates/shims/proptest/target/debug/deps/rand-6768358ced44f841.d: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/librand-6768358ced44f841.rlib: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/librand-6768358ced44f841.rmeta: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/rand/src/lib.rs:
