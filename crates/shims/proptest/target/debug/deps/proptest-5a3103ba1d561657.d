/root/repo/crates/shims/proptest/target/debug/deps/proptest-5a3103ba1d561657.d: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/libproptest-5a3103ba1d561657.rlib: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/libproptest-5a3103ba1d561657.rmeta: src/lib.rs

src/lib.rs:
