//! Offline shim for the `rand` crate (0.9-style API subset).
//!
//! Provides [`rngs::SmallRng`] — a xoshiro256++ generator, same family the
//! real crate uses on 64-bit targets — plus the [`RngCore`], [`SeedableRng`]
//! and [`Rng`] traits with the `random()` / `random_range()` methods the
//! workspace calls. Deterministic: output depends only on the seed.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via splitmix64 (same construction
    /// the real crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly at random by [`Rng::random`].
pub trait Random {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in [0, 1): 53 mantissa bits.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, 256-bit state. Matches the generator
    /// family the real `rand` crate's `SmallRng` uses on 64-bit platforms
    /// (output sequence is an implementation detail there too).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 1, 2];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = r.random_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }
}
