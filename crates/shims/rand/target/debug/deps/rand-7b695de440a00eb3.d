/root/repo/crates/shims/rand/target/debug/deps/rand-7b695de440a00eb3.d: src/lib.rs

/root/repo/crates/shims/rand/target/debug/deps/librand-7b695de440a00eb3.rlib: src/lib.rs

/root/repo/crates/shims/rand/target/debug/deps/librand-7b695de440a00eb3.rmeta: src/lib.rs

src/lib.rs:
