/root/repo/crates/shims/rand/target/debug/deps/rand-bdb1626240c78356.d: src/lib.rs

/root/repo/crates/shims/rand/target/debug/deps/rand-bdb1626240c78356: src/lib.rs

src/lib.rs:
