//! Offline shim for `serde_derive`.
//!
//! Dependency-free (no syn/quote): parses the derive input token stream by
//! hand. Supports exactly the shapes this workspace uses — non-generic named
//! structs, tuple structs, and unit enums, none carrying `#[serde(...)]`
//! attributes — and maps them to the JSON data model of the `serde` shim:
//! named struct -> object (declaration order), 1-field tuple struct -> the
//! inner value (newtype), n-field tuple struct -> array, unit enum -> the
//! variant name as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named struct: field names in declaration order.
    Named(Vec<String>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Enum of unit variants only.
    UnitEnum(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (doc comments arrive as #[doc = ...]) and
    // visibility modifiers ahead of the struct/enum keyword.
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, possibly followed by a `(crate)` group.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("serde shim derive: no struct/enum found"),
        }
    };

    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };

    match toks.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic type `{name}` is not supported")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let shape = if kind == "struct" {
                Shape::Named(parse_named_fields(g.stream()))
            } else {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
            };
            Item { name, shape }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(kind, "struct", "serde shim derive: bad item shape");
            Item {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            }
        }
        other => panic!("serde shim derive: unsupported shape for `{name}`: {other:?}"),
    }
}

/// Field names of a named struct, in declaration order. Skips per-field
/// attributes and visibility; tracks `<`/`>` depth so commas inside generic
/// types (e.g. `BTreeMap<String, u64>`) don't split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde shim derive: unexpected field token {other:?}"),
                None => return fields,
            }
        };
        fields.push(name);
        // Consume `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Number of fields in a tuple struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tok in body {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    saw_tokens = false;
                }
                _ => saw_tokens = true,
            },
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Variant names of a unit enum; payload-carrying variants are rejected.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
            }
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                match toks.next() {
                    None | Some(TokenTree::Punct(_)) => {}
                    Some(TokenTree::Group(_)) => panic!(
                        "serde shim derive: enum `{enum_name}` has a payload variant; \
                         only unit enums are supported"
                    ),
                    Some(other) => {
                        panic!("serde shim derive: unexpected token {other:?} in `{enum_name}`")
                    }
                }
            }
            Some(TokenTree::Punct(_)) => {}
            Some(other) => panic!("serde shim derive: unexpected token {other:?}"),
            None => return variants,
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    write!(
        out,
        "impl ::serde::Serialize for {name} {{ fn to_json_value(&self) -> ::serde::Value {{"
    )
    .unwrap();
    match &item.shape {
        Shape::Named(fields) => {
            out.push_str("let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();");
            for f in fields {
                write!(
                    out,
                    "fields.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_json_value(&self.{f})));"
                )
                .unwrap();
            }
            out.push_str("::serde::Value::Object(fields)");
        }
        Shape::Tuple(1) => {
            out.push_str("::serde::Serialize::to_json_value(&self.0)");
        }
        Shape::Tuple(n) => {
            out.push_str(
                "let mut items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();",
            );
            for i in 0..*n {
                write!(
                    out,
                    "items.push(::serde::Serialize::to_json_value(&self.{i}));"
                )
                .unwrap();
            }
            out.push_str("::serde::Value::Array(items)");
        }
        Shape::UnitEnum(variants) => {
            out.push_str("match self {");
            for v in variants {
                write!(
                    out,
                    "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                )
                .unwrap();
            }
            out.push('}');
        }
    }
    out.push_str("} }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    write!(
        out,
        "impl ::serde::Deserialize for {name} {{ fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{"
    )
    .unwrap();
    match &item.shape {
        Shape::Named(fields) => {
            write!(out, "::std::result::Result::Ok({name} {{").unwrap();
            for f in fields {
                write!(
                    out,
                    "{f}: ::serde::Deserialize::from_json_value(v.get_field(\"{f}\"))?,"
                )
                .unwrap();
            }
            out.push_str("})");
        }
        Shape::Tuple(1) => {
            write!(
                out,
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(v)?))"
            )
            .unwrap();
        }
        Shape::Tuple(n) => {
            write!(
                out,
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\
                 if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\
                 ::std::result::Result::Ok({name}("
            )
            .unwrap();
            for i in 0..*n {
                write!(out, "::serde::Deserialize::from_json_value(&arr[{i}])?,").unwrap();
            }
            out.push_str("))");
        }
        Shape::UnitEnum(variants) => {
            write!(
                out,
                "match v.as_str().ok_or_else(|| ::serde::Error::custom(\"expected string for {name}\"))? {{"
            )
            .unwrap();
            for v in variants {
                write!(out, "\"{v}\" => ::std::result::Result::Ok({name}::{v}),").unwrap();
            }
            write!(
                out,
                "other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant: {{other}}\"))), }}"
            )
            .unwrap();
        }
    }
    out.push_str("} }");
    out
}
