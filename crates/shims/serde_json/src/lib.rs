//! Offline shim for `serde_json`, layered on the `serde` shim's [`Value`]
//! tree: the `json!` constructor macro, [`to_value`] / [`from_value`], and a
//! deterministic pretty printer ([`to_string_pretty`] / [`to_string`]).
//! Object members keep insertion order, so equal inputs print equal text.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Interpret a [`Value`] tree as a `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value)
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty JSON text, 2-space indent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // and always includes a decimal point or exponent.
                let _ = write!(out, "{x:?}");
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Construct a [`Value`] from JSON-like syntax. Leaf expressions are
/// converted through [`serde::Serialize`]. Adapted tt-muncher in the style
/// of the real serde_json macro.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //
    // Array munching: accumulate element expressions in [].
    //
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //
    // Object munching: `$object` is the Vec being built; the key is
    // accumulated token-by-token into (...) until a `:` is seen.
    //
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //
    // Entry points.
    //
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(::std::vec::Vec::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 3u32;
        let xs = vec![1u64, 2];
        let v = json!({
            "a": 1,
            "b": [true, null, 2.5],
            "c": { "nested": n },
            "d": xs,
            "e": 1 + 1,
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_array().unwrap().len(), 3);
        assert_eq!(v["b"][2].as_f64(), Some(2.5));
        assert_eq!(v["c"]["nested"].as_u64(), Some(3));
        assert_eq!(v["d"][1].as_u64(), Some(2));
        assert_eq!(v["e"].as_u64(), Some(2));
    }

    #[test]
    fn pretty_printing_is_deterministic() {
        let v = json!({"x": [1, 2], "y": {"s": "a\"b\n"}});
        let a = to_string_pretty(&v).unwrap();
        let b = to_string_pretty(&v).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"x\": ["));
        assert!(a.contains("\\\"b\\n"));
        assert_eq!(to_string(&json!({"k": 1.0})).unwrap(), "{\"k\":1.0}");
    }

    #[test]
    fn from_value_roundtrip() {
        let v = json!([1, 2, 3]);
        let back: Vec<u64> = from_value(v.clone()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(to_value(&back), v);
    }

    #[test]
    fn index_assignment_builds_objects() {
        let mut v = Value::Null;
        v["outer"] = json!({"inner": 7});
        assert_eq!(v["outer"]["inner"].as_u64(), Some(7));
    }
}
