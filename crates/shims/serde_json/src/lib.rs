//! Offline shim for `serde_json`, layered on the `serde` shim's [`Value`]
//! tree: the `json!` constructor macro, [`to_value`] / [`from_value`], and a
//! deterministic pretty printer ([`to_string_pretty`] / [`to_string`]).
//! Object members keep insertion order, so equal inputs print equal text.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Interpret a [`Value`] tree as a `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value)
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty JSON text, 2-space indent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // and always includes a decimal point or exponent.
                let _ = write!(out, "{x:?}");
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Parse JSON text into a [`Value`] tree (recursive descent, RFC 8259
/// subset: no duplicate-key policy, numbers land in `U64`/`I64` when they
/// are integers that fit, `F64` otherwise).
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_PARSE_DEPTH: usize = 128;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_PARSE_DEPTH {
            return Err(Error::custom("nesting too deep"));
        }
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value(depth + 1)?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(members));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected byte 0x{b:02x} at {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (input is &str so it is valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Construct a [`Value`] from JSON-like syntax. Leaf expressions are
/// converted through [`serde::Serialize`]. Adapted tt-muncher in the style
/// of the real serde_json macro.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //
    // Array munching: accumulate element expressions in [].
    //
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //
    // Object munching: `$object` is the Vec being built; the key is
    // accumulated token-by-token into (...) until a `:` is seen.
    //
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //
    // Entry points.
    //
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(::std::vec::Vec::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 3u32;
        let xs = vec![1u64, 2];
        let v = json!({
            "a": 1,
            "b": [true, null, 2.5],
            "c": { "nested": n },
            "d": xs,
            "e": 1 + 1,
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_array().unwrap().len(), 3);
        assert_eq!(v["b"][2].as_f64(), Some(2.5));
        assert_eq!(v["c"]["nested"].as_u64(), Some(3));
        assert_eq!(v["d"][1].as_u64(), Some(2));
        assert_eq!(v["e"].as_u64(), Some(2));
    }

    #[test]
    fn pretty_printing_is_deterministic() {
        let v = json!({"x": [1, 2], "y": {"s": "a\"b\n"}});
        let a = to_string_pretty(&v).unwrap();
        let b = to_string_pretty(&v).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"x\": ["));
        assert!(a.contains("\\\"b\\n"));
        assert_eq!(to_string(&json!({"k": 1.0})).unwrap(), "{\"k\":1.0}");
    }

    #[test]
    fn from_value_roundtrip() {
        let v = json!([1, 2, 3]);
        let back: Vec<u64> = from_value(v.clone()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(to_value(&back), v);
    }

    #[test]
    fn from_str_round_trips() {
        let v = json!({
            "a": 1,
            "b": [true, null, 2.5, -3],
            "c": { "nested": "a\"b\n\u{1f600}" },
        });
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
        assert_eq!(back["b"][3].as_i64(), Some(-3));
        assert_eq!(back["c"]["nested"].as_str(), Some("a\"b\n\u{1f600}"));
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,2").is_err());
        assert!(from_str("{} trailing").is_err());
        assert!(from_str("\"\\u12\"").is_err());
        // Surrogate pair decodes correctly.
        let v = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn index_assignment_builds_objects() {
        let mut v = Value::Null;
        v["outer"] = json!({"inner": 7});
        assert_eq!(v["outer"]["inner"].as_u64(), Some(7));
    }
}
