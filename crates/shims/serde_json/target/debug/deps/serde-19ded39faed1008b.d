/root/repo/crates/shims/serde_json/target/debug/deps/serde-19ded39faed1008b.d: /root/repo/crates/shims/serde/src/lib.rs

/root/repo/crates/shims/serde_json/target/debug/deps/libserde-19ded39faed1008b.rlib: /root/repo/crates/shims/serde/src/lib.rs

/root/repo/crates/shims/serde_json/target/debug/deps/libserde-19ded39faed1008b.rmeta: /root/repo/crates/shims/serde/src/lib.rs

/root/repo/crates/shims/serde/src/lib.rs:
