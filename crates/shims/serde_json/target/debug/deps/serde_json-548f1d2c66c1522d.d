/root/repo/crates/shims/serde_json/target/debug/deps/serde_json-548f1d2c66c1522d.d: src/lib.rs

/root/repo/crates/shims/serde_json/target/debug/deps/serde_json-548f1d2c66c1522d: src/lib.rs

src/lib.rs:
