/root/repo/crates/shims/serde_json/target/debug/deps/serde_json-09b17ac8d6546ea6.d: src/lib.rs

/root/repo/crates/shims/serde_json/target/debug/deps/libserde_json-09b17ac8d6546ea6.rlib: src/lib.rs

/root/repo/crates/shims/serde_json/target/debug/deps/libserde_json-09b17ac8d6546ea6.rmeta: src/lib.rs

src/lib.rs:
