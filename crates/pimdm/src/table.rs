//! Struct-of-arrays (S,G) table backing [`PimRouter`].
//!
//! The hot columns — interned source/group ids and the data-timeout
//! expiry — live in parallel vectors indexed by a reusable slot, so the
//! expiry sweep, stalest-entry eviction and the oracle's freshness poll
//! are linear scans over dense memory. The colder per-entry protocol
//! state (upstream machine, per-oif prune/assert state) rides along in a
//! detail row per slot. A separate `order` index keeps slots sorted by
//! `(source, group)`, preserving the old `BTreeMap` iteration order
//! byte-for-byte.
//!
//! [`PimRouter`]: crate::router::PimRouter

use crate::message::Sg;
use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::arena::{InternExhausted, InternId, SharedInterner};
use mobicast_sim::SimTime;
use std::net::Ipv6Addr;

/// Interface index local to the owning router.
pub type IfIndex = u8;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpstreamState {
    /// Not pruned toward the source.
    Forwarding,
    /// We sent a Prune; traffic should stop until `until`.
    Pruned { until: SimTime },
    /// We sent a Graft and await the ack.
    AckPending { retry_at: SimTime },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DownstreamPrune {
    #[default]
    NoInfo,
    /// Prune received; waiting out the join-override window.
    PrunePending { fire_at: SimTime },
    /// Interface pruned until the hold time passes.
    Pruned { until: SimTime },
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OifState {
    pub prune: DownstreamPrune,
    /// We lost an assert on this interface; don't forward until then.
    pub assert_loser_until: Option<SimTime>,
    /// Rate limiting for data-triggered asserts.
    pub last_assert_tx: Option<SimTime>,
}

/// Cold per-entry protocol state (everything except the key and expiry).
#[derive(Clone, Debug)]
pub struct SgDetail {
    pub iif: IfIndex,
    pub upstream: Option<Ipv6Addr>,
    pub upstream_state: UpstreamState,
    /// Per-oif state, sorted by interface index (the order the old
    /// `BTreeMap<IfIndex, OifState>` iterated in).
    pub oifs: Vec<(IfIndex, OifState)>,
    /// Scheduled join to override an overheard prune on the iif LAN.
    pub override_join_at: Option<SimTime>,
    /// Rate limiting for data-triggered prunes.
    pub last_prune_tx: Option<SimTime>,
    /// Best assert winner seen on the iif (pref, metric, addr).
    pub iif_assert_winner: Option<(u32, u32, Ipv6Addr)>,
}

impl SgDetail {
    pub fn oif(&self, iface: IfIndex) -> Option<&OifState> {
        self.oifs
            .binary_search_by_key(&iface, |(i, _)| *i)
            .ok()
            .map(|pos| &self.oifs[pos].1)
    }

    pub fn oif_mut(&mut self, iface: IfIndex) -> Option<&mut OifState> {
        self.oifs
            .binary_search_by_key(&iface, |(i, _)| *i)
            .ok()
            .map(|pos| &mut self.oifs[pos].1)
    }
}

/// SoA (S,G) table for one PIM-DM router.
#[derive(Debug)]
pub struct SgTable {
    addrs: SharedInterner<Ipv6Addr>,
    groups: SharedInterner<GroupAddr>,
    /// Hot columns, indexed by slot. A slot is live iff `live[slot]`.
    srcs: Vec<InternId>,
    grps: Vec<InternId>,
    expires: Vec<SimTime>,
    /// Cold per-entry protocol state.
    details: Vec<SgDetail>,
    live: Vec<bool>,
    /// Retired slots available for reuse (LIFO).
    free: Vec<u32>,
    /// Live slots sorted by `(source, group)`.
    order: Vec<u32>,
    /// Conservative lower bound on every live expiry (`SimTime::MAX` when
    /// empty); see `min_expires()`.
    min_expires: SimTime,
    /// Monotone counter bumped by every potentially state-changing access
    /// (insert, remove, expiry refresh, `detail_mut`). Readers that cache
    /// derived facts (the oracle's legality walk) compare epochs instead
    /// of re-walking an unchanged table.
    mutations: u64,
}

impl Default for SgTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SgTable {
    /// A table with its own private id spaces (unit tests).
    pub fn new() -> Self {
        Self::with_interners(
            mobicast_sim::shared_interner(),
            mobicast_sim::shared_interner(),
        )
    }

    /// A table drawing address and group ids from world-level interners.
    pub fn with_interners(
        addrs: SharedInterner<Ipv6Addr>,
        groups: SharedInterner<GroupAddr>,
    ) -> Self {
        SgTable {
            addrs,
            groups,
            srcs: Vec::new(),
            grps: Vec::new(),
            expires: Vec::new(),
            details: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            min_expires: SimTime::MAX,
            mutations: 0,
        }
    }

    /// The table's mutation epoch: changes whenever the table *may* have
    /// changed since the epoch was last read (overcounting is safe;
    /// missing a change is not).
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations
    }

    /// The `(source, group)` key stored in `slot`.
    pub fn key_of(&self, slot: u32) -> Sg {
        let i = slot as usize;
        let src = *self
            .addrs
            .borrow()
            .resolve(self.srcs[i])
            .unwrap_or_else(|| unreachable!("live slot holds an interned source"));
        let grp = *self
            .groups
            .borrow()
            .resolve(self.grps[i])
            .unwrap_or_else(|| unreachable!("live slot holds an interned group"));
        (src, grp)
    }

    fn locate(&self, key: Sg) -> Result<usize, usize> {
        self.order
            .binary_search_by(|&slot| self.key_of(slot).cmp(&key))
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn contains(&self, key: Sg) -> bool {
        self.locate(key).is_ok()
    }

    pub fn slot_of(&self, key: Sg) -> Option<u32> {
        self.locate(key).ok().map(|pos| self.order[pos])
    }

    /// Slot at position `pos` of the `(source, group)`-ordered index.
    pub fn slot_at(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    /// Insert an entry (caller ensures the key is absent).
    pub fn insert(
        &mut self,
        key: Sg,
        expires: SimTime,
        detail: SgDetail,
    ) -> Result<u32, InternExhausted> {
        let src_id = self.addrs.borrow_mut().intern(key.0)?;
        let grp_id = self.groups.borrow_mut().intern(key.1)?;
        let slot = match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.srcs[i] = src_id;
                self.grps[i] = grp_id;
                self.expires[i] = expires;
                self.details[i] = detail;
                self.live[i] = true;
                slot
            }
            None => {
                let slot = self.srcs.len() as u32;
                self.srcs.push(src_id);
                self.grps.push(grp_id);
                self.expires.push(expires);
                self.details.push(detail);
                self.live.push(true);
                slot
            }
        };
        let pos = match self.locate(key) {
            Ok(_) => unreachable!("insert of a present (S,G)"),
            Err(pos) => pos,
        };
        self.order.insert(pos, slot);
        self.min_expires = self.min_expires.min(expires);
        self.mutations += 1;
        Ok(slot)
    }

    /// Remove an entry. Returns false if absent.
    pub fn remove(&mut self, key: Sg) -> bool {
        let Ok(pos) = self.locate(key) else {
            return false;
        };
        let slot = self.order.remove(pos);
        let i = slot as usize;
        self.live[i] = false;
        // Drop the oif list now so retired slots hold no heap memory.
        self.details[i].oifs = Vec::new();
        self.free.push(slot);
        if self.order.is_empty() {
            self.min_expires = SimTime::MAX;
        }
        self.mutations += 1;
        true
    }

    pub fn detail(&self, slot: u32) -> &SgDetail {
        &self.details[slot as usize]
    }

    pub fn detail_mut(&mut self, slot: u32) -> &mut SgDetail {
        self.mutations += 1;
        &mut self.details[slot as usize]
    }

    pub fn expires_at(&self, slot: u32) -> SimTime {
        self.expires[slot as usize]
    }

    pub fn set_expires(&mut self, slot: u32, t: SimTime) {
        self.expires[slot as usize] = t;
        self.min_expires = self.min_expires.min(t);
        self.mutations += 1;
    }

    /// All keys, in `(source, group)` order.
    pub fn keys(&self) -> Vec<Sg> {
        self.order.iter().map(|&slot| self.key_of(slot)).collect()
    }

    /// The eviction victim: minimum `(expires, key)` — same criterion the
    /// legacy map's `min_by_key` used, computed by a linear column sweep.
    pub fn stalest(&self) -> Option<Sg> {
        self.order
            .iter()
            .map(|&slot| (self.expires[slot as usize], self.key_of(slot)))
            .min()
            .map(|(_, key)| key)
    }

    /// O(1) conservative lower bound on all entry expiries. If this is in
    /// the future, no entry can be overdue — the guard that keeps oracle
    /// polls flat as entry counts grow.
    pub fn min_expires(&self) -> SimTime {
        self.min_expires
    }

    /// Recompute the exact expiry watermark (called from the deadline
    /// sweep, which walks the columns anyway).
    pub fn refresh_min_expires(&mut self) {
        self.min_expires = self
            .order
            .iter()
            .map(|&slot| self.expires[slot as usize])
            .min()
            .unwrap_or(SimTime::MAX);
    }

    /// Deterministic byte audit of the table, per the documented model:
    /// every allocated slot costs its column footprint (src 4 + grp 4 +
    /// expires 8 + live 1) plus the fixed detail row, each oif costs its
    /// `(IfIndex, OifState)` pair, and the sorted index and free list
    /// cost 4 bytes per entry. No allocator introspection — `size_of` is
    /// a compile-time constant, so the same numbers on every run.
    pub fn state_bytes(&self) -> usize {
        let per_slot = 4 + 4 + 8 + 1 + std::mem::size_of::<SgDetail>();
        let oif_bytes: usize = self
            .order
            .iter()
            .map(|&slot| {
                self.details[slot as usize].oifs.len() * std::mem::size_of::<(IfIndex, OifState)>()
            })
            .sum();
        self.srcs.len() * per_slot + oif_bytes + (self.order.len() + self.free.len()) * 4
    }
}

/// The pre-SoA (S,G) table — one boxed map node per entry with full
/// 16-byte addresses in every key — kept verbatim as the reference model
/// for the differential state tests.
#[cfg(any(test, feature = "legacy_state"))]
pub mod legacy {
    use super::*;
    use std::collections::BTreeMap;

    /// One row of the observable-state snapshot the differential tests
    /// compare: `(key, expiry, oif list)`.
    pub type SgSnapshotRow = (Sg, SimTime, Vec<(IfIndex, OifState)>);

    #[derive(Clone, Debug)]
    pub struct LegacySgEntry {
        pub expires: SimTime,
        pub detail: SgDetail,
    }

    #[derive(Debug, Default)]
    pub struct LegacySgTable {
        entries: BTreeMap<Sg, Box<LegacySgEntry>>,
    }

    impl LegacySgTable {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }

        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        pub fn contains(&self, key: Sg) -> bool {
            self.entries.contains_key(&key)
        }

        pub fn insert(&mut self, key: Sg, expires: SimTime, detail: SgDetail) {
            self.entries
                .insert(key, Box::new(LegacySgEntry { expires, detail }));
        }

        pub fn remove(&mut self, key: Sg) -> bool {
            self.entries.remove(&key).is_some()
        }

        pub fn get_mut(&mut self, key: Sg) -> Option<&mut LegacySgEntry> {
            self.entries.get_mut(&key).map(Box::as_mut)
        }

        pub fn keys(&self) -> Vec<Sg> {
            self.entries.keys().copied().collect()
        }

        pub fn stalest(&self) -> Option<Sg> {
            self.entries
                .iter()
                .min_by_key(|(sg, e)| (e.expires, **sg))
                .map(|(sg, _)| *sg)
        }

        pub fn min_expires(&self) -> Option<SimTime> {
            self.entries.values().map(|e| e.expires).min()
        }

        pub fn snapshot(&self) -> Vec<SgSnapshotRow> {
            self.entries
                .iter()
                .map(|(sg, e)| (*sg, e.expires, e.detail.oifs.clone()))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::legacy::LegacySgTable;
    use super::*;
    use mobicast_sim::RngFactory;
    use rand::Rng;

    fn key(s: u16, g: u16) -> Sg {
        (
            Ipv6Addr::from(0x2001_0db8_0000_0000_0000_0000_0000_0000u128 + u128::from(s)),
            GroupAddr::test_group(g),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn detail(iif: IfIndex, n_oifs: u8) -> SgDetail {
        SgDetail {
            iif,
            upstream: None,
            upstream_state: UpstreamState::Forwarding,
            oifs: (0..n_oifs)
                .filter(|i| *i != iif)
                .map(|i| (i, OifState::default()))
                .collect(),
            override_join_at: None,
            last_prune_tx: None,
            iif_assert_winner: None,
        }
    }

    #[test]
    fn insert_remove_keeps_sg_order() {
        let mut tab = SgTable::new();
        for (s, g) in [(3u16, 1u16), (1, 2), (3, 0), (2, 5)] {
            tab.insert(key(s, g), t(210), detail(0, 3)).unwrap();
        }
        assert_eq!(
            tab.keys(),
            vec![key(1, 2), key(2, 5), key(3, 0), key(3, 1)],
            "ordered by source, then group"
        );
        assert!(tab.remove(key(3, 0)));
        assert!(!tab.remove(key(3, 0)));
        assert_eq!(tab.len(), 3);
        // Freed slot reused; order intact.
        tab.insert(key(0, 9), t(100), detail(1, 3)).unwrap();
        assert_eq!(tab.keys()[0], key(0, 9));
    }

    /// Differential state model: the SoA table and the legacy boxed-map
    /// table driven through identical randomized create/refresh/prune-
    /// state/expire/evict ops must expose identical observable state
    /// after every single op — 8 seeds' worth.
    #[test]
    fn differential_vs_legacy_boxed_map() {
        for seed in 0..8u64 {
            let rng_factory = RngFactory::new(seed);
            let mut rng = rng_factory.stream("sg-diff");
            let mut soa = SgTable::new();
            let mut old = LegacySgTable::new();
            let mut now = 0u64;
            for step in 0..400 {
                now += rng.random_range(0u64..25);
                let k = key(rng.random_range(0u16..8), rng.random_range(0u16..6));
                match rng.random_range(0u32..6) {
                    // Create or refresh (data arrival on the iif).
                    0 | 1 => {
                        let exp = t(now + 210);
                        match soa.slot_of(k) {
                            Some(slot) => soa.set_expires(slot, exp),
                            None => {
                                soa.insert(k, exp, detail(0, 4)).unwrap();
                            }
                        }
                        match old.get_mut(k) {
                            Some(e) => e.expires = exp,
                            None => old.insert(k, exp, detail(0, 4)),
                        }
                    }
                    // Downstream prune state change on a random oif.
                    2 => {
                        let iface = rng.random_range(1u8..4);
                        let prune = DownstreamPrune::Pruned {
                            until: t(now + 180),
                        };
                        if let Some(slot) = soa.slot_of(k) {
                            if let Some(oif) = soa.detail_mut(slot).oif_mut(iface) {
                                oif.prune = prune;
                            }
                        }
                        if let Some(e) = old.get_mut(k) {
                            if let Some(oif) = e.detail.oif_mut(iface) {
                                oif.prune = prune;
                            }
                        }
                    }
                    // Hard remove.
                    3 => {
                        assert_eq!(soa.remove(k), old.remove(k));
                    }
                    // Expiry sweep at `now`.
                    4 => {
                        let due: Vec<Sg> = soa
                            .keys()
                            .into_iter()
                            .filter(|k| {
                                soa.slot_of(*k)
                                    .is_some_and(|slot| soa.expires_at(slot) <= t(now))
                            })
                            .collect();
                        for k in due {
                            soa.remove(k);
                        }
                        soa.refresh_min_expires();
                        let due: Vec<Sg> = old
                            .snapshot()
                            .iter()
                            .filter(|(_, exp, _)| *exp <= t(now))
                            .map(|(k, _, _)| *k)
                            .collect();
                        for k in due {
                            old.remove(k);
                        }
                    }
                    // Evict-stalest (budget pressure).
                    _ => {
                        let (a, b) = (soa.stalest(), old.stalest());
                        assert_eq!(a, b, "seed {seed} step {step}: victim diverged");
                        if let Some(victim) = a {
                            soa.remove(victim);
                            old.remove(victim);
                        }
                    }
                }
                // Full observable state must match after every op.
                let snap1: Vec<super::legacy::SgSnapshotRow> = soa
                    .keys()
                    .into_iter()
                    .map(|k| {
                        let slot = soa.slot_of(k).unwrap();
                        (k, soa.expires_at(slot), soa.detail(slot).oifs.clone())
                    })
                    .collect();
                assert_eq!(
                    snap1,
                    old.snapshot(),
                    "seed {seed} step {step}: state diverged"
                );
                assert_eq!(soa.len(), old.len());
                assert_eq!(soa.stalest(), old.stalest());
                // Watermark invariant: never later than any live expiry.
                if let Some(m) = old.min_expires() {
                    assert!(soa.min_expires() <= m);
                }
            }
        }
    }
}
