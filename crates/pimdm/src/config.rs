//! PIM-DM protocol timer configuration
//! (draft-ietf-pim-v2-dm-03, the version the paper cites).

use mobicast_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// PIM-DM timer profile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PimConfig {
    /// Period between Hello messages. Default 30 s.
    pub hello_period: SimDuration,
    /// Neighbor holdtime advertised in Hellos. Default 105 s (3.5 × period).
    pub hello_holdtime: SimDuration,
    /// (S,G) state lifetime for a silent source — the paper's
    /// "data-timeout value … default 210 s" after which stale trees of a
    /// moved sender are deleted.
    pub data_timeout: SimDuration,
    /// How long a pruned interface stays pruned before flooding resumes.
    /// Default 210 s.
    pub prune_hold_time: SimDuration,
    /// The paper's `T_PruneDel` (default 3 s): delay between receiving a
    /// Prune on a LAN and acting on it, giving other downstream routers the
    /// chance to send a Join override.
    pub prune_delay: SimDuration,
    /// Assert state lifetime. Default 180 s.
    pub assert_time: SimDuration,
    /// Graft retransmission period while unacknowledged. Default 3 s.
    pub graft_retry: SimDuration,
    /// Minimum spacing of repeated Prunes / Asserts triggered by data
    /// arrival (rate limit). Default 3 s.
    pub control_rate_limit: SimDuration,
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig {
            hello_period: SimDuration::from_secs(30),
            hello_holdtime: SimDuration::from_millis(105_000),
            data_timeout: SimDuration::from_secs(210),
            prune_hold_time: SimDuration::from_secs(210),
            prune_delay: SimDuration::from_secs(3),
            assert_time: SimDuration::from_secs(180),
            graft_retry: SimDuration::from_secs(3),
            control_rate_limit: SimDuration::from_secs(3),
        }
    }
}

impl PimConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.hello_holdtime <= self.hello_period {
            return Err("hello holdtime must exceed hello period".into());
        }
        if self.prune_delay.is_zero() {
            return Err("prune delay must be positive (join-override window)".into());
        }
        if self.data_timeout.is_zero() || self.prune_hold_time.is_zero() {
            return Err("state timeouts must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = PimConfig::default();
        assert_eq!(cfg.data_timeout, SimDuration::from_secs(210), "paper §3.1");
        assert_eq!(cfg.prune_delay, SimDuration::from_secs(3), "paper §4.3.1");
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let cfg = PimConfig {
            hello_holdtime: SimDuration::from_secs(10),
            ..PimConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = PimConfig {
            prune_delay: SimDuration::ZERO,
            ..PimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
