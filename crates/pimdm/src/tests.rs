//! Unit tests for the PIM-DM state machine. The scenarios mirror the
//! protocol walkthroughs in Section 3.1 of the paper.

use crate::config::PimConfig;
use crate::message::PimMessage;
use crate::router::{PimDest, PimNote, PimRouter, PimSend, RpfInfo};
use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::{RngFactory, ShedPolicy, SimDuration, SimTime};
use std::net::Ipv6Addr;

fn a(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

fn g(i: u16) -> GroupAddr {
    GroupAddr::test_group(i)
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Source reached via iface 0 with upstream neighbor fe80::1.
const REMOTE_SRC: &str = "2001:db8:1::5";
/// Source directly attached on iface 2.
const LOCAL_SRC: &str = "2001:db8:9::5";

fn rpf(src: Ipv6Addr) -> Option<RpfInfo> {
    if src == a(REMOTE_SRC) {
        Some(RpfInfo {
            iif: 0,
            upstream: Some(a("fe80::1")),
            metric_pref: 101,
            metric: 2,
        })
    } else if src == a(LOCAL_SRC) {
        Some(RpfInfo {
            iif: 2,
            upstream: None,
            metric_pref: 0,
            metric: 0,
        })
    } else {
        None
    }
}

/// A three-interface router: 0 (toward REMOTE_SRC), 1 and 2 downstream.
fn router() -> PimRouter {
    let mut r = PimRouter::new(PimConfig::default(), RngFactory::new(7).stream("pim"));
    r.add_iface(0, a("fe80::10"));
    r.add_iface(1, a("fe80::11"));
    r.add_iface(2, a("fe80::12"));
    r
}

/// Bring up a downstream PIM neighbor on `iface`.
fn neighbor(r: &mut PimRouter, iface: u8, addr: &str, now: SimTime) {
    r.on_message(
        iface,
        a(addr),
        &PimMessage::Hello {
            holdtime: SimDuration::from_secs(105),
        },
        now,
        &rpf,
    );
}

fn find_send(sends: &[PimSend], pred: impl Fn(&PimSend) -> bool) -> Option<&PimSend> {
    sends.iter().find(|s| pred(s))
}

#[test]
fn start_sends_hello_on_every_iface() {
    let mut r = router();
    let sends = r.start(t(0));
    assert_eq!(sends.len(), 3);
    for s in &sends {
        assert!(matches!(s.msg, PimMessage::Hello { .. }));
        assert_eq!(s.dest, PimDest::AllRouters);
    }
    // Next hello scheduled at +30 s.
    assert_eq!(r.next_deadline(), Some(t(30)));
}

#[test]
fn data_floods_to_interested_interfaces_only() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    // iface 2: no neighbors, no members -> leaf with nobody interested.
    let (fwd, sends) = r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    assert_eq!(fwd, vec![1], "flood only where someone listens");
    assert!(sends.is_empty());
    assert_eq!(r.entry_count(), 1);
}

#[test]
fn member_makes_leaf_interface_interested() {
    let mut r = router();
    r.start(t(0));
    r.set_membership(2, g(1), true, t(1), &rpf);
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    assert_eq!(fwd, vec![2]);
}

#[test]
fn directly_attached_source_floods_from_origin() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 0, "fe80::1", t(1));
    neighbor(&mut r, 1, "fe80::21", t(1));
    let (fwd, _) = r.on_data(2, a(LOCAL_SRC), g(1), t(2), &rpf);
    assert_eq!(fwd, vec![0, 1]);
    let snap = r.snapshot(a(LOCAL_SRC), g(1)).unwrap();
    assert_eq!(snap.iif, 2);
    assert_eq!(snap.upstream, None, "origin router has no upstream");
}

#[test]
fn unroutable_source_is_dropped() {
    let mut r = router();
    r.start(t(0));
    let (fwd, sends) = r.on_data(0, a("2001:db8:ff::9"), g(1), t(1), &rpf);
    assert!(fwd.is_empty());
    assert!(sends.is_empty());
    assert_eq!(r.entry_count(), 0);
}

#[test]
fn leaf_router_prunes_when_nothing_interested() {
    let mut r = router();
    r.start(t(0));
    // No neighbors, no members anywhere: oif list empty.
    let (fwd, sends) = r.on_data(0, a(REMOTE_SRC), g(1), t(1), &rpf);
    assert!(fwd.is_empty());
    let prune = find_send(
        &sends,
        |s| matches!(&s.msg, PimMessage::JoinPrune { prunes, .. } if !prunes.is_empty()),
    )
    .expect("prune sent upstream");
    assert_eq!(prune.iface, 0);
    assert_eq!(prune.dest, PimDest::AllRouters);
    match &prune.msg {
        PimMessage::JoinPrune {
            upstream, prunes, ..
        } => {
            assert_eq!(*upstream, a("fe80::1"));
            assert_eq!(prunes, &vec![(a(REMOTE_SRC), g(1))]);
        }
        _ => unreachable!(),
    }
    assert!(r.snapshot(a(REMOTE_SRC), g(1)).unwrap().upstream_pruned);
}

#[test]
fn repeated_data_does_not_spam_prunes() {
    let mut r = router();
    r.start(t(0));
    let (_, s1) = r.on_data(0, a(REMOTE_SRC), g(1), t(1), &rpf);
    assert_eq!(s1.len(), 1);
    // 1 s later (inside the rate limit window): no second prune.
    let (_, s2) = r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    assert!(s2.is_empty(), "prune rate-limited: {s2:?}");
    // After the rate limit, a further prune may go out.
    let (_, s3) = r.on_data(0, a(REMOTE_SRC), g(1), t(6), &rpf);
    assert_eq!(s3.len(), 1);
}

#[test]
fn upstream_prune_respects_join_override_window() {
    // We are the upstream router on iface 1's LAN.
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    neighbor(&mut r, 1, "fe80::22", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    // fe80::21 prunes (addressed to us).
    r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::11"),
            joins: vec![],
            prunes: vec![(a(REMOTE_SRC), g(1))],
        },
        t(2),
        &rpf,
    );
    // Still forwarding during the T_PruneDel window.
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(3), &rpf);
    assert_eq!(fwd, vec![1], "forwarding continues during override window");
    // After 3 s the prune fires.
    r.on_deadline(t(5), &rpf);
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(6), &rpf);
    assert!(fwd.is_empty(), "iface pruned after T_PruneDel");
    assert_eq!(r.snapshot(a(REMOTE_SRC), g(1)).unwrap().pruned, vec![1]);
}

#[test]
fn join_override_cancels_pending_prune() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    neighbor(&mut r, 1, "fe80::22", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::11"),
            joins: vec![],
            prunes: vec![(a(REMOTE_SRC), g(1))],
        },
        t(2),
        &rpf,
    );
    // fe80::22 overrides with a Join inside the window.
    r.on_message(
        1,
        a("fe80::22"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::11"),
            joins: vec![(a(REMOTE_SRC), g(1))],
            prunes: vec![],
        },
        t(3),
        &rpf,
    );
    r.on_deadline(t(10), &rpf);
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(11), &rpf);
    assert_eq!(fwd, vec![1], "join override kept the interface alive");
}

#[test]
fn overheard_prune_schedules_join_override() {
    // We are a downstream router with members; a sibling prunes our shared
    // upstream on our incoming interface's LAN.
    let mut r = router();
    r.start(t(0));
    r.set_membership(1, g(1), true, t(1), &rpf);
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    r.on_message(
        0,
        a("fe80::9"), // sibling router on iface 0's LAN
        &PimMessage::JoinPrune {
            upstream: a("fe80::1"), // our upstream too
            joins: vec![],
            prunes: vec![(a(REMOTE_SRC), g(1))],
        },
        t(3),
        &rpf,
    );
    // An override join must be scheduled within the override window.
    let dl = r.next_deadline().expect("override scheduled");
    assert!(dl >= t(3) && dl <= t(3) + SimDuration::from_secs(3));
    let sends = r.on_deadline(dl, &rpf);
    let join = find_send(
        &sends,
        |s| matches!(&s.msg, PimMessage::JoinPrune { joins, .. } if !joins.is_empty()),
    )
    .expect("join override sent");
    assert_eq!(join.iface, 0);
    match &join.msg {
        PimMessage::JoinPrune {
            upstream, joins, ..
        } => {
            assert_eq!(*upstream, a("fe80::1"));
            assert_eq!(joins, &vec![(a(REMOTE_SRC), g(1))]);
        }
        _ => unreachable!(),
    }
}

#[test]
fn overheard_join_suppresses_our_override() {
    let mut r = router();
    r.start(t(0));
    r.set_membership(1, g(1), true, t(1), &rpf);
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    r.on_message(
        0,
        a("fe80::9"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::1"),
            joins: vec![],
            prunes: vec![(a(REMOTE_SRC), g(1))],
        },
        t(3),
        &rpf,
    );
    assert!(r.next_deadline().unwrap() < t(6), "override pending");
    // Another router's join overrides first.
    r.on_message(
        0,
        a("fe80::8"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::1"),
            joins: vec![(a(REMOTE_SRC), g(1))],
            prunes: vec![],
        },
        t(3),
        &rpf,
    );
    // Fire any remaining deadlines within the window: no join from us.
    let sends = r.on_deadline(t(6), &rpf);
    assert!(
        !sends
            .iter()
            .any(|s| matches!(&s.msg, PimMessage::JoinPrune { joins, .. } if !joins.is_empty())),
        "our override was suppressed: {sends:?}"
    );
}

#[test]
fn membership_join_on_pruned_entry_grafts_upstream() {
    let mut r = router();
    r.start(t(0));
    // Prune ourselves (no interest anywhere).
    r.on_data(0, a(REMOTE_SRC), g(1), t(1), &rpf);
    assert!(r.snapshot(a(REMOTE_SRC), g(1)).unwrap().upstream_pruned);
    // A member appears on iface 1: graft.
    let sends = r.set_membership(1, g(1), true, t(10), &rpf);
    let graft =
        find_send(&sends, |s| matches!(&s.msg, PimMessage::Graft { .. })).expect("graft sent");
    assert_eq!(graft.iface, 0);
    assert_eq!(graft.dest, PimDest::Unicast(a("fe80::1")));
    // Unacknowledged graft retransmits after graft_retry (3 s).
    let dl = r.next_deadline().unwrap();
    assert_eq!(dl, t(13));
    let sends = r.on_deadline(dl, &rpf);
    assert!(find_send(&sends, |s| matches!(&s.msg, PimMessage::Graft { .. })).is_some());
    // Ack stops the retransmissions.
    r.on_message(
        0,
        a("fe80::1"),
        &PimMessage::GraftAck {
            upstream: a("fe80::1"),
            entries: vec![(a(REMOTE_SRC), g(1))],
        },
        t(14),
        &rpf,
    );
    assert!(!r.snapshot(a(REMOTE_SRC), g(1)).unwrap().upstream_pruned);
    let sends = r.on_deadline(t(20), &rpf);
    assert!(
        !sends
            .iter()
            .any(|s| matches!(&s.msg, PimMessage::Graft { .. })),
        "no more graft retransmissions after ack"
    );
}

#[test]
fn upstream_handles_graft_with_ack_and_propagation() {
    let mut r = router();
    r.start(t(0));
    // Prune ourselves upstream first (nobody interested).
    r.on_data(0, a(REMOTE_SRC), g(1), t(1), &rpf);
    // Downstream router grafts through us on iface 1.
    let sends = r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::Graft {
            upstream: a("fe80::11"), // our address on iface 1
            entries: vec![(a(REMOTE_SRC), g(1))],
        },
        t(5),
        &rpf,
    );
    // We ack the downstream graft...
    let ack = find_send(&sends, |s| matches!(&s.msg, PimMessage::GraftAck { .. }))
        .expect("graft-ack sent");
    assert_eq!(ack.iface, 1);
    assert_eq!(ack.dest, PimDest::Unicast(a("fe80::21")));
    // ...and propagate the graft upstream because we were pruned there.
    let graft = find_send(&sends, |s| matches!(&s.msg, PimMessage::Graft { .. }))
        .expect("graft propagated upstream");
    assert_eq!(graft.iface, 0);
    assert_eq!(graft.dest, PimDest::Unicast(a("fe80::1")));
    // The grafted interface forwards again.
    let snap = r.snapshot(a(REMOTE_SRC), g(1)).unwrap();
    assert!(snap.pruned.is_empty());
}

#[test]
fn graft_for_foreign_upstream_is_ignored() {
    let mut r = router();
    r.start(t(0));
    r.on_data(0, a(REMOTE_SRC), g(1), t(1), &rpf);
    let sends = r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::Graft {
            upstream: a("fe80::99"), // not us
            entries: vec![(a(REMOTE_SRC), g(1))],
        },
        t(5),
        &rpf,
    );
    assert!(sends.is_empty());
}

#[test]
fn data_on_outgoing_interface_triggers_assert() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    // The same stream arrives on iface 1 (parallel forwarder / loop).
    let (fwd, sends) = r.on_data(1, a(REMOTE_SRC), g(1), t(3), &rpf);
    assert!(fwd.is_empty(), "never forward from a wrong interface");
    let assert_msg = find_send(&sends, |s| matches!(&s.msg, PimMessage::Assert { .. }))
        .expect("assert triggered");
    assert_eq!(assert_msg.iface, 1);
    match &assert_msg.msg {
        PimMessage::Assert {
            metric_pref,
            metric,
            ..
        } => {
            assert_eq!((*metric_pref, *metric), (101, 2));
        }
        _ => unreachable!(),
    }
    // Rate limited: immediate repeat does not re-assert.
    let (_, sends) = r.on_data(1, a(REMOTE_SRC), g(1), t(4), &rpf);
    assert!(sends.is_empty());
}

#[test]
fn assert_loser_stops_forwarding_until_timeout() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    // A competitor with a better metric asserts on iface 1.
    let sends = r.on_message(
        1,
        a("fe80::30"),
        &PimMessage::Assert {
            group: g(1),
            source: a(REMOTE_SRC),
            metric_pref: 101,
            metric: 1, // better than our 2
        },
        t(3),
        &rpf,
    );
    assert!(sends.is_empty(), "loser stays silent");
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(4), &rpf);
    assert!(fwd.is_empty(), "assert loser must not forward");
    // Keep the neighbor alive across the long wait (105 s holdtime).
    neighbor(&mut r, 1, "fe80::21", t(100));
    neighbor(&mut r, 1, "fe80::21", t(180));
    // Assert state expires after assert_time (180 s) and forwarding resumes.
    r.on_deadline(t(3) + SimDuration::from_secs(180), &rpf);
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(200), &rpf);
    assert_eq!(fwd, vec![1]);
}

#[test]
fn assert_winner_reasserts_its_claim() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    // A competitor with a *worse* metric asserts: we answer.
    let sends = r.on_message(
        1,
        a("fe80::30"),
        &PimMessage::Assert {
            group: g(1),
            source: a(REMOTE_SRC),
            metric_pref: 101,
            metric: 9,
        },
        t(3),
        &rpf,
    );
    let ours = find_send(&sends, |s| matches!(&s.msg, PimMessage::Assert { .. }))
        .expect("winner re-asserts");
    assert_eq!(ours.iface, 1);
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(4), &rpf);
    assert_eq!(fwd, vec![1], "winner keeps forwarding");
}

#[test]
fn assert_tie_broken_by_higher_address() {
    let mut r = router(); // our iface-1 address: fe80::11
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    // Identical metrics from a higher address: they win.
    r.on_message(
        1,
        a("fe80::ff"),
        &PimMessage::Assert {
            group: g(1),
            source: a(REMOTE_SRC),
            metric_pref: 101,
            metric: 2,
        },
        t(3),
        &rpf,
    );
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(4), &rpf);
    assert!(fwd.is_empty(), "higher address wins the tie");
}

#[test]
fn assert_on_incoming_interface_updates_upstream() {
    let mut r = router();
    r.start(t(0));
    r.set_membership(1, g(1), true, t(1), &rpf);
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    assert_eq!(
        r.snapshot(a(REMOTE_SRC), g(1)).unwrap().upstream,
        Some(a("fe80::1"))
    );
    // The assert winner on the upstream LAN announces itself.
    r.on_message(
        0,
        a("fe80::2"),
        &PimMessage::Assert {
            group: g(1),
            source: a(REMOTE_SRC),
            metric_pref: 101,
            metric: 1,
        },
        t(3),
        &rpf,
    );
    assert_eq!(
        r.snapshot(a(REMOTE_SRC), g(1)).unwrap().upstream,
        Some(a("fe80::2")),
        "paper §3.1: downstream routers store the elected forwarder"
    );
}

#[test]
fn entry_expires_after_data_timeout() {
    // The paper: "(S,G) state for a silent source will be deleted …
    // default value is 210 s".
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    assert_eq!(r.entry_count(), 1);
    r.on_deadline(t(2) + SimDuration::from_secs(210), &rpf);
    assert_eq!(r.entry_count(), 0, "stale entry deleted at data timeout");
}

#[test]
fn data_refreshes_entry_lifetime() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    r.on_data(0, a(REMOTE_SRC), g(1), t(100), &rpf);
    r.on_deadline(t(2) + SimDuration::from_secs(210), &rpf);
    assert_eq!(r.entry_count(), 1, "refreshed by data at t=100");
}

#[test]
fn member_leaving_triggers_prune() {
    let mut r = router();
    r.start(t(0));
    r.set_membership(1, g(1), true, t(1), &rpf);
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    let sends = r.set_membership(1, g(1), false, t(10), &rpf);
    let prune = find_send(
        &sends,
        |s| matches!(&s.msg, PimMessage::JoinPrune { prunes, .. } if !prunes.is_empty()),
    )
    .expect("prune after last member left");
    assert_eq!(prune.iface, 0);
}

#[test]
fn new_neighbor_clears_prune_state() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    // Downstream prunes, window passes, iface pruned.
    r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::11"),
            joins: vec![],
            prunes: vec![(a(REMOTE_SRC), g(1))],
        },
        t(2),
        &rpf,
    );
    r.on_deadline(t(6), &rpf);
    assert_eq!(r.snapshot(a(REMOTE_SRC), g(1)).unwrap().pruned, vec![1]);
    // A brand-new router appears on iface 1: flooding must resume for it.
    neighbor(&mut r, 1, "fe80::99", t(7));
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(8), &rpf);
    assert_eq!(fwd, vec![1]);
}

#[test]
fn pruned_interface_recovers_after_hold_time() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::11"),
            joins: vec![],
            prunes: vec![(a(REMOTE_SRC), g(1))],
        },
        t(2),
        &rpf,
    );
    r.on_deadline(t(5), &rpf); // prune fires at t=5
                               // Keep the entry and the neighbor alive while the hold time runs out.
    let mut now = 10;
    while now < 250 {
        r.on_data(0, a(REMOTE_SRC), g(1), t(now), &rpf);
        neighbor(&mut r, 1, "fe80::21", t(now));
        r.on_deadline(t(now + 1), &rpf);
        now += 50;
    }
    // Prune hold (210 s from t=5) has expired: flooding resumes.
    r.on_deadline(t(255), &rpf);
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(260), &rpf);
    assert_eq!(fwd, vec![1], "dense-mode re-flood after prune hold time");
}

#[test]
fn neighbor_expiry_removes_interest() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    assert_eq!(r.neighbor_count(1), 1);
    // Holdtime 105 s: expires at t=106.
    r.on_deadline(t(110), &rpf);
    assert_eq!(r.neighbor_count(1), 0);
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(111), &rpf);
    assert!(
        fwd.is_empty(),
        "no neighbors, no members: nothing to forward"
    );
}

#[test]
fn hello_refresh_keeps_neighbor() {
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    neighbor(&mut r, 1, "fe80::21", t(60));
    r.on_deadline(t(110), &rpf);
    assert_eq!(r.neighbor_count(1), 1, "refreshed at t=60, alive until 165");
}

#[test]
fn periodic_hellos_continue() {
    let mut r = router();
    r.start(t(0));
    let sends = r.on_deadline(t(30), &rpf);
    assert_eq!(
        sends
            .iter()
            .filter(|s| matches!(s.msg, PimMessage::Hello { .. }))
            .count(),
        3
    );
    assert_eq!(r.next_deadline().unwrap(), t(60));
}

#[test]
fn join_for_unknown_entry_creates_state() {
    let mut r = router();
    r.start(t(0));
    let sends = r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::11"),
            joins: vec![(a(REMOTE_SRC), g(1))],
            prunes: vec![],
        },
        t(1),
        &rpf,
    );
    assert!(sends.is_empty());
    assert_eq!(r.entry_count(), 1);
}

#[test]
fn prune_does_not_override_local_members() {
    // A downstream router prunes, but a local MLD member on the same LAN
    // still needs the traffic: forwarding must continue.
    let mut r = router();
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(1));
    r.set_membership(1, g(1), true, t(1), &rpf);
    r.on_data(0, a(REMOTE_SRC), g(1), t(2), &rpf);
    r.on_message(
        1,
        a("fe80::21"),
        &PimMessage::JoinPrune {
            upstream: a("fe80::11"),
            joins: vec![],
            prunes: vec![(a(REMOTE_SRC), g(1))],
        },
        t(2),
        &rpf,
    );
    r.on_deadline(t(6), &rpf); // prune window passes
    let (fwd, _) = r.on_data(0, a(REMOTE_SRC), g(1), t(7), &rpf);
    assert_eq!(fwd, vec![1], "local member overrides the prune");
}

/// Every source is routable via iface 0 (used by the budget tests to
/// create arbitrarily many (S,G) entries).
fn rpf_flood(_src: Ipv6Addr) -> Option<RpfInfo> {
    Some(RpfInfo {
        iif: 0,
        upstream: Some(a("fe80::1")),
        metric_pref: 101,
        metric: 2,
    })
}

fn src(i: u16) -> Ipv6Addr {
    a(&format!("2001:db8:1::{:x}", 0x100 + i))
}

#[test]
fn sg_budget_reject_new_sheds_new_sources() {
    let mut r = router();
    r.set_budget(Some(2), ShedPolicy::RejectNew);
    r.start(t(0));
    r.on_data(0, src(1), g(1), t(1), &rpf_flood);
    r.on_data(0, src(2), g(1), t(2), &rpf_flood);
    r.take_notes();
    // A third source finds the table full: no entry, no forwarding.
    let (fwd, _) = r.on_data(0, src(3), g(1), t(3), &rpf_flood);
    assert!(fwd.is_empty());
    assert_eq!(r.entry_count(), 2);
    assert_eq!(r.take_notes(), vec![PimNote::SgShed { sg: (src(3), g(1)) }]);
    assert!(r.snapshot(src(1), g(1)).is_some());
    assert!(r.snapshot(src(3), g(1)).is_none());
}

#[test]
fn sg_budget_evict_stalest_admits_new_source() {
    let mut r = router();
    r.set_budget(Some(2), ShedPolicy::EvictStalest);
    r.start(t(0));
    neighbor(&mut r, 1, "fe80::21", t(0));
    r.on_data(0, src(1), g(1), t(1), &rpf_flood);
    r.on_data(0, src(2), g(1), t(5), &rpf_flood);
    r.take_notes();
    // src(1) expires first -> evicted to admit src(3).
    let (fwd, _) = r.on_data(0, src(3), g(1), t(9), &rpf_flood);
    assert!(!fwd.is_empty(), "new source is forwarded after eviction");
    assert_eq!(r.entry_count(), 2);
    assert_eq!(
        r.take_notes(),
        vec![PimNote::SgEvicted { sg: (src(1), g(1)) }]
    );
    assert!(r.snapshot(src(1), g(1)).is_none());
    assert!(r.snapshot(src(3), g(1)).is_some());
}

#[test]
fn sg_budget_eviction_sequence_is_deterministic() {
    let run = || {
        let mut r = router();
        r.set_budget(Some(3), ShedPolicy::EvictStalest);
        r.start(t(0));
        let mut notes = Vec::new();
        for i in 0..20u16 {
            r.on_data(0, src(i % 7), g(1 + i % 3), t(1 + u64::from(i)), &rpf_flood);
            notes.extend(r.take_notes());
        }
        notes
    };
    assert_eq!(run(), run());
}
