//! # mobicast-pimdm
//!
//! Protocol Independent Multicast — Dense Mode (draft-ietf-pim-v2-dm-03) as
//! a sans-IO router state machine. One [`PimRouter`] instance per simulated
//! router; the node glue feeds in data-arrival notifications, control
//! messages, MLD membership changes and deadlines, and transmits the
//! returned [`PimSend`] control messages.
//!
//! The machine implements the full dense-mode behaviour the paper analyses:
//! flood-and-prune with the `T_PruneDel` join-override window, graft /
//! graft-ack with retransmission, assert election of a single forwarder per
//! LAN, data-timeout expiry of (S,G) state (the stale trees a mobile sender
//! leaves behind), and hello-based neighbor liveness.

pub mod config;
mod error;
pub mod message;
pub mod router;
pub mod table;

#[cfg(test)]
mod tests;

pub use config::PimConfig;
pub use message::{PimMessage, Sg};
pub use router::{IfIndex, PimDest, PimNote, PimRouter, PimSend, RpfInfo, RpfLookup, SgSnapshot};
pub use table::SgTable;
