//! PIM v2 message wire formats (IPv6 protocol number 103).
//!
//! Layout follows draft-ietf-pim-v2-dm-03 with one documented
//! simplification: addresses are raw 16-byte IPv6 addresses instead of the
//! "encoded unicast/group" forms with family prefixes (the simulator is
//! IPv6-only, so the family bytes carry no information). Checksums are real
//! (pseudo-header Internet checksum, as for ICMPv6).

use crate::error::need2;
use bytes::{BufMut, Bytes, BytesMut};
use mobicast_ipv6::addr::GroupAddr;
use mobicast_ipv6::error::DecodeError;
use mobicast_ipv6::packet::{proto, pseudo_header_checksum};
use mobicast_sim::SimDuration;
use std::net::Ipv6Addr;

/// PIM message type: Hello.
pub const TYPE_HELLO: u8 = 0;
/// PIM message type: Join/Prune.
pub const TYPE_JOIN_PRUNE: u8 = 3;
/// PIM message type: Assert.
pub const TYPE_ASSERT: u8 = 5;
/// PIM message type: Graft.
pub const TYPE_GRAFT: u8 = 6;
/// PIM message type: Graft-Ack.
pub const TYPE_GRAFT_ACK: u8 = 7;

/// A source/group pair — the (S,G) of PIM-DM state.
pub type Sg = (Ipv6Addr, GroupAddr);

/// A parsed PIM message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PimMessage {
    Hello {
        holdtime: SimDuration,
    },
    /// Join/Prune addressed (logically) to `upstream` on the shared link.
    JoinPrune {
        upstream: Ipv6Addr,
        joins: Vec<Sg>,
        prunes: Vec<Sg>,
    },
    /// Graft: re-attach pruned state (same body as Join/Prune, joins only).
    Graft {
        upstream: Ipv6Addr,
        entries: Vec<Sg>,
    },
    /// Graft-Ack: echo of the Graft.
    GraftAck {
        upstream: Ipv6Addr,
        entries: Vec<Sg>,
    },
    Assert {
        group: GroupAddr,
        source: Ipv6Addr,
        /// Metric preference of the asserting router's unicast route to the
        /// source (lower wins).
        metric_pref: u32,
        /// Unicast metric (lower wins; final tiebreak: higher address wins).
        metric: u32,
    },
}

impl PimMessage {
    pub fn pim_type(&self) -> u8 {
        match self {
            PimMessage::Hello { .. } => TYPE_HELLO,
            PimMessage::JoinPrune { .. } => TYPE_JOIN_PRUNE,
            PimMessage::Assert { .. } => TYPE_ASSERT,
            PimMessage::Graft { .. } => TYPE_GRAFT,
            PimMessage::GraftAck { .. } => TYPE_GRAFT_ACK,
        }
    }

    /// Encode with a valid checksum.
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u8((2 << 4) | self.pim_type()); // version 2
        out.put_u8(0);
        out.put_u16(0); // checksum placeholder
        match self {
            PimMessage::Hello { holdtime } => {
                // Option 1: Holdtime (seconds, u16).
                out.put_u16(1);
                out.put_u16(2);
                let secs = holdtime.as_nanos() / 1_000_000_000;
                out.put_u16(secs.min(u64::from(u16::MAX)) as u16);
            }
            PimMessage::JoinPrune {
                upstream,
                joins,
                prunes,
            } => {
                encode_jp_body(&mut out, *upstream, joins, prunes);
            }
            PimMessage::Graft { upstream, entries } => {
                encode_jp_body(&mut out, *upstream, entries, &[]);
            }
            PimMessage::GraftAck { upstream, entries } => {
                encode_jp_body(&mut out, *upstream, entries, &[]);
            }
            PimMessage::Assert {
                group,
                source,
                metric_pref,
                metric,
            } => {
                out.put_slice(&group.addr().octets());
                out.put_slice(&source.octets());
                out.put_u32(*metric_pref);
                out.put_u32(*metric);
            }
        }
        let sum = pseudo_header_checksum(src, dst, proto::PIM, &out);
        out[2..4].copy_from_slice(&sum.to_be_bytes());
        out.freeze()
    }

    /// Decode and verify version + checksum.
    pub fn decode(src: Ipv6Addr, dst: Ipv6Addr, buf: &[u8]) -> Result<PimMessage, DecodeError> {
        need2(buf, 4, "PIM header")?;
        if pseudo_header_checksum(src, dst, proto::PIM, buf) != 0 {
            return Err(DecodeError::Invalid {
                what: "PIM checksum",
            });
        }
        let version = buf[0] >> 4;
        if version != 2 {
            return Err(DecodeError::BadVersion(version));
        }
        let ptype = buf[0] & 0x0f;
        let body = &buf[4..];
        match ptype {
            TYPE_HELLO => {
                let mut holdtime = SimDuration::from_secs(105);
                let mut rest = body;
                while rest.len() >= 4 {
                    let otype = u16::from_be_bytes([rest[0], rest[1]]);
                    let olen = usize::from(u16::from_be_bytes([rest[2], rest[3]]));
                    need2(&rest[4..], olen, "PIM hello option")?;
                    if otype == 1 && olen == 2 {
                        holdtime = SimDuration::from_secs(u64::from(u16::from_be_bytes([
                            rest[4], rest[5],
                        ])));
                    }
                    rest = &rest[4 + olen..];
                }
                Ok(PimMessage::Hello { holdtime })
            }
            TYPE_JOIN_PRUNE | TYPE_GRAFT | TYPE_GRAFT_ACK => {
                let (upstream, joins, prunes) = decode_jp_body(body)?;
                Ok(match ptype {
                    TYPE_JOIN_PRUNE => PimMessage::JoinPrune {
                        upstream,
                        joins,
                        prunes,
                    },
                    TYPE_GRAFT => PimMessage::Graft {
                        upstream,
                        entries: joins,
                    },
                    _ => PimMessage::GraftAck {
                        upstream,
                        entries: joins,
                    },
                })
            }
            TYPE_ASSERT => {
                need2(body, 40, "PIM assert")?;
                let group =
                    GroupAddr::try_new(read16(&body[0..16])).ok_or(DecodeError::Invalid {
                        what: "assert group address",
                    })?;
                let source = read16(&body[16..32]);
                let metric_pref = u32::from_be_bytes([body[32], body[33], body[34], body[35]]);
                let metric = u32::from_be_bytes([body[36], body[37], body[38], body[39]]);
                Ok(PimMessage::Assert {
                    group,
                    source,
                    metric_pref,
                    metric,
                })
            }
            _ => Err(DecodeError::Unsupported {
                what: "PIM message type",
                value: u32::from(ptype),
            }),
        }
    }
}

fn encode_jp_body(out: &mut BytesMut, upstream: Ipv6Addr, joins: &[Sg], prunes: &[Sg]) {
    out.put_slice(&upstream.octets());
    out.put_u8(0); // reserved
                   // Group the entries by group address, preserving order of first
                   // appearance for determinism.
    let mut groups: Vec<(GroupAddr, Vec<Ipv6Addr>, Vec<Ipv6Addr>)> = Vec::new();
    let slot = |g: GroupAddr, groups: &mut Vec<(GroupAddr, Vec<Ipv6Addr>, Vec<Ipv6Addr>)>| {
        if let Some(i) = groups.iter().position(|(gg, _, _)| *gg == g) {
            i
        } else {
            groups.push((g, Vec::new(), Vec::new()));
            groups.len() - 1
        }
    };
    for (s, g) in joins {
        let i = slot(*g, &mut groups);
        groups[i].1.push(*s);
    }
    for (s, g) in prunes {
        let i = slot(*g, &mut groups);
        groups[i].2.push(*s);
    }
    assert!(groups.len() <= 255, "too many groups in one message");
    out.put_u8(groups.len() as u8);
    out.put_u16(0); // holdtime (unused in DM joins/prunes here)
    for (g, js, ps) in &groups {
        out.put_slice(&g.addr().octets());
        out.put_u16(js.len() as u16);
        out.put_u16(ps.len() as u16);
        for s in js {
            out.put_slice(&s.octets());
        }
        for s in ps {
            out.put_slice(&s.octets());
        }
    }
}

type JpBody = (Ipv6Addr, Vec<Sg>, Vec<Sg>);

fn decode_jp_body(body: &[u8]) -> Result<JpBody, DecodeError> {
    need2(body, 20, "PIM join/prune body")?;
    let upstream = read16(&body[0..16]);
    let ngroups = usize::from(body[17]);
    let mut joins = Vec::new();
    let mut prunes = Vec::new();
    let mut rest = &body[20..];
    for _ in 0..ngroups {
        need2(rest, 20, "PIM join/prune group header")?;
        let group = GroupAddr::try_new(read16(&rest[0..16])).ok_or(DecodeError::Invalid {
            what: "join/prune group address",
        })?;
        let nj = usize::from(u16::from_be_bytes([rest[16], rest[17]]));
        let np = usize::from(u16::from_be_bytes([rest[18], rest[19]]));
        rest = &rest[20..];
        need2(rest, 16 * (nj + np), "PIM join/prune sources")?;
        for _ in 0..nj {
            joins.push((read16(&rest[0..16]), group));
            rest = &rest[16..];
        }
        for _ in 0..np {
            prunes.push((read16(&rest[0..16]), group));
            rest = &rest[16..];
        }
    }
    Ok((upstream, joins, prunes))
}

fn read16(buf: &[u8]) -> Ipv6Addr {
    let mut o = [0u8; 16];
    o.copy_from_slice(&buf[..16]);
    Ipv6Addr::from(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicast_ipv6::addr::ALL_PIM_ROUTERS;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }

    fn roundtrip(m: &PimMessage) -> PimMessage {
        let src = a("fe80::1");
        let wire = m.encode(src, ALL_PIM_ROUTERS);
        PimMessage::decode(src, ALL_PIM_ROUTERS, &wire).expect("decode")
    }

    #[test]
    fn hello_roundtrip() {
        let m = PimMessage::Hello {
            holdtime: SimDuration::from_secs(105),
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn join_prune_roundtrip() {
        let m = PimMessage::JoinPrune {
            upstream: a("fe80::b"),
            joins: vec![(a("2001:db8:1::5"), g(1))],
            prunes: vec![(a("2001:db8:1::5"), g(2)), (a("2001:db8:1::6"), g(2))],
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn prune_only_roundtrip() {
        let m = PimMessage::JoinPrune {
            upstream: a("fe80::b"),
            joins: vec![],
            prunes: vec![(a("2001:db8:1::5"), g(1))],
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn graft_and_ack_roundtrip() {
        let m = PimMessage::Graft {
            upstream: a("fe80::d"),
            entries: vec![(a("2001:db8:1::5"), g(1))],
        };
        assert_eq!(roundtrip(&m), m);
        let m = PimMessage::GraftAck {
            upstream: a("fe80::d"),
            entries: vec![(a("2001:db8:1::5"), g(1))],
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn assert_roundtrip() {
        let m = PimMessage::Assert {
            group: g(1),
            source: a("2001:db8:1::5"),
            metric_pref: 101,
            metric: 3,
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn checksum_corruption_detected() {
        let m = PimMessage::Hello {
            holdtime: SimDuration::from_secs(105),
        };
        let src = a("fe80::1");
        let mut wire = m.encode(src, ALL_PIM_ROUTERS).to_vec();
        wire[5] ^= 0x01;
        assert!(PimMessage::decode(src, ALL_PIM_ROUTERS, &wire).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let m = PimMessage::Hello {
            holdtime: SimDuration::from_secs(105),
        };
        let src = a("fe80::1");
        let mut wire = m.encode(src, ALL_PIM_ROUTERS).to_vec();
        wire[0] = (1 << 4) | TYPE_HELLO;
        // Fix the checksum for the altered version so only the version
        // check can fail.
        wire[2] = 0;
        wire[3] = 0;
        let sum = pseudo_header_checksum(src, ALL_PIM_ROUTERS, proto::PIM, &wire);
        wire[2..4].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(
            PimMessage::decode(src, ALL_PIM_ROUTERS, &wire),
            Err(DecodeError::BadVersion(1))
        );
    }

    #[test]
    fn empty_join_prune() {
        let m = PimMessage::JoinPrune {
            upstream: a("fe80::b"),
            joins: vec![],
            prunes: vec![],
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn multiple_groups_preserved() {
        let m = PimMessage::JoinPrune {
            upstream: a("fe80::b"),
            joins: vec![(a("::5"), g(1)), (a("::6"), g(2))],
            prunes: vec![(a("::7"), g(1))],
        };
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn truncated_messages_rejected() {
        let m = PimMessage::Assert {
            group: g(1),
            source: a("::5"),
            metric_pref: 1,
            metric: 1,
        };
        let src = a("fe80::1");
        let wire = m.encode(src, ALL_PIM_ROUTERS);
        for cut in [2, 10, 30] {
            assert!(PimMessage::decode(src, ALL_PIM_ROUTERS, &wire[..cut]).is_err());
        }
    }
}
