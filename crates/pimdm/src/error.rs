//! Error helpers for PIM decoding (reuses the IPv6 crate's error type).

use mobicast_ipv6::error::DecodeError;

/// Bounds check mirroring `mobicast_ipv6::error::need` (which is
/// crate-private there).
pub(crate) fn need2(buf: &[u8], needed: usize, what: &'static str) -> Result<(), DecodeError> {
    if buf.len() < needed {
        Err(DecodeError::Truncated {
            what,
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}
