//! The PIM-DM router state machine (draft-ietf-pim-v2-dm-03).
//!
//! Sans-IO: the owning node feeds in data-packet notifications, PIM control
//! messages, MLD membership changes and clock deadlines; the machine returns
//! the interfaces to forward data onto plus control messages to transmit.
//!
//! Implemented behaviour (all of it exercised by the paper's experiments):
//! * **Flood-and-prune**: a new (S,G) floods to every interface with PIM
//!   neighbors or local members; leaf routers with no interested parties
//!   send Prunes; upstream routers wait `T_PruneDel` (default 3 s) for Join
//!   overrides before pruning a LAN.
//! * **(S,G) state expiry** after the data timeout (210 s) — the stale-tree
//!   lifetime the paper charges against mobile senders.
//! * **Graft / Graft-Ack** with retransmission, reattaching a pruned branch
//!   when a new member appears (mobile receiver arrives on a pruned link).
//! * **Assert** election of a single forwarder per LAN, triggered by data
//!   arriving on an outgoing interface — including the spurious asserts a
//!   mobile sender with a stale source address provokes (paper §4.3.1).
//! * **Hello / neighbor liveness**; a new neighbor on a pruned interface
//!   clears the prune so the newcomer receives data.

use crate::config::PimConfig;
use crate::message::{PimMessage, Sg};
use crate::table::{DownstreamPrune, OifState, SgDetail, SgTable, UpstreamState};
use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::arena::SharedInterner;
use mobicast_sim::{ShedPolicy, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;

pub use crate::table::IfIndex;

/// Result of a unicast RPF lookup toward a source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpfInfo {
    /// Interface toward the source.
    pub iif: IfIndex,
    /// Upstream PIM neighbor on `iif` (None when the source's link is
    /// directly attached — this router is the origin router).
    pub upstream: Option<Ipv6Addr>,
    /// Metric preference of the route (lower is better).
    pub metric_pref: u32,
    /// Route metric (lower is better).
    pub metric: u32,
}

/// Unicast routing oracle the PIM machine consults.
pub trait RpfLookup {
    fn rpf(&self, src: Ipv6Addr) -> Option<RpfInfo>;
}

impl<F: Fn(Ipv6Addr) -> Option<RpfInfo>> RpfLookup for F {
    fn rpf(&self, src: Ipv6Addr) -> Option<RpfInfo> {
        self(src)
    }
}

/// Where a control message should be sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PimDest {
    /// The ALL-PIM-ROUTERS link-scope group.
    AllRouters,
    /// Unicast to a specific neighbor.
    Unicast(Ipv6Addr),
}

/// A control transmission requested by the machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PimSend {
    pub iface: IfIndex,
    pub dest: PimDest,
    pub msg: PimMessage,
}

/// A state transition worth telling the operator about.
///
/// The machine is sans-IO, so it cannot trace directly; it appends notes to
/// an internal buffer and the owning node drains them with
/// [`PimRouter::take_notes`] after every call, turning them into typed
/// trace events and MIB counters. Notes carry no behavioural weight —
/// dropping them changes nothing about the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PimNote {
    /// An assert election on outgoing interface `iface` resolved at this
    /// router: won (we keep forwarding) or lost (we stop until the assert
    /// timer runs out).
    AssertResolved {
        sg: Sg,
        iface: IfIndex,
        won: bool,
        peer: Ipv6Addr,
    },
    /// An assert winner overheard on the incoming interface replaced the
    /// RPF upstream neighbor.
    AssertWinnerAdopted {
        sg: Sg,
        iface: IfIndex,
        winner: Ipv6Addr,
    },
    /// We pruned ourselves toward the source.
    UpstreamPruned { sg: Sg, until: SimTime },
    /// The upstream prune lapsed; flooding resumes.
    UpstreamResumed { sg: Sg },
    /// We sent a Graft upstream and await the ack.
    UpstreamGraftPending { sg: Sg },
    /// The pending Graft was acknowledged.
    GraftAcked { sg: Sg, from: Ipv6Addr },
    /// A downstream prune took effect on `iface`.
    OifPruned {
        sg: Sg,
        iface: IfIndex,
        until: SimTime,
    },
    /// Prune state on `iface` was cleared (join, graft, member, expiry).
    OifResumed { sg: Sg, iface: IfIndex },
    /// The (S,G) entry hit its data timeout and was deleted.
    EntryExpired { sg: Sg },
    /// A new (S,G) was refused because the entry table is at capacity
    /// under [`ShedPolicy::RejectNew`].
    SgShed { sg: Sg },
    /// The stalest (S,G) entry was evicted to admit a new one under
    /// [`ShedPolicy::EvictStalest`].
    SgEvicted { sg: Sg },
}

#[derive(Debug)]
struct IfaceState {
    my_addr: Ipv6Addr,
    /// PIM neighbor -> liveness deadline.
    neighbors: BTreeMap<Ipv6Addr, SimTime>,
    /// Local group members (from MLD).
    members: BTreeSet<GroupAddr>,
}

/// Externally visible snapshot of one (S,G) entry (test/metrics support).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SgSnapshot {
    pub iif: IfIndex,
    pub upstream: Option<Ipv6Addr>,
    /// Interfaces currently forwarding.
    pub forwarding: Vec<IfIndex>,
    /// Interfaces in pruned state.
    pub pruned: Vec<IfIndex>,
    pub upstream_pruned: bool,
    /// Data-timeout deadline: the entry is deleted when this passes without
    /// data (the oracle checks no entry outlives it).
    pub expires: SimTime,
}

/// The PIM-DM protocol instance of one router. (S,G) state lives in a
/// struct-of-arrays [`SgTable`] with interned source/group ids.
pub struct PimRouter {
    cfg: PimConfig,
    rng: SmallRng,
    ifaces: BTreeMap<IfIndex, IfaceState>,
    entries: SgTable,
    next_hello: Option<SimTime>,
    notes: Vec<PimNote>,
    /// (S,G) table capacity; `None` = unbounded (the default).
    budget: Option<u32>,
    shed_policy: ShedPolicy,
    /// Bumped whenever an interface's member or neighbor *set* changes —
    /// the non-table inputs of the forwarding predicate (see
    /// [`PimRouter::mutation_epoch`]).
    iface_epoch: u64,
}

impl PimRouter {
    pub fn new(cfg: PimConfig, rng: SmallRng) -> Self {
        Self::build(cfg, rng, SgTable::new())
    }

    /// A router whose (S,G) table draws address and group ids from
    /// world-level interners shared across every node.
    pub fn with_interners(
        cfg: PimConfig,
        rng: SmallRng,
        addrs: SharedInterner<Ipv6Addr>,
        groups: SharedInterner<GroupAddr>,
    ) -> Self {
        Self::build(cfg, rng, SgTable::with_interners(addrs, groups))
    }

    fn build(cfg: PimConfig, rng: SmallRng, entries: SgTable) -> Self {
        debug_assert!(cfg.validate().is_ok(), "invalid PIM config");
        PimRouter {
            cfg,
            rng,
            ifaces: BTreeMap::new(),
            entries,
            next_hello: None,
            notes: Vec::new(),
            budget: None,
            shed_policy: ShedPolicy::default(),
            iface_epoch: 0,
        }
    }

    /// Bound the (S,G) table at `capacity` entries, shedding per `policy`.
    /// `None` restores the unbounded default.
    pub fn set_budget(&mut self, capacity: Option<u32>, policy: ShedPolicy) {
        self.budget = capacity;
        self.shed_policy = policy;
    }

    /// Drain the state-transition notes accumulated since the last call.
    pub fn take_notes(&mut self) -> Vec<PimNote> {
        std::mem::take(&mut self.notes)
    }

    /// Register an interface before `start`. `my_addr` is this router's
    /// link-local address on the interface.
    pub fn add_iface(&mut self, iface: IfIndex, my_addr: Ipv6Addr) {
        let prev = self.ifaces.insert(
            iface,
            IfaceState {
                my_addr,
                neighbors: BTreeMap::new(),
                members: BTreeSet::new(),
            },
        );
        assert!(prev.is_none(), "iface {iface} registered twice");
    }

    pub fn my_addr(&self, iface: IfIndex) -> Option<Ipv6Addr> {
        self.ifaces.get(&iface).map(|i| i.my_addr)
    }

    /// Begin operating: send initial Hellos.
    pub fn start(&mut self, now: SimTime) -> Vec<PimSend> {
        self.next_hello = Some(now + self.cfg.hello_period);
        self.hellos()
    }

    fn hellos(&self) -> Vec<PimSend> {
        self.ifaces
            .keys()
            .map(|iface| PimSend {
                iface: *iface,
                dest: PimDest::AllRouters,
                msg: PimMessage::Hello {
                    holdtime: self.cfg.hello_holdtime,
                },
            })
            .collect()
    }

    /// Number of (S,G) entries held (the paper's router state-load
    /// metric) — an O(1) occupancy counter read.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// O(1) conservative lower bound on all (S,G) data timeouts.
    pub fn min_entry_expiry(&self) -> SimTime {
        self.entries.min_expires()
    }

    /// O(1) monotone epoch covering every input of the forwarding
    /// predicate: (S,G) table mutations plus interface member/neighbor
    /// set changes. If two reads return the same epoch, every per-entry
    /// fact derived in between (oif legality, forwarding sets) still
    /// holds — the guard that lets the oracle's 5 s poll skip the full
    /// table walk on quiescent routers.
    pub fn mutation_epoch(&self) -> u64 {
        self.entries.mutation_epoch() + self.iface_epoch
    }

    /// Deterministic byte audit of the (S,G) table (see
    /// [`SgTable::state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.entries.state_bytes()
    }

    /// Snapshot of an entry for assertions and metrics.
    pub fn snapshot(&self, s: Ipv6Addr, g: GroupAddr) -> Option<SgSnapshot> {
        let slot = self.entries.slot_of((s, g))?;
        let e = self.entries.detail(slot);
        let mut forwarding = Vec::new();
        let mut pruned = Vec::new();
        for (iface, oif) in &e.oifs {
            if self.oif_forwards(oif, *iface, g) {
                forwarding.push(*iface);
            }
            if matches!(oif.prune, DownstreamPrune::Pruned { .. }) {
                pruned.push(*iface);
            }
        }
        Some(SgSnapshot {
            iif: e.iif,
            upstream: e.upstream,
            forwarding,
            pruned,
            upstream_pruned: matches!(e.upstream_state, UpstreamState::Pruned { .. }),
            expires: self.entries.expires_at(slot),
        })
    }

    /// All (S,G) keys currently held.
    pub fn entry_keys(&self) -> Vec<Sg> {
        self.entries.keys()
    }

    pub fn neighbor_count(&self, iface: IfIndex) -> usize {
        self.ifaces
            .get(&iface)
            .map(|i| i.neighbors.len())
            .unwrap_or(0)
    }

    fn oif_forwards(&self, oif: &OifState, iface: IfIndex, g: GroupAddr) -> bool {
        if oif.assert_loser_until.is_some() {
            return false;
        }
        let Some(st) = self.ifaces.get(&iface) else {
            return false;
        };
        // Local members keep the interface in the oif list regardless of
        // prune state: a downstream router's Prune only withdraws *its*
        // interest, never that of directly attached listeners.
        if st.members.contains(&g) {
            return true;
        }
        !st.neighbors.is_empty() && !matches!(oif.prune, DownstreamPrune::Pruned { .. })
    }

    fn forward_list(&self, key: &Sg) -> Vec<IfIndex> {
        let Some(slot) = self.entries.slot_of(*key) else {
            return Vec::new();
        };
        self.entries
            .detail(slot)
            .oifs
            .iter()
            .filter(|(iface, oif)| self.oif_forwards(oif, *iface, key.1))
            .map(|(iface, _)| *iface)
            .collect()
    }

    fn ensure_entry(
        &mut self,
        s: Ipv6Addr,
        g: GroupAddr,
        now: SimTime,
        rpf: &dyn RpfLookup,
    ) -> Option<u32> {
        if let Some(slot) = self.entries.slot_of((s, g)) {
            return Some(slot);
        }
        let info = rpf.rpf(s)?;
        if let Some(cap) = self.budget {
            if self.entries.len() >= cap as usize {
                match self.shed_policy {
                    // Also taken when eviction cannot make room
                    // (capacity zero).
                    ShedPolicy::EvictStalest if let Some(victim) = self.entries.stalest() => {
                        self.entries.remove(victim);
                        self.notes.push(PimNote::SgEvicted { sg: victim });
                    }
                    _ => {
                        self.notes.push(PimNote::SgShed { sg: (s, g) });
                        return None;
                    }
                }
            }
        }
        let oifs = self
            .ifaces
            .keys()
            .filter(|i| **i != info.iif)
            .map(|i| (*i, OifState::default()))
            .collect();
        let detail = SgDetail {
            iif: info.iif,
            upstream: info.upstream,
            upstream_state: UpstreamState::Forwarding,
            oifs,
            override_join_at: None,
            last_prune_tx: None,
            iif_assert_winner: None,
        };
        match self
            .entries
            .insert((s, g), now + self.cfg.data_timeout, detail)
        {
            Ok(slot) => Some(slot),
            Err(_) => {
                // Id space exhausted: degrade to shedding the entry
                // instead of panicking.
                self.notes.push(PimNote::SgShed { sg: (s, g) });
                None
            }
        }
    }

    /// A multicast data packet for `(s, g)` arrived on `iface`. Returns the
    /// interfaces to forward it onto plus any triggered control traffic.
    pub fn on_data(
        &mut self,
        iface: IfIndex,
        s: Ipv6Addr,
        g: GroupAddr,
        now: SimTime,
        rpf: &dyn RpfLookup,
    ) -> (Vec<IfIndex>, Vec<PimSend>) {
        let mut sends = Vec::new();
        let Some(slot) = self.ensure_entry(s, g, now, rpf) else {
            return (Vec::new(), sends); // unroutable source
        };
        let key = (s, g);
        let e = self.entries.detail(slot);
        if iface != e.iif {
            // Wrong interface. If we actively forward onto it, there is a
            // parallel forwarder on that LAN: start the assert process.
            let forwards_here = e
                .oif(iface)
                .map(|oif| self.oif_forwards(oif, iface, g))
                .unwrap_or(false);
            if forwards_here {
                let rate_ok = match e.oif(iface).and_then(|oif| oif.last_assert_tx) {
                    Some(t) => now.saturating_since(t) >= self.cfg.control_rate_limit,
                    None => true,
                };
                if rate_ok {
                    if let Some(info) = rpf.rpf(s) {
                        sends.push(PimSend {
                            iface,
                            dest: PimDest::AllRouters,
                            msg: PimMessage::Assert {
                                group: g,
                                source: s,
                                metric_pref: info.metric_pref,
                                metric: info.metric,
                            },
                        });
                        if let Some(oif) = self.entries.detail_mut(slot).oif_mut(iface) {
                            oif.last_assert_tx = Some(now);
                        }
                    }
                }
            }
            return (Vec::new(), sends);
        }

        // Correct (RPF) interface: refresh and forward.
        self.entries.set_expires(slot, now + self.cfg.data_timeout);
        let fwd = self.forward_list(&key);
        if fwd.is_empty() {
            // No interested downstream interfaces: prune toward the source
            // (rate-limited; spec sends a Prune whenever data arrives on the
            // iif while the oif list is null).
            let e = self.entries.detail_mut(slot);
            if let Some(upstream) = e.upstream {
                let rate_ok = match e.last_prune_tx {
                    Some(t) => now.saturating_since(t) >= self.cfg.control_rate_limit,
                    None => true,
                };
                if rate_ok {
                    e.last_prune_tx = Some(now);
                    let until = now + self.cfg.prune_hold_time;
                    e.upstream_state = UpstreamState::Pruned { until };
                    let iif = e.iif;
                    sends.push(PimSend {
                        iface: iif,
                        dest: PimDest::AllRouters,
                        msg: PimMessage::JoinPrune {
                            upstream,
                            joins: vec![],
                            prunes: vec![key],
                        },
                    });
                    self.notes.push(PimNote::UpstreamPruned { sg: key, until });
                }
            }
        }
        (fwd, sends)
    }

    /// A PIM control message arrived on `iface` from `from`.
    pub fn on_message(
        &mut self,
        iface: IfIndex,
        from: Ipv6Addr,
        msg: &PimMessage,
        now: SimTime,
        rpf: &dyn RpfLookup,
    ) -> Vec<PimSend> {
        match msg {
            PimMessage::Hello { holdtime } => self.on_hello(iface, from, *holdtime, now),
            PimMessage::JoinPrune {
                upstream,
                joins,
                prunes,
            } => self.on_join_prune(iface, *upstream, joins, prunes, now, rpf),
            PimMessage::Graft { upstream, entries } => {
                self.on_graft(iface, from, *upstream, entries, now, rpf)
            }
            PimMessage::GraftAck { entries, .. } => self.on_graft_ack(from, entries),
            PimMessage::Assert {
                group,
                source,
                metric_pref,
                metric,
            } => self.on_assert(
                iface,
                from,
                *source,
                *group,
                *metric_pref,
                *metric,
                now,
                rpf,
            ),
        }
    }

    fn on_hello(
        &mut self,
        iface: IfIndex,
        from: Ipv6Addr,
        holdtime: SimDuration,
        now: SimTime,
    ) -> Vec<PimSend> {
        let Some(st) = self.ifaces.get_mut(&iface) else {
            return Vec::new();
        };
        let is_new = st.neighbors.insert(from, now + holdtime).is_none();
        if is_new {
            self.iface_epoch += 1;
            // A new PIM router appeared on this link: clear prune state on
            // the interface so it receives data (it has no prune state).
            for pos in 0..self.entries.len() {
                let slot = self.entries.slot_at(pos);
                let key = self.entries.key_of(slot);
                if let Some(oif) = self.entries.detail_mut(slot).oif_mut(iface) {
                    if matches!(
                        oif.prune,
                        DownstreamPrune::Pruned { .. } | DownstreamPrune::PrunePending { .. }
                    ) {
                        oif.prune = DownstreamPrune::NoInfo;
                        self.notes.push(PimNote::OifResumed { sg: key, iface });
                    }
                }
            }
        }
        Vec::new()
    }

    #[allow(clippy::too_many_arguments)]
    fn on_join_prune(
        &mut self,
        iface: IfIndex,
        upstream: Ipv6Addr,
        joins: &[Sg],
        prunes: &[Sg],
        now: SimTime,
        rpf: &dyn RpfLookup,
    ) -> Vec<PimSend> {
        let my_addr = match self.ifaces.get(&iface) {
            Some(st) => st.my_addr,
            None => return Vec::new(),
        };
        let for_me = upstream == my_addr;
        for key in prunes {
            if for_me {
                // A downstream router pruned this interface. Wait the
                // join-override window before stopping forwarding.
                if let Some(slot) = self.entries.slot_of(*key) {
                    if let Some(oif) = self.entries.detail_mut(slot).oif_mut(iface) {
                        if matches!(oif.prune, DownstreamPrune::NoInfo) {
                            oif.prune = DownstreamPrune::PrunePending {
                                fire_at: now + self.cfg.prune_delay,
                            };
                        }
                    }
                }
            } else {
                // Overheard another router pruning our upstream on our iif
                // LAN. If we still need the traffic, schedule a Join
                // override at a random point inside the override window.
                let still_needed = !self.forward_list(key).is_empty();
                let window = self.cfg.prune_delay.as_nanos().saturating_mul(2) / 3;
                let delay = if window == 0 {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_nanos(self.rng.random_range(0..window))
                };
                if let Some(slot) = self.entries.slot_of(*key) {
                    let e = self.entries.detail_mut(slot);
                    if e.iif == iface && e.upstream == Some(upstream) && still_needed {
                        let candidate = now + delay;
                        match e.override_join_at {
                            Some(t) if t <= candidate => {}
                            _ => e.override_join_at = Some(candidate),
                        }
                    }
                }
            }
        }
        for key in joins {
            if for_me {
                // Join cancels a pending (or held) prune on this interface.
                if !self.entries.contains(*key) {
                    let _ = self.ensure_entry(key.0, key.1, now, rpf);
                }
                if let Some(slot) = self.entries.slot_of(*key) {
                    if let Some(oif) = self.entries.detail_mut(slot).oif_mut(iface) {
                        if !matches!(oif.prune, DownstreamPrune::NoInfo) {
                            self.notes.push(PimNote::OifResumed { sg: *key, iface });
                        }
                        oif.prune = DownstreamPrune::NoInfo;
                    }
                }
            } else if let Some(slot) = self.entries.slot_of(*key) {
                // Another downstream router already overrode the prune:
                // suppress our own scheduled override join.
                let e = self.entries.detail_mut(slot);
                if e.iif == iface {
                    e.override_join_at = None;
                }
            }
        }
        Vec::new()
    }

    fn on_graft(
        &mut self,
        iface: IfIndex,
        from: Ipv6Addr,
        upstream: Ipv6Addr,
        grafted: &[Sg],
        now: SimTime,
        rpf: &dyn RpfLookup,
    ) -> Vec<PimSend> {
        let my_addr = match self.ifaces.get(&iface) {
            Some(st) => st.my_addr,
            None => return Vec::new(),
        };
        if upstream != my_addr {
            return Vec::new();
        }
        let mut sends = Vec::new();
        let mut acked = Vec::new();
        for key in grafted {
            if !self.entries.contains(*key) {
                let _ = self.ensure_entry(key.0, key.1, now, rpf);
            }
            let Some(slot) = self.entries.slot_of(*key) else {
                continue;
            };
            let e = self.entries.detail_mut(slot);
            if let Some(oif) = e.oif_mut(iface) {
                if !matches!(oif.prune, DownstreamPrune::NoInfo) {
                    self.notes.push(PimNote::OifResumed { sg: *key, iface });
                }
                oif.prune = DownstreamPrune::NoInfo;
            }
            acked.push(*key);
            // Propagate the graft upstream if we are pruned there.
            let e = self.entries.detail_mut(slot);
            if let (UpstreamState::Pruned { .. }, Some(up)) = (e.upstream_state, e.upstream) {
                e.upstream_state = UpstreamState::AckPending {
                    retry_at: now + self.cfg.graft_retry,
                };
                let iif = e.iif;
                sends.push(PimSend {
                    iface: iif,
                    dest: PimDest::Unicast(up),
                    msg: PimMessage::Graft {
                        upstream: up,
                        entries: vec![*key],
                    },
                });
                self.notes.push(PimNote::UpstreamGraftPending { sg: *key });
            }
        }
        if !acked.is_empty() {
            sends.push(PimSend {
                iface,
                dest: PimDest::Unicast(from),
                msg: PimMessage::GraftAck {
                    upstream: my_addr,
                    entries: acked,
                },
            });
        }
        sends
    }

    fn on_graft_ack(&mut self, from: Ipv6Addr, entries: &[Sg]) -> Vec<PimSend> {
        for key in entries {
            if let Some(slot) = self.entries.slot_of(*key) {
                let e = self.entries.detail_mut(slot);
                if matches!(e.upstream_state, UpstreamState::AckPending { .. })
                    && e.upstream == Some(from)
                {
                    e.upstream_state = UpstreamState::Forwarding;
                    self.notes.push(PimNote::GraftAcked { sg: *key, from });
                }
            }
        }
        Vec::new()
    }

    #[allow(clippy::too_many_arguments)]
    fn on_assert(
        &mut self,
        iface: IfIndex,
        from: Ipv6Addr,
        s: Ipv6Addr,
        g: GroupAddr,
        their_pref: u32,
        their_metric: u32,
        now: SimTime,
        rpf: &dyn RpfLookup,
    ) -> Vec<PimSend> {
        let mut sends = Vec::new();
        let Some(slot) = self.ensure_entry(s, g, now, rpf) else {
            return sends;
        };
        let key = (s, g);
        let my_info = rpf.rpf(s);
        let e = self.entries.detail_mut(slot);
        if iface == e.iif {
            // Assert heard on the incoming interface: the winner becomes the
            // RPF neighbor for subsequent Joins/Prunes/Grafts (paper §3.1:
            // "downstream PIM-DM routers listen to the ASSERT messages and
            // store the elected forwarder").
            let theirs = (their_pref, their_metric, from);
            let adopt = match e.iif_assert_winner {
                // Lower (pref, metric) wins; ties broken by *higher* address.
                Some((p, m, a)) => {
                    (their_pref, their_metric) < (p, m)
                        || ((their_pref, their_metric) == (p, m) && from > a)
                }
                None => true,
            };
            if adopt {
                e.iif_assert_winner = Some(theirs);
                e.upstream = Some(from);
                self.notes.push(PimNote::AssertWinnerAdopted {
                    sg: key,
                    iface,
                    winner: from,
                });
            }
            return sends;
        }
        // Assert heard on an outgoing interface: compare metrics.
        let Some(my) = my_info else {
            return sends;
        };
        let my_addr = self.ifaces[&iface].my_addr;
        let i_win = (my.metric_pref, my.metric) < (their_pref, their_metric)
            || ((my.metric_pref, my.metric) == (their_pref, their_metric) && my_addr > from);
        let Some(oif) = self.entries.detail_mut(slot).oif_mut(iface) else {
            return sends;
        };
        if i_win {
            oif.assert_loser_until = None;
            let rate_ok = match oif.last_assert_tx {
                Some(t) => now.saturating_since(t) >= self.cfg.control_rate_limit,
                None => true,
            };
            if rate_ok {
                oif.last_assert_tx = Some(now);
                sends.push(PimSend {
                    iface,
                    dest: PimDest::AllRouters,
                    msg: PimMessage::Assert {
                        group: g,
                        source: s,
                        metric_pref: my.metric_pref,
                        metric: my.metric,
                    },
                });
            }
        } else {
            oif.assert_loser_until = Some(now + self.cfg.assert_time);
        }
        self.notes.push(PimNote::AssertResolved {
            sg: key,
            iface,
            won: i_win,
            peer: from,
        });
        sends
    }

    /// MLD reported a membership change on `iface` for `group`.
    pub fn set_membership(
        &mut self,
        iface: IfIndex,
        group: GroupAddr,
        joined: bool,
        now: SimTime,
        _rpf: &dyn RpfLookup,
    ) -> Vec<PimSend> {
        let mut sends = Vec::new();
        {
            let Some(st) = self.ifaces.get_mut(&iface) else {
                return sends;
            };
            let changed = if joined {
                st.members.insert(group)
            } else {
                st.members.remove(&group)
            };
            if changed {
                self.iface_epoch += 1;
            }
        }
        let keys: Vec<Sg> = self
            .entries
            .keys()
            .into_iter()
            .filter(|(_, g)| *g == group)
            .collect();
        for key in keys {
            if joined {
                // Clear prune state on the member's interface and graft
                // upstream if we had pruned ourselves off the tree.
                let Some(slot) = self.entries.slot_of(key) else {
                    continue; // unreachable: key came from this table
                };
                let e = self.entries.detail_mut(slot);
                if e.iif == iface {
                    // Members on the incoming link are served by the
                    // upstream forwarder on that link, not by us.
                    continue;
                }
                if let Some(oif) = e.oif_mut(iface) {
                    if !matches!(oif.prune, DownstreamPrune::NoInfo) {
                        self.notes.push(PimNote::OifResumed { sg: key, iface });
                    }
                    oif.prune = DownstreamPrune::NoInfo;
                }
                let e = self.entries.detail_mut(slot);
                if let (UpstreamState::Pruned { .. }, Some(up)) = (e.upstream_state, e.upstream) {
                    e.upstream_state = UpstreamState::AckPending {
                        retry_at: now + self.cfg.graft_retry,
                    };
                    let iif = e.iif;
                    sends.push(PimSend {
                        iface: iif,
                        dest: PimDest::Unicast(up),
                        msg: PimMessage::Graft {
                            upstream: up,
                            entries: vec![key],
                        },
                    });
                    self.notes.push(PimNote::UpstreamGraftPending { sg: key });
                }
            } else {
                // Member left. If nothing downstream needs traffic any more,
                // prune immediately (paper §3.2: MLD "notifies the multicast
                // routing protocol", which stops forwarding).
                let now_empty = self.forward_list(&key).is_empty();
                let Some(slot) = self.entries.slot_of(key) else {
                    continue; // unreachable: key came from this table
                };
                let e = self.entries.detail_mut(slot);
                if now_empty && matches!(e.upstream_state, UpstreamState::Forwarding) {
                    if let Some(up) = e.upstream {
                        let until = now + self.cfg.prune_hold_time;
                        e.upstream_state = UpstreamState::Pruned { until };
                        e.last_prune_tx = Some(now);
                        let iif = e.iif;
                        sends.push(PimSend {
                            iface: iif,
                            dest: PimDest::AllRouters,
                            msg: PimMessage::JoinPrune {
                                upstream: up,
                                joins: vec![],
                                prunes: vec![key],
                            },
                        });
                        self.notes.push(PimNote::UpstreamPruned { sg: key, until });
                    }
                }
            }
        }
        sends
    }

    /// Earliest pending protocol deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                min = Some(match min {
                    Some(m) => m.min(t),
                    None => t,
                });
            }
        };
        consider(self.next_hello);
        for st in self.ifaces.values() {
            for dl in st.neighbors.values() {
                consider(Some(*dl));
            }
        }
        for pos in 0..self.entries.len() {
            let slot = self.entries.slot_at(pos);
            consider(Some(self.entries.expires_at(slot)));
            let e = self.entries.detail(slot);
            consider(e.override_join_at);
            match e.upstream_state {
                UpstreamState::Pruned { until } => consider(Some(until)),
                UpstreamState::AckPending { retry_at } => consider(Some(retry_at)),
                UpstreamState::Forwarding => {}
            }
            for (_, oif) in &e.oifs {
                match oif.prune {
                    DownstreamPrune::PrunePending { fire_at } => consider(Some(fire_at)),
                    DownstreamPrune::Pruned { until } => consider(Some(until)),
                    DownstreamPrune::NoInfo => {}
                }
                consider(oif.assert_loser_until);
            }
        }
        min
    }

    /// Fire all deadlines due at `now`.
    pub fn on_deadline(&mut self, now: SimTime, _rpf: &dyn RpfLookup) -> Vec<PimSend> {
        let mut sends = Vec::new();

        if matches!(self.next_hello, Some(t) if t <= now) {
            sends.extend(self.hellos());
            self.next_hello = Some(now + self.cfg.hello_period);
        }

        // Neighbor expiry.
        for st in self.ifaces.values_mut() {
            let before = st.neighbors.len();
            st.neighbors.retain(|_, dl| *dl > now);
            if st.neighbors.len() != before {
                self.iface_epoch += 1;
            }
        }

        // Entry timers.
        let mut expired = Vec::new();
        for pos in 0..self.entries.len() {
            let slot = self.entries.slot_at(pos);
            let key = self.entries.key_of(slot);
            if self.entries.expires_at(slot) <= now {
                expired.push(key);
                continue;
            }
            let e = self.entries.detail_mut(slot);
            if matches!(e.override_join_at, Some(t) if t <= now) {
                e.override_join_at = None;
                if let Some(up) = e.upstream {
                    let iif = e.iif;
                    sends.push(PimSend {
                        iface: iif,
                        dest: PimDest::AllRouters,
                        msg: PimMessage::JoinPrune {
                            upstream: up,
                            joins: vec![key],
                            prunes: vec![],
                        },
                    });
                }
            }
            match e.upstream_state {
                UpstreamState::Pruned { until } if until <= now => {
                    // Upstream prune expired; flooding resumes.
                    e.upstream_state = UpstreamState::Forwarding;
                    self.notes.push(PimNote::UpstreamResumed { sg: key });
                }
                UpstreamState::AckPending { retry_at } if retry_at <= now => {
                    if let Some(up) = e.upstream {
                        let iif = e.iif;
                        sends.push(PimSend {
                            iface: iif,
                            dest: PimDest::Unicast(up),
                            msg: PimMessage::Graft {
                                upstream: up,
                                entries: vec![key],
                            },
                        });
                    }
                    e.upstream_state = UpstreamState::AckPending {
                        retry_at: now + self.cfg.graft_retry,
                    };
                }
                _ => {}
            }
            let e = self.entries.detail_mut(slot);
            for (iface, oif) in e.oifs.iter_mut() {
                match oif.prune {
                    DownstreamPrune::PrunePending { fire_at } if fire_at <= now => {
                        let until = now + self.cfg.prune_hold_time;
                        oif.prune = DownstreamPrune::Pruned { until };
                        self.notes.push(PimNote::OifPruned {
                            sg: key,
                            iface: *iface,
                            until,
                        });
                    }
                    DownstreamPrune::Pruned { until } if until <= now => {
                        oif.prune = DownstreamPrune::NoInfo;
                        self.notes.push(PimNote::OifResumed {
                            sg: key,
                            iface: *iface,
                        });
                    }
                    _ => {}
                }
                if matches!(oif.assert_loser_until, Some(t) if t <= now) {
                    oif.assert_loser_until = None;
                }
            }
        }
        for key in expired {
            // The paper's stale-state lifetime: "only after expiration of
            // the (S,G) timer, an (S,G) entry will be deleted" (210 s).
            self.entries.remove(key);
            self.notes.push(PimNote::EntryExpired { sg: key });
        }
        self.entries.refresh_min_expires();
        sends
    }
}
