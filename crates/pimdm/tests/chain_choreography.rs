//! Multi-router PIM-DM choreography: a chain of three routers
//! (L0 - R0 - L1 - R1 - L2 - R2 - L3) driven message-by-message through a
//! tiny in-test relay — flood-and-prune propagation, graft chains, and
//! re-flood after prune expiry, without any simulator.

// Test helpers may unwrap freely (the lint wall targets non-test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mobicast_ipv6::addr::GroupAddr;
use mobicast_pimdm::{PimConfig, PimDest, PimMessage, PimRouter, PimSend, RpfInfo};
use mobicast_sim::{RngFactory, SimDuration, SimTime};
use std::net::Ipv6Addr;

fn a(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}
fn g(i: u16) -> GroupAddr {
    GroupAddr::test_group(i)
}
fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

const SRC: &str = "2001:db8:1::5"; // source on L0

/// Chain harness: router i has iface 0 on link i (toward the source) and
/// iface 1 on link i+1. Link-local address of router i, iface k is
/// fe80::(10*(i+1)+k).
struct Chain {
    routers: Vec<PimRouter>,
    /// Per-router membership is handled through set_membership directly.
    now: SimTime,
}

fn lladdr(router: usize, iface: u8) -> Ipv6Addr {
    a(&format!("fe80::{:x}", 10 * (router + 1) + iface as usize))
}

/// RPF toward SRC for router `i`: via iface 0; upstream neighbor is
/// router i-1's iface-1 address (None for router 0: source link attached).
fn rpf_for(i: usize) -> impl Fn(Ipv6Addr) -> Option<RpfInfo> {
    move |src: Ipv6Addr| {
        (src == a(SRC)).then(|| RpfInfo {
            iif: 0,
            upstream: (i > 0).then(|| lladdr(i - 1, 1)),
            metric_pref: 101,
            metric: i as u32 + 1,
        })
    }
}

impl Chain {
    fn new(n: usize, cfg: PimConfig) -> Chain {
        let rng = RngFactory::new(11);
        let mut routers: Vec<PimRouter> = (0..n)
            .map(|i| {
                let mut r = PimRouter::new(cfg, rng.indexed_stream("pim", i as u64));
                r.add_iface(0, lladdr(i, 0));
                r.add_iface(1, lladdr(i, 1));
                r
            })
            .collect();
        // Bring up neighbor relationships: router i sees router i+1 on its
        // iface 1 (link i+1), and router i+1 sees router i on its iface 0.
        let now = t(0);
        for r in routers.iter_mut().take(n) {
            let mut sends = Vec::new();
            sends.extend(r.start(now));
            drop(sends); // hellos relayed below
        }
        let mut chain = Chain { routers, now };
        // Exchange hellos manually.
        for i in 0..n {
            let hello = PimMessage::Hello {
                holdtime: SimDuration::from_secs(105),
            };
            if i > 0 {
                let from = lladdr(i, 0);
                chain.routers[i - 1].on_message(1, from, &hello, now, &rpf_for(i - 1));
            }
            if i + 1 < n {
                let from = lladdr(i, 1);
                chain.routers[i + 1].on_message(0, from, &hello, now, &rpf_for(i + 1));
            }
        }
        chain
    }

    /// Relay a control send from router `i` to its neighbor(s).
    fn relay(&mut self, i: usize, send: PimSend) {
        let now = self.now;
        let from = lladdr(i, send.iface);
        // iface 0 of router i is link i, shared with router i-1's iface 1.
        // iface 1 of router i is link i+1, shared with router i+1's iface 0.
        let neighbor = match send.iface {
            0 if i > 0 => Some((i - 1, 1u8)),
            1 if i + 1 < self.routers.len() => Some((i + 1, 0u8)),
            _ => None,
        };
        let Some((j, jiface)) = neighbor else { return };
        if let PimDest::Unicast(dst) = send.dest {
            if dst != lladdr(j, jiface) {
                return; // addressed to someone else (not on this chain)
            }
        }
        let outs = self.routers[j].on_message(jiface, from, &send.msg, now, &rpf_for(j));
        for o in outs {
            self.relay(j, o);
        }
    }

    /// Source emits one data packet: walk it down the chain, collecting
    /// which links carried it. Returns the set of link indices (1-based:
    /// link k is between router k-1 and router k; link 0 is the source
    /// link).
    fn send_data(&mut self, group: GroupAddr) -> Vec<usize> {
        let now = self.now;
        let mut touched = vec![0usize];
        // Router 0 receives on iface 0 (from the source link).
        let mut frontier = vec![(0usize, 0u8)];
        while let Some((i, iface)) = frontier.pop() {
            let (fwd, sends) = self.routers[i].on_data(iface, a(SRC), group, now, &rpf_for(i));
            for s in sends {
                self.relay(i, s);
            }
            for out in fwd {
                if out == 1 && i + 1 < self.routers.len() {
                    touched.push(i + 1);
                    frontier.push((i + 1, 0u8));
                } else if out == 1 {
                    touched.push(i + 1); // leaf link at the end of the chain
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    fn advance(&mut self, to: SimTime) {
        // Fire deadlines in time order across routers.
        loop {
            let next = self.routers.iter().filter_map(|r| r.next_deadline()).min();
            let Some(when) = next else { break };
            if when > to {
                break;
            }
            self.now = when;
            for i in 0..self.routers.len() {
                if self.routers[i].next_deadline().is_some_and(|d| d <= when) {
                    let sends = self.routers[i].on_deadline(when, &rpf_for(i));
                    for s in sends {
                        self.relay(i, s);
                    }
                }
            }
        }
        self.now = to;
    }

    fn join(&mut self, router: usize, group: GroupAddr) {
        let now = self.now;
        let sends = self.routers[router].set_membership(1, group, true, now, &rpf_for(router));
        for s in sends {
            self.relay(router, s);
        }
    }

    fn leave(&mut self, router: usize, group: GroupAddr) {
        let now = self.now;
        let sends = self.routers[router].set_membership(1, group, false, now, &rpf_for(router));
        for s in sends {
            self.relay(router, s);
        }
    }
}

#[test]
fn flood_then_prune_shrinks_to_member_path() {
    let mut c = Chain::new(3, PimConfig::default());
    // Member behind router 0 (on link 1).
    c.join(0, g(1));
    // First packet floods to every link with a router or member on it
    // (link 3 is an empty leaf: dense mode never floods it).
    let touched = c.send_data(g(1));
    assert_eq!(touched, vec![0, 1, 2], "initial flood");
    // Router 2 prunes link 2; router 1 then prunes link 1... but link 1
    // hosts the member, so router 0 must keep forwarding there. Prunes
    // cascade lazily (one hop per data packet), so drive a few packets.
    c.advance(t(10));
    let _ = c.send_data(g(1));
    c.advance(t(20));
    let touched = c.send_data(g(1));
    assert_eq!(
        touched,
        vec![0, 1],
        "pruned back to the member's link; member overrides router 1's prune"
    );
}

#[test]
fn graft_chain_reattaches_distant_member() {
    let mut c = Chain::new(3, PimConfig::default());
    // Nobody interested: everything prunes back to the source link
    // (lazily, one hop per packet).
    let _ = c.send_data(g(1));
    c.advance(t(10));
    let _ = c.send_data(g(1));
    c.advance(t(20));
    let touched = c.send_data(g(1));
    assert_eq!(touched, vec![0], "fully pruned");
    // Now a member appears at the far end: grafts must propagate
    // router 2 -> router 1 -> router 0 and re-open the whole chain.
    c.advance(t(30));
    c.join(2, g(1));
    c.advance(t(31));
    let touched = c.send_data(g(1));
    assert_eq!(touched, vec![0, 1, 2, 3], "graft chain re-opened the path");
}

#[test]
fn leave_prunes_back() {
    let mut c = Chain::new(3, PimConfig::default());
    c.join(2, g(1));
    let _ = c.send_data(g(1));
    c.advance(t(10));
    assert_eq!(c.send_data(g(1)), vec![0, 1, 2, 3]);
    // The member leaves: prunes cascade upstream over the next packets.
    c.advance(t(20));
    c.leave(2, g(1));
    c.advance(t(30));
    let _ = c.send_data(g(1));
    c.advance(t(40));
    let touched = c.send_data(g(1));
    assert_eq!(touched, vec![0], "pruned all the way back to the source");
}

#[test]
fn reflood_after_prune_hold_expires() {
    let cfg = PimConfig {
        prune_hold_time: SimDuration::from_secs(30), // shortened for the test
        ..PimConfig::default()
    };
    let mut c = Chain::new(2, cfg);
    let _ = c.send_data(g(1));
    c.advance(t(10));
    assert_eq!(c.send_data(g(1)), vec![0], "pruned");
    // Keep the (S,G) entry alive with data, then pass the hold time.
    c.advance(t(25));
    let _ = c.send_data(g(1));
    c.advance(t(45));
    let touched = c.send_data(g(1));
    assert!(
        touched.contains(&1),
        "dense-mode re-flood after prune hold: {touched:?}"
    );
}

#[test]
fn state_expires_everywhere_after_data_timeout() {
    let mut c = Chain::new(3, PimConfig::default());
    c.join(2, g(1));
    let _ = c.send_data(g(1));
    assert!(c.routers.iter().all(|r| r.entry_count() == 1));
    // Silence for > 210 s: every router forgets the (S,G).
    c.advance(t(250));
    assert!(
        c.routers.iter().all(|r| r.entry_count() == 0),
        "stale source state deleted after the 210 s data timeout"
    );
}
