//! Link-level MLD choreography: several host and router state machines
//! driven against each other through a tiny in-test "link" that relays
//! every output message to every other party — the protocol dance of
//! RFC 2710 without any simulator.

// Test helpers may unwrap freely (the lint wall targets non-test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mobicast_ipv6::addr::GroupAddr;
use mobicast_mld::{HostOutput, MldConfig, MldHostPort, MldMessage, MldRouterPort, RouterOutput};
use mobicast_sim::{RngFactory, SimDuration, SimTime};
use std::net::Ipv6Addr;

fn a(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

fn g(i: u16) -> GroupAddr {
    GroupAddr::test_group(i)
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// A shared link with routers and hosts attached; relays messages and
/// drives deadlines in timestamp order.
struct Lan {
    routers: Vec<(Ipv6Addr, MldRouterPort)>,
    hosts: Vec<(Ipv6Addr, MldHostPort)>,
    /// Membership notifications from every router, in order.
    log: Vec<(Ipv6Addr, String)>,
}

impl Lan {
    fn new(cfg: MldConfig, router_addrs: &[&str], host_addrs: &[&str], seed: u64) -> Lan {
        let rng = RngFactory::new(seed);
        Lan {
            routers: router_addrs
                .iter()
                .map(|r| (a(r), MldRouterPort::new(cfg, a(r))))
                .collect(),
            hosts: host_addrs
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    (
                        a(h),
                        MldHostPort::new(cfg, rng.indexed_stream("host", i as u64)),
                    )
                })
                .collect(),
            log: Vec::new(),
        }
    }

    fn start(&mut self, now: SimTime) {
        let mut outs = Vec::new();
        for (addr, r) in self.routers.iter_mut() {
            for o in r.start(now) {
                outs.push((*addr, o));
            }
        }
        for (from, o) in outs {
            self.apply_router_output(from, o, now);
        }
    }

    fn apply_router_output(&mut self, from: Ipv6Addr, o: RouterOutput, now: SimTime) {
        match o {
            RouterOutput::Send(msg) => self.broadcast(from, msg, now),
            RouterOutput::ListenerAdded(gr) => {
                self.log.push((from, format!("add {gr}")));
            }
            RouterOutput::ListenerRemoved(gr) => {
                self.log.push((from, format!("del {gr}")));
            }
        }
    }

    /// Deliver `msg` from `from` to every *other* party on the link.
    fn broadcast(&mut self, from: Ipv6Addr, msg: MldMessage, now: SimTime) {
        let mut router_outs = Vec::new();
        for (addr, r) in self.routers.iter_mut() {
            if *addr == from {
                continue;
            }
            for o in r.on_message(from, &msg, now) {
                router_outs.push((*addr, o));
            }
        }
        let mut host_outs = Vec::new();
        for (addr, h) in self.hosts.iter_mut() {
            if *addr == from {
                continue;
            }
            match msg {
                MldMessage::Query {
                    max_response_delay,
                    group,
                } => {
                    h.on_query(group, max_response_delay, now);
                }
                MldMessage::Report { group } => h.on_report_heard(group),
                MldMessage::Done { .. } => {}
            }
            let _ = addr;
        }
        for (fr, o) in router_outs {
            self.apply_router_output(fr, o, now);
        }
        for (fr, o) in host_outs.drain(..) {
            let (f, msg2): (Ipv6Addr, MldMessage) = (fr, o);
            self.broadcast(f, msg2, now);
        }
    }

    fn host_join(&mut self, host: usize, gr: GroupAddr, now: SimTime) {
        let (addr, port) = &mut self.hosts[host];
        let from = *addr;
        let outs: Vec<MldMessage> = port
            .join(gr, now)
            .into_iter()
            .map(|HostOutput::Send(m)| m)
            .collect();
        for m in outs {
            self.broadcast(from, m, now);
        }
    }

    fn host_leave(&mut self, host: usize, gr: GroupAddr, now: SimTime) {
        let (addr, port) = &mut self.hosts[host];
        let from = *addr;
        let outs: Vec<MldMessage> = port
            .leave(gr, now)
            .into_iter()
            .map(|HostOutput::Send(m)| m)
            .collect();
        for m in outs {
            self.broadcast(from, m, now);
        }
    }

    /// Advance virtual time to `until`, firing all deadlines in order.
    fn run_until(&mut self, until: SimTime) {
        loop {
            let next_router = self
                .routers
                .iter()
                .filter_map(|(_, r)| r.next_deadline())
                .min();
            let next_host = self
                .hosts
                .iter()
                .filter_map(|(_, h)| h.next_deadline())
                .min();
            let next = [next_router, next_host].into_iter().flatten().min();
            let Some(now) = next else { break };
            if now > until {
                break;
            }
            let mut router_outs = Vec::new();
            for (addr, r) in self.routers.iter_mut() {
                if r.next_deadline().is_some_and(|d| d <= now) {
                    for o in r.on_deadline(now) {
                        router_outs.push((*addr, o));
                    }
                }
            }
            let mut host_msgs = Vec::new();
            for (addr, h) in self.hosts.iter_mut() {
                if h.next_deadline().is_some_and(|d| d <= now) {
                    for HostOutput::Send(m) in h.on_deadline(now) {
                        host_msgs.push((*addr, m));
                    }
                }
            }
            for (f, o) in router_outs {
                self.apply_router_output(f, o, now);
            }
            for (f, m) in host_msgs {
                self.broadcast(f, m, now);
            }
        }
    }

    fn querier_count(&self) -> usize {
        self.routers.iter().filter(|(_, r)| r.is_querier()).count()
    }

    fn all_know_listener(&self, gr: GroupAddr) -> bool {
        self.routers.iter().all(|(_, r)| r.has_listener(gr))
    }
}

#[test]
fn querier_election_converges_to_lowest_address() {
    let mut lan = Lan::new(
        MldConfig::default(),
        &["fe80::3", "fe80::1", "fe80::2"],
        &[],
        1,
    );
    lan.start(t(0));
    // After startup queries cross, only fe80::1 remains querier.
    assert_eq!(lan.querier_count(), 1);
    assert!(lan
        .routers
        .iter()
        .any(|(a_, r)| r.is_querier() && *a_ == a("fe80::1")));
}

#[test]
fn join_reaches_every_router_on_the_lan() {
    let mut lan = Lan::new(
        MldConfig::default(),
        &["fe80::1", "fe80::2"],
        &["fe80::aa"],
        2,
    );
    lan.start(t(0));
    lan.host_join(0, g(1), t(5));
    assert!(lan.all_know_listener(g(1)), "both routers saw the report");
}

#[test]
fn report_suppression_between_hosts() {
    // Two hosts join the same group; queries must provoke at most one
    // report per cycle (the second host suppresses).
    let mut lan = Lan::new(
        MldConfig::default(),
        &["fe80::1"],
        &["fe80::aa", "fe80::bb"],
        3,
    );
    lan.start(t(0));
    lan.host_join(0, g(1), t(1));
    lan.host_join(1, g(1), t(1));
    // Run through several query cycles; membership must stay alive the
    // whole time purely via query-response.
    lan.run_until(t(800));
    assert!(lan.all_know_listener(g(1)));
}

#[test]
fn membership_survives_on_query_refresh_only() {
    let mut lan = Lan::new(MldConfig::default(), &["fe80::1"], &["fe80::aa"], 4);
    lan.start(t(0));
    lan.host_join(0, g(1), t(1));
    lan.run_until(t(1000));
    assert!(
        lan.all_know_listener(g(1)),
        "reports answered queries for 1000 s; membership never expired"
    );
}

#[test]
fn leave_with_done_removes_membership_fast() {
    let mut lan = Lan::new(MldConfig::default(), &["fe80::1"], &["fe80::aa"], 5);
    lan.start(t(0));
    lan.host_join(0, g(1), t(1));
    lan.host_leave(0, g(1), t(50));
    // Last-listener queries go unanswered; removal within 2 s (2 × LLQI).
    lan.run_until(t(60));
    assert!(!lan.all_know_listener(g(1)));
    let removed = lan.log.iter().any(|(_, e)| e == &format!("del {}", g(1)));
    assert!(removed, "log: {:?}", lan.log);
}

#[test]
fn done_with_remaining_listener_keeps_membership() {
    let mut lan = Lan::new(
        MldConfig::default(),
        &["fe80::1"],
        &["fe80::aa", "fe80::bb"],
        6,
    );
    lan.start(t(0));
    lan.host_join(0, g(1), t(1));
    lan.host_join(1, g(1), t(2)); // suppressed or not, both joined
    lan.host_leave(0, g(1), t(50));
    lan.run_until(t(70));
    assert!(
        lan.all_know_listener(g(1)),
        "the second listener answered the specific query"
    );
}

#[test]
fn silent_departure_expires_after_mli() {
    // The mobile-host case: the host vanishes without Done.
    let mut lan = Lan::new(MldConfig::default(), &["fe80::1"], &["fe80::aa"], 7);
    lan.start(t(0));
    lan.host_join(0, g(1), t(1));
    // Host disappears at t=30: drop its state so it stops answering.
    lan.hosts[0].1.depart_link();
    lan.run_until(t(30 + 400));
    assert!(!lan.all_know_listener(g(1)), "expired after T_MLI");
    // And the removal happened no earlier than ~MLI after the last report.
    let removed = lan.log.iter().any(|(_, e)| e.starts_with("del"));
    assert!(removed);
}

#[test]
fn tuned_timers_expire_silent_listener_faster() {
    let cfg = MldConfig::with_query_interval(SimDuration::from_secs(15));
    let mut fast = Lan::new(cfg, &["fe80::1"], &["fe80::aa"], 8);
    fast.start(t(0));
    fast.host_join(0, g(1), t(1));
    fast.hosts[0].1.depart_link();
    fast.run_until(t(100));
    assert!(
        !fast.all_know_listener(g(1)),
        "MLI = 2*15+10 = 40 s: expired well before t=100"
    );
}
