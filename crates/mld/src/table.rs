//! Struct-of-arrays listener table backing [`MldRouterPort`].
//!
//! Group memberships live in parallel columns (interned group id, expiry,
//! specific-query retransmission state) indexed by a reusable slot, with
//! a separate `order` index keeping slots sorted by group address so
//! iteration and eviction match the old `BTreeMap` byte-for-byte. The
//! columns make expiry scans and the 5 s gauge sampler linear sweeps over
//! dense memory instead of pointer chases through boxed map nodes.
//!
//! Group addresses are interned through a [`SharedInterner`] — one
//! world-level id space shared by every port — so each membership costs a
//! 4-byte handle instead of a 16-byte address per row.
//!
//! [`MldRouterPort`]: crate::router::MldRouterPort

use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::arena::{InternExhausted, InternId, SharedInterner};
use mobicast_sim::SimTime;

/// Specific-query retransmission state for one membership:
/// `(remaining count, next send time)`, mirroring the legacy
/// `Option<(u32, SimTime)>` field.
pub type Rexmt = Option<(u32, SimTime)>;

/// SoA membership table for one router interface.
#[derive(Debug)]
pub struct ListenerTable {
    interner: SharedInterner<GroupAddr>,
    /// Columns, indexed by slot. A slot is live iff `live[slot]`.
    gids: Vec<InternId>,
    expires: Vec<SimTime>,
    /// Remaining specific-query retransmissions; 0 = none pending.
    rexmt_left: Vec<u32>,
    rexmt_at: Vec<SimTime>,
    live: Vec<bool>,
    /// Retired slots available for reuse (LIFO).
    free: Vec<u32>,
    /// Live slots sorted by group address — the iteration order the old
    /// `BTreeMap` gave for free, preserved so traces stay byte-identical.
    order: Vec<u32>,
    /// Conservative lower bound on every live expiry (`SimTime::MAX` when
    /// empty): removals leave it stale-low, which is safe for its one
    /// consumer, the O(1) "anything possibly overdue?" oracle guard.
    min_expires: SimTime,
}

impl ListenerTable {
    /// A table with its own private group-id space (unit tests, hosts).
    pub fn new() -> Self {
        Self::with_interner(mobicast_sim::shared_interner())
    }

    /// A table drawing group ids from a world-level interner.
    pub fn with_interner(interner: SharedInterner<GroupAddr>) -> Self {
        ListenerTable {
            interner,
            gids: Vec::new(),
            expires: Vec::new(),
            rexmt_left: Vec::new(),
            rexmt_at: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            min_expires: SimTime::MAX,
        }
    }

    fn group_of(&self, slot: u32) -> GroupAddr {
        let gid = self.gids[slot as usize];
        *self
            .interner
            .borrow()
            .resolve(gid)
            .unwrap_or_else(|| unreachable!("live slot holds an interned gid"))
    }

    /// Binary search `order` for `g`: `Ok(pos)` if present, `Err(pos)` at
    /// the insertion point. Comparisons resolve through the interner
    /// (an O(1) vector index each).
    fn locate(&self, g: GroupAddr) -> Result<usize, usize> {
        self.order
            .binary_search_by(|&slot| self.group_of(slot).cmp(&g))
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn contains(&self, g: GroupAddr) -> bool {
        self.locate(g).is_ok()
    }

    /// The slot holding `g`'s membership, if any.
    pub fn slot_of(&self, g: GroupAddr) -> Option<u32> {
        self.locate(g).ok().map(|pos| self.order[pos])
    }

    /// Insert a membership for `g` (caller ensures it is absent).
    pub fn insert(&mut self, g: GroupAddr, expires: SimTime) -> Result<u32, InternExhausted> {
        let gid = self.interner.borrow_mut().intern(g)?;
        let slot = match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.gids[i] = gid;
                self.expires[i] = expires;
                self.rexmt_left[i] = 0;
                self.live[i] = true;
                slot
            }
            None => {
                let slot = self.gids.len() as u32;
                self.gids.push(gid);
                self.expires.push(expires);
                self.rexmt_left.push(0);
                self.rexmt_at.push(SimTime::ZERO);
                self.live.push(true);
                slot
            }
        };
        let pos = match self.locate(g) {
            Ok(_) => unreachable!("insert of a present group"),
            Err(pos) => pos,
        };
        self.order.insert(pos, slot);
        self.min_expires = self.min_expires.min(expires);
        Ok(slot)
    }

    /// Remove `g`'s membership. Returns false if absent.
    pub fn remove(&mut self, g: GroupAddr) -> bool {
        let Ok(pos) = self.locate(g) else {
            return false;
        };
        let slot = self.order.remove(pos);
        self.live[slot as usize] = false;
        self.free.push(slot);
        if self.order.is_empty() {
            self.min_expires = SimTime::MAX;
        }
        true
    }

    pub fn expires_at(&self, slot: u32) -> SimTime {
        self.expires[slot as usize]
    }

    pub fn set_expires(&mut self, slot: u32, t: SimTime) {
        self.expires[slot as usize] = t;
        self.min_expires = self.min_expires.min(t);
    }

    pub fn rexmt(&self, slot: u32) -> Rexmt {
        let i = slot as usize;
        if self.rexmt_left[i] > 0 {
            Some((self.rexmt_left[i], self.rexmt_at[i]))
        } else {
            None
        }
    }

    pub fn set_rexmt(&mut self, slot: u32, r: Rexmt) {
        let i = slot as usize;
        match r {
            Some((left, at)) => {
                self.rexmt_left[i] = left;
                self.rexmt_at[i] = at;
            }
            None => self.rexmt_left[i] = 0,
        }
    }

    /// Live groups in address order.
    pub fn groups(&self) -> impl Iterator<Item = GroupAddr> + '_ {
        self.order.iter().map(|&slot| self.group_of(slot))
    }

    /// Slot at position `pos` of the address-ordered index.
    pub fn slot_at(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    pub fn group_at_slot(&self, slot: u32) -> GroupAddr {
        self.group_of(slot)
    }

    /// The eviction victim: minimum `(expires, group)` — same key the
    /// legacy map's `min_by_key` used, computed by a linear column sweep.
    pub fn stalest(&self) -> Option<GroupAddr> {
        self.order
            .iter()
            .map(|&slot| (self.expires[slot as usize], self.group_of(slot)))
            .min()
            .map(|(_, g)| g)
    }

    /// Earliest pending per-group deadline (expiry or retransmission):
    /// one linear sweep over the columns.
    pub fn min_deadline(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        for &slot in &self.order {
            let i = slot as usize;
            let mut t = self.expires[i];
            if self.rexmt_left[i] > 0 {
                t = t.min(self.rexmt_at[i]);
            }
            min = Some(match min {
                Some(m) => m.min(t),
                None => t,
            });
        }
        min
    }

    /// O(1) conservative lower bound on all live expiries. If this is in
    /// the future, no membership can be overdue — the guard that keeps
    /// oracle polls flat as listener counts grow.
    pub fn min_expires(&self) -> SimTime {
        self.min_expires
    }

    /// Recompute the exact expiry watermark (called from expiry sweeps,
    /// which walk the columns anyway).
    pub fn refresh_min_expires(&mut self) {
        self.min_expires = self
            .order
            .iter()
            .map(|&slot| self.expires[slot as usize])
            .min()
            .unwrap_or(SimTime::MAX);
    }

    /// Deterministic byte audit of the table, per the documented model:
    /// every allocated slot costs its column footprint
    /// (gid 4 + expires 8 + rexmt 12 + live 1 = 25 bytes), the sorted
    /// index and free list cost 4 bytes per entry. No allocator
    /// introspection — the same numbers on every platform.
    pub fn state_bytes(&self) -> usize {
        self.gids.len() * (4 + 8 + 4 + 8 + 1) + (self.order.len() + self.free.len()) * 4
    }
}

impl Default for ListenerTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The pre-SoA listener table — one boxed map node per membership — kept
/// verbatim as the reference model for the differential state tests.
#[cfg(any(test, feature = "legacy_state"))]
pub mod legacy {
    use super::*;
    use std::collections::BTreeMap;

    #[allow(clippy::box_collection)]
    #[derive(Default)]
    pub struct LegacyListenerTable {
        groups: BTreeMap<GroupAddr, Box<(SimTime, Rexmt)>>,
    }

    impl LegacyListenerTable {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn len(&self) -> usize {
            self.groups.len()
        }

        pub fn is_empty(&self) -> bool {
            self.groups.is_empty()
        }

        pub fn contains(&self, g: GroupAddr) -> bool {
            self.groups.contains_key(&g)
        }

        pub fn insert(&mut self, g: GroupAddr, expires: SimTime) {
            self.groups.insert(g, Box::new((expires, None)));
        }

        pub fn remove(&mut self, g: GroupAddr) -> bool {
            self.groups.remove(&g).is_some()
        }

        pub fn set_expires(&mut self, g: GroupAddr, t: SimTime) {
            if let Some(st) = self.groups.get_mut(&g) {
                st.0 = t;
            }
        }

        pub fn set_rexmt(&mut self, g: GroupAddr, r: Rexmt) {
            if let Some(st) = self.groups.get_mut(&g) {
                st.1 = r;
            }
        }

        pub fn snapshot(&self) -> Vec<(GroupAddr, SimTime, Rexmt)> {
            self.groups.iter().map(|(g, st)| (*g, st.0, st.1)).collect()
        }

        pub fn stalest(&self) -> Option<GroupAddr> {
            self.groups
                .iter()
                .min_by_key(|(g, st)| (st.0, **g))
                .map(|(g, _)| *g)
        }

        pub fn min_deadline(&self) -> Option<SimTime> {
            self.groups
                .values()
                .map(|st| match st.1 {
                    Some((_, at)) => st.0.min(at),
                    None => st.0,
                })
                .min()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::legacy::LegacyListenerTable;
    use super::*;
    use mobicast_sim::RngFactory;
    use rand::Rng;

    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn soa_snapshot(t: &ListenerTable) -> Vec<(GroupAddr, SimTime, Rexmt)> {
        t.order
            .iter()
            .map(|&slot| (t.group_of(slot), t.expires[slot as usize], t.rexmt(slot)))
            .collect()
    }

    #[test]
    fn insert_remove_keeps_address_order() {
        let mut tab = ListenerTable::new();
        for i in [5u16, 1, 9, 3] {
            tab.insert(g(i), t(u64::from(i))).unwrap();
        }
        assert_eq!(
            tab.groups().collect::<Vec<_>>(),
            vec![g(1), g(3), g(5), g(9)]
        );
        assert!(tab.remove(g(5)));
        assert!(!tab.remove(g(5)), "double remove");
        assert_eq!(tab.groups().collect::<Vec<_>>(), vec![g(1), g(3), g(9)]);
        assert_eq!(tab.len(), 3);
        // The freed slot is reused without disturbing order.
        tab.insert(g(2), t(50)).unwrap();
        assert_eq!(
            tab.groups().collect::<Vec<_>>(),
            vec![g(1), g(2), g(3), g(9)]
        );
    }

    #[test]
    fn watermark_is_conservative_and_refreshable() {
        let mut tab = ListenerTable::new();
        tab.insert(g(1), t(100)).unwrap();
        tab.insert(g(2), t(50)).unwrap();
        assert_eq!(tab.min_expires(), t(50));
        // A refresh raising g(2) leaves the watermark stale-low…
        let slot = tab.slot_of(g(2)).unwrap();
        tab.set_expires(slot, t(300));
        assert_eq!(tab.min_expires(), t(50), "stale but conservative");
        // …until a sweep recomputes it exactly.
        tab.refresh_min_expires();
        assert_eq!(tab.min_expires(), t(100));
        tab.remove(g(1));
        tab.remove(g(2));
        assert_eq!(tab.min_expires(), SimTime::MAX);
    }

    /// Differential state model: the SoA table and the legacy boxed-map
    /// table driven through identical randomized join/refresh/done/leave/
    /// expiry-sweep ops must expose identical observable state after
    /// every single op — 8 seeds' worth.
    #[test]
    fn differential_vs_legacy_boxed_map() {
        for seed in 0..8u64 {
            let rng_factory = RngFactory::new(seed);
            let mut rng = rng_factory.stream("mld-diff");
            let mut soa = ListenerTable::new();
            let mut old = LegacyListenerTable::new();
            let mut now = 0u64;
            for step in 0..400 {
                now += rng.random_range(0u64..30);
                let grp = g(rng.random_range(0u16..24));
                match rng.random_range(0u32..6) {
                    // Join / refresh: insert or bump the expiry.
                    0 | 1 => {
                        let exp = t(now + 260);
                        match soa.slot_of(grp) {
                            Some(slot) => {
                                soa.set_expires(slot, exp);
                                soa.set_rexmt(slot, None);
                            }
                            None => {
                                soa.insert(grp, exp).unwrap();
                            }
                        }
                        if old.contains(grp) {
                            old.set_expires(grp, exp);
                            old.set_rexmt(grp, None);
                        } else {
                            old.insert(grp, exp);
                        }
                    }
                    // Done: arm the last-listener query process.
                    2 => {
                        if let Some(slot) = soa.slot_of(grp) {
                            soa.set_expires(slot, t(now + 2));
                            soa.set_rexmt(slot, Some((1, t(now + 1))));
                        }
                        if old.contains(grp) {
                            old.set_expires(grp, t(now + 2));
                            old.set_rexmt(grp, Some((1, t(now + 1))));
                        }
                    }
                    // Leave / move away: hard remove.
                    3 => {
                        assert_eq!(soa.remove(grp), old.remove(grp));
                    }
                    // Expiry sweep at `now`.
                    4 => {
                        let due: Vec<GroupAddr> = soa
                            .groups()
                            .filter(|&gr| {
                                soa.expires_at(soa.slot_of(gr).unwrap_or(u32::MAX)) <= t(now)
                            })
                            .collect();
                        for gr in due {
                            soa.remove(gr);
                        }
                        let due: Vec<GroupAddr> = old
                            .snapshot()
                            .iter()
                            .filter(|(_, exp, _)| *exp <= t(now))
                            .map(|(gr, _, _)| *gr)
                            .collect();
                        for gr in due {
                            old.remove(gr);
                        }
                        soa.refresh_min_expires();
                    }
                    // Evict-stalest (budget pressure).
                    _ => {
                        let (a, b) = (soa.stalest(), old.stalest());
                        assert_eq!(a, b, "seed {seed} step {step}: victim diverged");
                        if let Some(victim) = a {
                            soa.remove(victim);
                            old.remove(victim);
                        }
                    }
                }
                // Full observable state must match after every op.
                assert_eq!(
                    soa_snapshot(&soa),
                    old.snapshot(),
                    "seed {seed} step {step}: state diverged"
                );
                assert_eq!(soa.len(), old.len());
                assert_eq!(soa.min_deadline(), old.min_deadline());
                assert_eq!(soa.stalest(), old.stalest());
                // Watermark invariant: never later than any live expiry.
                for (_, exp, _) in soa_snapshot(&soa) {
                    assert!(soa.min_expires() <= exp);
                }
            }
        }
    }
}
