//! MLD timer configuration (RFC 2710 §7).
//!
//! The paper's Section 4.4 proposes tuning exactly these values — above all
//! the Query Interval — to reduce the join and leave delays of mobile
//! receivers. The derived Multicast Listener Interval
//! `T_MLI = RV · T_Query + T_RespDel` (260 s with defaults) is the paper's
//! upper bound on the leave delay.

use mobicast_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// MLD protocol timer profile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MldConfig {
    /// Robustness Variable (RV). Default 2.
    pub robustness: u32,
    /// Query Interval `T_Query`: period between General Queries sent by the
    /// querier. Default 125 s.
    pub query_interval: SimDuration,
    /// Query Response Interval / Maximum Response Delay `T_RespDel`
    /// inserted into General Queries. Default 10 s.
    pub query_response_interval: SimDuration,
    /// Interval between startup General Queries. Default `T_Query / 4`.
    pub startup_query_interval: SimDuration,
    /// Number of startup General Queries. Default RV.
    pub startup_query_count: u32,
    /// Maximum Response Delay for Multicast-Address-Specific Queries sent
    /// in response to a Done. Default 1 s.
    pub last_listener_query_interval: SimDuration,
    /// Number of specific queries before giving up. Default RV.
    pub last_listener_query_count: u32,
    /// Interval between repeated unsolicited Reports on join. Default 10 s.
    pub unsolicited_report_interval: SimDuration,
}

impl Default for MldConfig {
    fn default() -> Self {
        MldConfig::with_query_interval(SimDuration::from_secs(125))
    }
}

impl MldConfig {
    /// RFC 2710 defaults with the given Query Interval; the dependent
    /// timers (startup interval, other-querier interval, MLI) follow.
    pub fn with_query_interval(query_interval: SimDuration) -> Self {
        MldConfig {
            robustness: 2,
            query_interval,
            query_response_interval: SimDuration::from_secs(10),
            startup_query_interval: query_interval / 4,
            startup_query_count: 2,
            last_listener_query_interval: SimDuration::from_secs(1),
            last_listener_query_count: 2,
            unsolicited_report_interval: SimDuration::from_secs(10),
        }
    }

    /// Multicast Listener Interval: how long a membership stays alive
    /// without Reports. `RV · T_Query + T_RespDel` (260 s with defaults) —
    /// the paper's leave-delay bound.
    pub fn multicast_listener_interval(&self) -> SimDuration {
        self.query_interval
            .saturating_mul(u64::from(self.robustness))
            + self.query_response_interval
    }

    /// Other Querier Present Interval:
    /// `RV · T_Query + T_RespDel / 2`.
    pub fn other_querier_present_interval(&self) -> SimDuration {
        self.query_interval
            .saturating_mul(u64::from(self.robustness))
            + self.query_response_interval / 2
    }

    /// Validate the profile. The paper (footnote 5) requires
    /// `T_Query ≥ T_RespDel`; RFC 2710 additionally requires a nonzero
    /// robustness.
    pub fn validate(&self) -> Result<(), String> {
        if self.robustness == 0 {
            return Err("robustness variable must be >= 1".into());
        }
        if self.query_interval < self.query_response_interval {
            return Err(format!(
                "query interval {} must be >= query response interval {} \
                 (paper §4.4, footnote 5)",
                self.query_interval, self.query_response_interval
            ));
        }
        if self.query_interval.is_zero() {
            return Err("query interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_mli_is_260s() {
        let cfg = MldConfig::default();
        assert_eq!(cfg.query_interval, SimDuration::from_secs(125));
        assert_eq!(
            cfg.multicast_listener_interval(),
            SimDuration::from_secs(260),
            "paper: T_MLI = 2*125 + 10 = 260 s"
        );
        cfg.validate().unwrap();
    }

    #[test]
    fn tuned_profile_scales_mli() {
        let cfg = MldConfig::with_query_interval(SimDuration::from_secs(20));
        assert_eq!(
            cfg.multicast_listener_interval(),
            SimDuration::from_secs(50)
        );
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_enforces_paper_footnote5() {
        // T_Query must not be smaller than T_RespDel (10 s default).
        let cfg = MldConfig::with_query_interval(SimDuration::from_secs(5));
        assert!(cfg.validate().is_err());
        let cfg = MldConfig::with_query_interval(SimDuration::from_secs(10));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_robustness() {
        let cfg = MldConfig {
            robustness: 0,
            ..MldConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn other_querier_interval() {
        let cfg = MldConfig::default();
        assert_eq!(
            cfg.other_querier_present_interval(),
            SimDuration::from_secs(255)
        );
    }
}
