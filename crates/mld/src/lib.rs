//! # mobicast-mld
//!
//! Multicast Listener Discovery (RFC 2710) as sans-IO state machines:
//! a [`host::MldHostPort`] per host interface and a
//! [`router::MldRouterPort`] per router interface. The owner (the node
//! glue in `mobicast-core`) feeds messages and clock deadlines in and
//! transmits the returned messages; no I/O happens here, which is what
//! makes every protocol rule unit-testable.
//!
//! The timer profile ([`config::MldConfig`]) is the paper's §4.4 tuning
//! knob: the default 125 s Query Interval yields the 260 s Multicast
//! Listener Interval the paper criticizes; shrinking it shortens the join
//! and leave delays of mobile receivers proportionally.

pub mod config;
pub mod host;
pub mod message;
pub mod router;
pub mod table;

pub use config::MldConfig;
pub use host::{HostOutput, MldHostPort};
pub use message::MldMessage;
pub use router::{MldNote, MldRouterPort, RouterOutput};
pub use table::ListenerTable;
