//! MLD router-side state machine (RFC 2710, querier part).
//!
//! One instance per router interface. Tracks which multicast groups have
//! listeners on the link, elects the querier (lowest link-local address
//! wins), schedules General Queries, runs the last-listener specific-query
//! process after a Done, and expires memberships after the Multicast
//! Listener Interval — the expiry that produces the paper's **leave delay**
//! when a mobile receiver departs without being able to send Done.
//!
//! Membership changes are reported to the owner as
//! [`RouterOutput::ListenerAdded`] / [`RouterOutput::ListenerRemoved`];
//! the owner forwards them to the multicast routing protocol (PIM-DM),
//! mirroring RFC 2710 §2: "MLD provides the collected information to the
//! multicast routing protocol".

use crate::config::MldConfig;
use crate::message::MldMessage;
use crate::table::ListenerTable;
use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::arena::SharedInterner;
use mobicast_sim::{ShedPolicy, SimTime};
use std::net::Ipv6Addr;

/// Outputs of the router machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterOutput {
    Send(MldMessage),
    /// A group gained its first listener on this link.
    ListenerAdded(GroupAddr),
    /// The last listener of a group on this link is gone (timer expiry or
    /// completed last-listener query process).
    ListenerRemoved(GroupAddr),
}

/// Notable internal transitions, buffered for the owner to drain with
/// [`MldRouterPort::take_notes`]. The sans-IO machine cannot reach a tracer
/// or counter registry directly, so it records *what happened* and the
/// owning node converts the notes into typed trace events and MIB counters.
/// Notes carry no behavioural weight: dropping them changes nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MldNote {
    /// We (re)took the querier role after the other querier fell silent.
    QuerierElected,
    /// We yielded the querier role to a lower-addressed router.
    QuerierResigned { other: Ipv6Addr },
    /// A Report for a new group was refused because the listener table is
    /// at capacity under [`ShedPolicy::RejectNew`].
    ListenerShed { group: GroupAddr },
    /// The stalest membership was evicted to admit a new group under
    /// [`ShedPolicy::EvictStalest`].
    ListenerEvicted { group: GroupAddr },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Querier,
    NonQuerier,
}

/// Router-side MLD state for one interface. Memberships live in a
/// struct-of-arrays [`ListenerTable`] with interned group ids; the port
/// keeps only the querier machinery around it.
#[derive(Debug)]
pub struct MldRouterPort {
    cfg: MldConfig,
    /// Our link-local address on this interface (querier election key).
    my_addr: Ipv6Addr,
    role: Role,
    other_querier_deadline: Option<SimTime>,
    /// Next scheduled General Query (only meaningful as querier).
    next_general_query: Option<SimTime>,
    startup_left: u32,
    groups: ListenerTable,
    notes: Vec<MldNote>,
    /// Listener-table capacity; `None` = unbounded (the default).
    budget: Option<u32>,
    shed_policy: ShedPolicy,
}

impl MldRouterPort {
    pub fn new(cfg: MldConfig, my_addr: Ipv6Addr) -> Self {
        Self::build(cfg, my_addr, ListenerTable::new())
    }

    /// A port whose listener table draws group ids from a world-level
    /// interner shared across every node.
    pub fn with_interner(
        cfg: MldConfig,
        my_addr: Ipv6Addr,
        groups: SharedInterner<GroupAddr>,
    ) -> Self {
        Self::build(cfg, my_addr, ListenerTable::with_interner(groups))
    }

    fn build(cfg: MldConfig, my_addr: Ipv6Addr, groups: ListenerTable) -> Self {
        debug_assert!(cfg.validate().is_ok(), "invalid MLD config");
        MldRouterPort {
            cfg,
            my_addr,
            role: Role::Querier,
            other_querier_deadline: None,
            next_general_query: None,
            startup_left: cfg.startup_query_count,
            groups,
            notes: Vec::new(),
            budget: None,
            shed_policy: ShedPolicy::default(),
        }
    }

    /// Bound the listener table at `capacity` entries, shedding per
    /// `policy`. `None` restores the unbounded default.
    pub fn set_budget(&mut self, capacity: Option<u32>, policy: ShedPolicy) {
        self.budget = capacity;
        self.shed_policy = policy;
    }

    /// Drain buffered transition notes (see [`MldNote`]).
    pub fn take_notes(&mut self) -> Vec<MldNote> {
        std::mem::take(&mut self.notes)
    }

    pub fn config(&self) -> &MldConfig {
        &self.cfg
    }

    /// Begin operating: emits the first startup General Query.
    pub fn start(&mut self, now: SimTime) -> Vec<RouterOutput> {
        self.next_general_query = Some(now);
        self.on_deadline(now)
    }

    pub fn is_querier(&self) -> bool {
        self.role == Role::Querier
    }

    /// Groups with listeners on this link, in address order.
    pub fn listener_groups(&self) -> impl Iterator<Item = GroupAddr> + '_ {
        self.groups.groups()
    }

    pub fn has_listener(&self, group: GroupAddr) -> bool {
        self.groups.contains(group)
    }

    /// Number of tracked group memberships (router state load metric) —
    /// an O(1) occupancy counter read.
    pub fn membership_count(&self) -> usize {
        self.groups.len()
    }

    /// Deterministic byte audit of the membership table (see
    /// [`ListenerTable::state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.groups.state_bytes()
    }

    /// O(1) conservative lower bound on all membership expiries.
    pub fn min_membership_expiry(&self) -> SimTime {
        self.groups.min_expires()
    }

    /// An MLD message was heard on the link from `from`.
    pub fn on_message(
        &mut self,
        from: Ipv6Addr,
        msg: &MldMessage,
        now: SimTime,
    ) -> Vec<RouterOutput> {
        match msg {
            MldMessage::Query { .. } => {
                // Querier election: lowest address wins (RFC 2710 §6).
                if from < self.my_addr {
                    if self.role == Role::Querier {
                        self.notes.push(MldNote::QuerierResigned { other: from });
                    }
                    self.role = Role::NonQuerier;
                    self.next_general_query = None;
                    self.other_querier_deadline =
                        Some(now + self.cfg.other_querier_present_interval());
                }
                Vec::new()
            }
            MldMessage::Report { group } => {
                let expires = now + self.cfg.multicast_listener_interval();
                match self.groups.slot_of(*group) {
                    Some(slot) => {
                        self.groups.set_expires(slot, expires);
                        // A listener answered the specific query.
                        self.groups.set_rexmt(slot, None);
                        Vec::new()
                    }
                    None => {
                        let mut out = Vec::new();
                        if let Some(cap) = self.budget {
                            if self.groups.len() >= cap as usize {
                                match self.shed_policy {
                                    // Also taken when eviction cannot make
                                    // room (capacity zero).
                                    ShedPolicy::EvictStalest
                                        if let Some(victim) = self.groups.stalest() =>
                                    {
                                        self.groups.remove(victim);
                                        self.notes.push(MldNote::ListenerEvicted { group: victim });
                                        out.push(RouterOutput::ListenerRemoved(victim));
                                    }
                                    _ => {
                                        self.notes.push(MldNote::ListenerShed { group: *group });
                                        return out;
                                    }
                                }
                            }
                        }
                        if self.groups.insert(*group, expires).is_err() {
                            // Group-id space exhausted: degrade to shedding
                            // the report instead of panicking.
                            self.notes.push(MldNote::ListenerShed { group: *group });
                            return out;
                        }
                        out.push(RouterOutput::ListenerAdded(*group));
                        out
                    }
                }
            }
            MldMessage::Done { group } => {
                // Only the querier runs the last-listener query process.
                if self.role != Role::Querier {
                    return Vec::new();
                }
                let Some(slot) = self.groups.slot_of(*group) else {
                    return Vec::new();
                };
                let llqi = self.cfg.last_listener_query_interval;
                let count = self.cfg.last_listener_query_count;
                self.groups
                    .set_expires(slot, now + llqi.saturating_mul(u64::from(count)));
                self.groups.set_rexmt(
                    slot,
                    if count > 1 {
                        Some((count - 1, now + llqi))
                    } else {
                        None
                    },
                );
                vec![RouterOutput::Send(MldMessage::Query {
                    max_response_delay: llqi,
                    group: Some(*group),
                })]
            }
        }
    }

    /// Earliest pending deadline (query schedule, querier election fallback,
    /// membership expiry, specific-query retransmission).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                min = Some(match min {
                    Some(m) => m.min(t),
                    None => t,
                });
            }
        };
        consider(self.next_general_query);
        consider(self.other_querier_deadline);
        // One linear sweep over the SoA columns.
        consider(self.groups.min_deadline());
        min
    }

    /// Fire all deadlines due at `now`.
    pub fn on_deadline(&mut self, now: SimTime) -> Vec<RouterOutput> {
        let mut out = Vec::new();

        // Other-querier-present timer: take over as querier.
        if matches!(self.other_querier_deadline, Some(t) if t <= now) {
            self.other_querier_deadline = None;
            self.role = Role::Querier;
            self.next_general_query = Some(now);
            self.notes.push(MldNote::QuerierElected);
        }

        // Scheduled General Query.
        if matches!(self.next_general_query, Some(t) if t <= now) {
            debug_assert_eq!(self.role, Role::Querier);
            out.push(RouterOutput::Send(MldMessage::Query {
                max_response_delay: self.cfg.query_response_interval,
                group: None,
            }));
            let interval = if self.startup_left > 1 {
                self.startup_left -= 1;
                self.cfg.startup_query_interval
            } else {
                self.startup_left = self.startup_left.min(1);
                self.cfg.query_interval
            };
            self.next_general_query = Some(now + interval);
        }

        // Per-group: specific-query retransmissions, then expiries — a
        // linear sweep over the table in address order.
        let mut removed = Vec::new();
        for pos in 0..self.groups.len() {
            let slot = self.groups.slot_at(pos);
            if let Some((left, at)) = self.groups.rexmt(slot) {
                if at <= now {
                    out.push(RouterOutput::Send(MldMessage::Query {
                        max_response_delay: self.cfg.last_listener_query_interval,
                        group: Some(self.groups.group_at_slot(slot)),
                    }));
                    self.groups.set_rexmt(
                        slot,
                        if left > 1 {
                            Some((left - 1, now + self.cfg.last_listener_query_interval))
                        } else {
                            None
                        },
                    );
                }
            }
            if self.groups.expires_at(slot) <= now {
                removed.push(self.groups.group_at_slot(slot));
            }
        }
        for g in removed {
            self.groups.remove(g);
            out.push(RouterOutput::ListenerRemoved(g));
        }
        self.groups.refresh_min_expires();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicast_sim::SimDuration;

    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn querier() -> MldRouterPort {
        MldRouterPort::new(MldConfig::default(), a("fe80::10"))
    }

    fn expect_general_query(out: &[RouterOutput]) {
        assert!(
            out.iter()
                .any(|o| matches!(o, RouterOutput::Send(MldMessage::Query { group: None, .. }))),
            "expected a general query in {out:?}"
        );
    }

    #[test]
    fn startup_sends_immediate_query_then_periodic() {
        let mut r = querier();
        let out = r.start(t(0));
        expect_general_query(&out);
        // Startup: second query after startup interval (125/4 s), then 125 s.
        let d1 = r.next_deadline().unwrap();
        assert_eq!(d1, SimTime::from_nanos(31_250_000_000));
        expect_general_query(&r.on_deadline(d1));
        let d2 = r.next_deadline().unwrap();
        assert_eq!(d2, d1 + SimDuration::from_secs(125));
    }

    #[test]
    fn report_adds_listener_once() {
        let mut r = querier();
        r.start(t(0));
        let out = r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(1));
        assert_eq!(out, vec![RouterOutput::ListenerAdded(g(1))]);
        let out = r.on_message(a("fe80::98"), &MldMessage::Report { group: g(1) }, t(2));
        assert!(out.is_empty(), "second report refreshes, no new add");
        assert!(r.has_listener(g(1)));
        assert_eq!(r.membership_count(), 1);
    }

    #[test]
    fn membership_expires_after_mli_without_reports() {
        // This is the paper's leave-delay mechanism: a moved receiver is
        // noticed only after T_MLI = 260 s with defaults.
        let mut r = querier();
        r.start(t(0));
        r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(100));
        // Drain intermediate deadlines (queries) up to expiry.
        let mut removed_at = None;
        while let Some(dl) = r.next_deadline() {
            if dl > t(100) + MldConfig::default().multicast_listener_interval() {
                break;
            }
            let out = r.on_deadline(dl);
            if out.contains(&RouterOutput::ListenerRemoved(g(1))) {
                removed_at = Some(dl);
                break;
            }
        }
        assert_eq!(
            removed_at,
            Some(t(100) + SimDuration::from_secs(260)),
            "listener removed exactly at report time + T_MLI"
        );
        assert!(!r.has_listener(g(1)));
    }

    #[test]
    fn reports_refresh_expiry() {
        let mut r = querier();
        r.start(t(0));
        r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(0));
        r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(200));
        // At t=260 (original expiry) the listener must still be present.
        r.on_deadline(t(260));
        assert!(r.has_listener(g(1)));
    }

    #[test]
    fn querier_election_lowest_address_wins() {
        let mut r = querier(); // fe80::10
        r.start(t(0));
        assert!(r.is_querier());
        // A query from a higher address: we stay querier.
        r.on_message(
            a("fe80::20"),
            &MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None,
            },
            t(1),
        );
        assert!(r.is_querier());
        // From a lower address: we yield.
        r.on_message(
            a("fe80::1"),
            &MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None,
            },
            t(2),
        );
        assert!(!r.is_querier());
        // No general query scheduled while non-querier; only the
        // other-querier-present deadline remains (no groups).
        let dl = r.next_deadline().unwrap();
        assert_eq!(
            dl,
            t(2) + MldConfig::default().other_querier_present_interval()
        );
        // When the other querier falls silent, we take over and query again.
        let out = r.on_deadline(dl);
        expect_general_query(&out);
        assert!(r.is_querier());
    }

    #[test]
    fn querier_transitions_are_noted() {
        let mut r = querier(); // fe80::10
        r.start(t(0));
        assert!(r.take_notes().is_empty(), "no transition yet");
        r.on_message(
            a("fe80::1"),
            &MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None,
            },
            t(1),
        );
        assert_eq!(
            r.take_notes(),
            vec![MldNote::QuerierResigned {
                other: a("fe80::1")
            }]
        );
        // A second query from the same querier is not a transition.
        r.on_message(
            a("fe80::1"),
            &MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None,
            },
            t(2),
        );
        assert!(r.take_notes().is_empty());
        // Takeover when the other querier falls silent.
        let dl = r.next_deadline().unwrap();
        r.on_deadline(dl);
        assert_eq!(r.take_notes(), vec![MldNote::QuerierElected]);
    }

    #[test]
    fn non_querier_still_tracks_membership() {
        let mut r = querier();
        r.start(t(0));
        r.on_message(
            a("fe80::1"),
            &MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None,
            },
            t(1),
        );
        assert!(!r.is_querier());
        let out = r.on_message(a("fe80::99"), &MldMessage::Report { group: g(2) }, t(3));
        assert_eq!(out, vec![RouterOutput::ListenerAdded(g(2))]);
    }

    #[test]
    fn done_triggers_specific_queries_then_removal() {
        let mut r = querier();
        r.start(t(0));
        r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(10));
        let out = r.on_message(a("fe80::99"), &MldMessage::Done { group: g(1) }, t(20));
        // Immediate first specific query.
        assert_eq!(
            out,
            vec![RouterOutput::Send(MldMessage::Query {
                max_response_delay: SimDuration::from_secs(1),
                group: Some(g(1)),
            })]
        );
        // Second specific query at +1 s.
        let dl = r.next_deadline().unwrap();
        assert_eq!(dl, t(21));
        let out = r.on_deadline(dl);
        assert!(out.iter().any(|o| matches!(
            o,
            RouterOutput::Send(MldMessage::Query { group: Some(gr), .. }) if *gr == g(1)
        )));
        // No report arrives: removal at 20 + 2 * LLQI = 22 s.
        let dl = r.next_deadline().unwrap();
        assert_eq!(dl, t(22));
        let out = r.on_deadline(dl);
        assert!(out.contains(&RouterOutput::ListenerRemoved(g(1))));
        // Fast leave: 2 s instead of 260 s.
    }

    #[test]
    fn report_cancels_last_listener_process() {
        let mut r = querier();
        r.start(t(0));
        r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(10));
        r.on_message(a("fe80::99"), &MldMessage::Done { group: g(1) }, t(20));
        // Another listener answers the specific query.
        r.on_message(a("fe80::98"), &MldMessage::Report { group: g(1) }, t(21));
        // Membership must survive well past the fast-leave deadline.
        r.on_deadline(t(30));
        assert!(r.has_listener(g(1)));
    }

    #[test]
    fn non_querier_ignores_done() {
        let mut r = querier();
        r.start(t(0));
        r.on_message(
            a("fe80::1"),
            &MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None,
            },
            t(1),
        );
        r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(2));
        let out = r.on_message(a("fe80::99"), &MldMessage::Done { group: g(1) }, t(3));
        assert!(out.is_empty());
        assert!(r.has_listener(g(1)));
    }

    #[test]
    fn done_for_unknown_group_is_ignored() {
        let mut r = querier();
        r.start(t(0));
        let out = r.on_message(a("fe80::99"), &MldMessage::Done { group: g(9) }, t(1));
        assert!(out.is_empty());
    }

    #[test]
    fn tuned_query_interval_shortens_leave_detection() {
        // Paper §4.4: decreasing T_Query decreases the leave delay.
        let cfg = MldConfig::with_query_interval(SimDuration::from_secs(20));
        let mut r = MldRouterPort::new(cfg, a("fe80::10"));
        r.start(t(0));
        r.on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(0));
        let mut removed_at = None;
        while let Some(dl) = r.next_deadline() {
            if dl > t(120) {
                break;
            }
            if r.on_deadline(dl)
                .contains(&RouterOutput::ListenerRemoved(g(1)))
            {
                removed_at = Some(dl);
                break;
            }
        }
        assert_eq!(
            removed_at,
            Some(t(0) + cfg.multicast_listener_interval()),
            "MLI = 2*20+10 = 50 s with the tuned profile"
        );
    }

    #[test]
    fn reject_new_sheds_over_budget_reports() {
        let mut r = querier();
        r.set_budget(Some(2), ShedPolicy::RejectNew);
        let h = a("fe80::99");
        assert_eq!(
            r.on_message(h, &MldMessage::Report { group: g(1) }, t(0)),
            vec![RouterOutput::ListenerAdded(g(1))]
        );
        assert_eq!(
            r.on_message(h, &MldMessage::Report { group: g(2) }, t(1)),
            vec![RouterOutput::ListenerAdded(g(2))]
        );
        // Third distinct group: refused, established state untouched.
        assert!(r
            .on_message(h, &MldMessage::Report { group: g(3) }, t(2))
            .is_empty());
        assert!(r.has_listener(g(1)) && r.has_listener(g(2)) && !r.has_listener(g(3)));
        assert_eq!(r.take_notes(), vec![MldNote::ListenerShed { group: g(3) }]);
        // A refresh of an admitted group is never shed.
        assert!(r
            .on_message(h, &MldMessage::Report { group: g(1) }, t(3))
            .is_empty());
        assert!(r.take_notes().is_empty());
    }

    #[test]
    fn evict_stalest_makes_room_deterministically() {
        let mut r = querier();
        r.set_budget(Some(2), ShedPolicy::EvictStalest);
        let h = a("fe80::99");
        r.on_message(h, &MldMessage::Report { group: g(1) }, t(0));
        r.on_message(h, &MldMessage::Report { group: g(2) }, t(5));
        r.take_notes();
        // g(1) expires first -> it is the stalest victim.
        let out = r.on_message(h, &MldMessage::Report { group: g(3) }, t(10));
        assert_eq!(
            out,
            vec![
                RouterOutput::ListenerRemoved(g(1)),
                RouterOutput::ListenerAdded(g(3)),
            ]
        );
        assert_eq!(
            r.take_notes(),
            vec![MldNote::ListenerEvicted { group: g(1) }]
        );
        assert_eq!(r.membership_count(), 2);
    }

    #[test]
    fn evict_stalest_ties_break_on_group_order() {
        let mut r = querier();
        r.set_budget(Some(2), ShedPolicy::EvictStalest);
        let h = a("fe80::99");
        // Same expiry instant: the lower group address loses.
        r.on_message(h, &MldMessage::Report { group: g(7) }, t(0));
        r.on_message(h, &MldMessage::Report { group: g(4) }, t(0));
        r.take_notes();
        let out = r.on_message(h, &MldMessage::Report { group: g(9) }, t(1));
        assert_eq!(out[0], RouterOutput::ListenerRemoved(g(4)));
    }

    #[test]
    fn zero_capacity_evict_budget_degrades_to_reject() {
        let mut r = querier();
        r.set_budget(Some(0), ShedPolicy::EvictStalest);
        assert!(r
            .on_message(a("fe80::99"), &MldMessage::Report { group: g(1) }, t(0))
            .is_empty());
        assert_eq!(r.membership_count(), 0);
        assert_eq!(r.take_notes(), vec![MldNote::ListenerShed { group: g(1) }]);
    }
}
