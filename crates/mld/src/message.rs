//! MLD protocol messages and their mapping to ICMPv6 wire frames.

use mobicast_ipv6::addr::GroupAddr;
use mobicast_ipv6::Icmpv6;
use mobicast_sim::SimDuration;
use std::net::Ipv6Addr;

/// An MLD message at the protocol level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MldMessage {
    /// A Multicast Listener Query. `group` is `None` for a General Query.
    Query {
        max_response_delay: SimDuration,
        group: Option<GroupAddr>,
    },
    /// A Multicast Listener Report.
    Report { group: GroupAddr },
    /// A Multicast Listener Done.
    Done { group: GroupAddr },
}

impl MldMessage {
    /// Convert to the ICMPv6 representation for encoding.
    pub fn to_icmp(self) -> Icmpv6 {
        match self {
            MldMessage::Query {
                max_response_delay,
                group,
            } => {
                let ms = max_response_delay.as_nanos() / 1_000_000;
                assert!(ms <= u64::from(u16::MAX), "max response delay too large");
                Icmpv6::MldQuery {
                    max_response_delay_ms: ms as u16,
                    group: group.map(Ipv6Addr::from).unwrap_or(Ipv6Addr::UNSPECIFIED),
                }
            }
            MldMessage::Report { group } => Icmpv6::MldReport {
                group: group.into(),
            },
            MldMessage::Done { group } => Icmpv6::MldDone {
                group: group.into(),
            },
        }
    }

    /// Interpret an ICMPv6 message as MLD, if it is one.
    pub fn from_icmp(m: &Icmpv6) -> Option<MldMessage> {
        match m {
            Icmpv6::MldQuery {
                max_response_delay_ms,
                group,
            } => Some(MldMessage::Query {
                max_response_delay: SimDuration::from_millis(u64::from(*max_response_delay_ms)),
                group: GroupAddr::try_new(*group),
            }),
            Icmpv6::MldReport { group } => {
                GroupAddr::try_new(*group).map(|group| MldMessage::Report { group })
            }
            Icmpv6::MldDone { group } => {
                GroupAddr::try_new(*group).map(|group| MldMessage::Done { group })
            }
            _ => None,
        }
    }

    /// The destination address RFC 2710 mandates for this message.
    pub fn ip_destination(&self) -> Ipv6Addr {
        match self {
            // General queries to all-nodes; specific queries to the group.
            MldMessage::Query { group, .. } => group
                .map(Ipv6Addr::from)
                .unwrap_or(mobicast_ipv6::addr::ALL_NODES),
            // Reports go to the group being reported.
            MldMessage::Report { group } => (*group).into(),
            // Done goes to all-routers.
            MldMessage::Done { .. } => mobicast_ipv6::addr::ALL_ROUTERS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicast_ipv6::addr::{ALL_NODES, ALL_ROUTERS};

    #[test]
    fn icmp_round_trip() {
        let g = GroupAddr::test_group(5);
        let msgs = [
            MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None,
            },
            MldMessage::Query {
                max_response_delay: SimDuration::from_secs(1),
                group: Some(g),
            },
            MldMessage::Report { group: g },
            MldMessage::Done { group: g },
        ];
        for m in msgs {
            let icmp = m.to_icmp();
            assert_eq!(MldMessage::from_icmp(&icmp), Some(m));
        }
    }

    #[test]
    fn destinations_follow_rfc2710() {
        let g = GroupAddr::test_group(1);
        assert_eq!(
            MldMessage::Query {
                max_response_delay: SimDuration::from_secs(10),
                group: None
            }
            .ip_destination(),
            ALL_NODES
        );
        assert_eq!(
            MldMessage::Query {
                max_response_delay: SimDuration::from_secs(1),
                group: Some(g)
            }
            .ip_destination(),
            Ipv6Addr::from(g)
        );
        assert_eq!(
            MldMessage::Report { group: g }.ip_destination(),
            Ipv6Addr::from(g)
        );
        assert_eq!(MldMessage::Done { group: g }.ip_destination(), ALL_ROUTERS);
    }

    #[test]
    fn non_mld_icmp_is_none() {
        assert_eq!(MldMessage::from_icmp(&Icmpv6::RouterSolicit), None);
    }

    #[test]
    fn query_delay_millisecond_precision() {
        let m = MldMessage::Query {
            max_response_delay: SimDuration::from_millis(1234),
            group: None,
        };
        match m.to_icmp() {
            Icmpv6::MldQuery {
                max_response_delay_ms,
                ..
            } => assert_eq!(max_response_delay_ms, 1234),
            _ => unreachable!(),
        }
    }
}
