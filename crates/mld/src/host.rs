//! MLD host-side state machine (RFC 2710, listener part).
//!
//! Sans-IO: the owner feeds in messages heard on the link and clock
//! deadlines; the machine returns messages to transmit. One instance per
//! host interface.
//!
//! Behaviours relevant to the paper:
//! * **Unsolicited Reports on join** — the paper recommends mobile hosts
//!   send these immediately after moving to a new link to cut the join
//!   delay from `O(T_Query)` to milliseconds.
//! * **Report suppression** — if another listener reports the group first,
//!   a host cancels its own delayed report, so a router cannot tell *which*
//!   hosts listen, only *that* someone does (this is why the leave delay
//!   exists at all).
//! * **Done on leave** — sent only when the host believes it was the last
//!   reporter. A *mobile* host that leaves the link entirely cannot send
//!   Done on the old link (paper §4.4), which the simulation models by the
//!   mover never calling [`MldHostPort::leave`].

use crate::config::MldConfig;
use crate::message::MldMessage;
use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;

/// What the host machine wants transmitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostOutput {
    Send(MldMessage),
}

#[derive(Debug)]
struct HostGroupState {
    /// Next scheduled report transmission, if any.
    pending: Option<SimTime>,
    /// Remaining transmissions in the unsolicited join burst (including the
    /// pending one when nonzero).
    burst: u32,
    /// True if we were the most recent reporter of this group on the link.
    last_reporter: bool,
}

/// Host-side MLD state for one interface.
#[derive(Debug)]
pub struct MldHostPort {
    cfg: MldConfig,
    rng: SmallRng,
    groups: BTreeMap<GroupAddr, HostGroupState>,
}

impl MldHostPort {
    pub fn new(cfg: MldConfig, rng: SmallRng) -> Self {
        debug_assert!(cfg.validate().is_ok(), "invalid MLD config");
        MldHostPort {
            cfg,
            rng,
            groups: BTreeMap::new(),
        }
    }

    pub fn config(&self) -> &MldConfig {
        &self.cfg
    }

    /// Join `group`: send an unsolicited Report immediately and schedule
    /// `robustness - 1` retransmissions. Idempotent for already-joined
    /// groups.
    pub fn join(&mut self, group: GroupAddr, now: SimTime) -> Vec<HostOutput> {
        if self.groups.contains_key(&group) {
            return Vec::new();
        }
        let burst = self.cfg.robustness.saturating_sub(1);
        self.groups.insert(
            group,
            HostGroupState {
                pending: (burst > 0).then(|| now + self.cfg.unsolicited_report_interval),
                burst,
                last_reporter: true,
            },
        );
        vec![HostOutput::Send(MldMessage::Report { group })]
    }

    /// Join `group` without sending an unsolicited Report: the host waits
    /// for the next Query before announcing itself. This is the paper's
    /// §4.3.1 worst case ("if the mobile host is configured to wait for the
    /// next Query, it may experience quite a long join delay").
    pub fn join_quiet(&mut self, group: GroupAddr) {
        self.groups.entry(group).or_insert(HostGroupState {
            pending: None,
            burst: 0,
            last_reporter: false,
        });
    }

    /// Leave `group` deliberately (host stays on the link). Sends Done if
    /// we were the last reporter, per RFC 2710 §5.
    pub fn leave(&mut self, group: GroupAddr, _now: SimTime) -> Vec<HostOutput> {
        match self.groups.remove(&group) {
            Some(st) if st.last_reporter => {
                vec![HostOutput::Send(MldMessage::Done { group })]
            }
            _ => Vec::new(),
        }
    }

    /// The host vanished from the link (mobility). All per-link report
    /// state is dropped **without** sending Done — a moved host cannot
    /// signal the old link (paper §4.4). Returns the set of groups that
    /// were joined, so the caller can re-join them on the new link.
    pub fn depart_link(&mut self) -> Vec<GroupAddr> {
        let groups: Vec<GroupAddr> = self.groups.keys().copied().collect();
        self.groups.clear();
        groups
    }

    /// A Query was heard on the link.
    pub fn on_query(
        &mut self,
        group: Option<GroupAddr>,
        max_response_delay: SimDuration,
        now: SimTime,
    ) -> Vec<HostOutput> {
        // Deterministic iteration (BTreeMap) keeps RNG draws reproducible.
        for (g, st) in self.groups.iter_mut() {
            if let Some(q) = group {
                if q != *g {
                    continue;
                }
            }
            let delay_ns = if max_response_delay.is_zero() {
                0
            } else {
                self.rng.random_range(0..max_response_delay.as_nanos())
            };
            let candidate = now + SimDuration::from_nanos(delay_ns);
            match st.pending {
                Some(existing) if existing <= candidate => {}
                _ => st.pending = Some(candidate),
            }
        }
        Vec::new()
    }

    /// Another host's Report for `group` was heard: suppress our own.
    pub fn on_report_heard(&mut self, group: GroupAddr) {
        if let Some(st) = self.groups.get_mut(&group) {
            st.pending = None;
            st.burst = 0;
            st.last_reporter = false;
        }
    }

    /// Earliest pending transmission.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.groups.values().filter_map(|s| s.pending).min()
    }

    /// Fire everything due at `now`.
    pub fn on_deadline(&mut self, now: SimTime) -> Vec<HostOutput> {
        let mut out = Vec::new();
        for (g, st) in self.groups.iter_mut() {
            let due = matches!(st.pending, Some(t) if t <= now);
            if !due {
                continue;
            }
            out.push(HostOutput::Send(MldMessage::Report { group: *g }));
            st.last_reporter = true;
            if st.burst > 0 {
                st.burst -= 1;
            }
            st.pending = (st.burst > 0).then(|| now + self.cfg.unsolicited_report_interval);
        }
        out
    }

    pub fn is_joined(&self, group: GroupAddr) -> bool {
        self.groups.contains_key(&group)
    }

    pub fn joined_groups(&self) -> impl Iterator<Item = GroupAddr> + '_ {
        self.groups.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobicast_sim::RngFactory;

    fn host(cfg: MldConfig) -> MldHostPort {
        MldHostPort::new(cfg, RngFactory::new(1).stream("host"))
    }

    fn g(i: u16) -> GroupAddr {
        GroupAddr::test_group(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn join_sends_unsolicited_report_immediately() {
        let mut h = host(MldConfig::default());
        let out = h.join(g(1), t(0));
        assert_eq!(
            out,
            vec![HostOutput::Send(MldMessage::Report { group: g(1) })]
        );
        assert!(h.is_joined(g(1)));
        // Robustness 2 => one retransmission scheduled at +URI (10 s).
        assert_eq!(h.next_deadline(), Some(t(10)));
        let out = h.on_deadline(t(10));
        assert_eq!(out.len(), 1);
        assert_eq!(h.next_deadline(), None, "burst exhausted");
    }

    #[test]
    fn join_is_idempotent() {
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0));
        assert!(h.join(g(1), t(1)).is_empty());
    }

    #[test]
    fn query_schedules_random_delayed_report_within_mrd() {
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0));
        h.on_deadline(t(10)); // drain the join burst
        h.on_query(None, SimDuration::from_secs(10), t(100));
        let dl = h.next_deadline().expect("report scheduled");
        assert!(dl >= t(100) && dl < t(110), "delay in [0, MRD): {dl:?}");
        let out = h.on_deadline(dl);
        assert_eq!(
            out,
            vec![HostOutput::Send(MldMessage::Report { group: g(1) })]
        );
        assert_eq!(h.next_deadline(), None);
    }

    #[test]
    fn specific_query_only_matches_its_group() {
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0));
        h.join(g(2), t(0));
        h.on_deadline(t(10));
        h.on_query(Some(g(2)), SimDuration::from_secs(1), t(50));
        let dl = h.next_deadline().unwrap();
        let out = h.on_deadline(dl);
        assert_eq!(
            out,
            vec![HostOutput::Send(MldMessage::Report { group: g(2) })]
        );
    }

    #[test]
    fn report_suppression() {
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0));
        h.on_deadline(t(10));
        h.on_query(None, SimDuration::from_secs(10), t(100));
        assert!(h.next_deadline().is_some());
        h.on_report_heard(g(1));
        assert_eq!(h.next_deadline(), None, "suppressed by peer report");
        // Suppressed host no longer considers itself last reporter:
        let out = h.leave(g(1), t(120));
        assert!(out.is_empty(), "no Done when someone else reported last");
    }

    #[test]
    fn leave_sends_done_when_last_reporter() {
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0));
        let out = h.leave(g(1), t(5));
        assert_eq!(
            out,
            vec![HostOutput::Send(MldMessage::Done { group: g(1) })]
        );
        assert!(!h.is_joined(g(1)));
    }

    #[test]
    fn depart_link_sends_nothing_and_returns_groups() {
        // Paper §4.4: "Mobile hosts cannot use the Done message when they
        // leave a link."
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0));
        h.join(g(2), t(0));
        let groups = h.depart_link();
        assert_eq!(groups, vec![g(1), g(2)]);
        assert!(!h.is_joined(g(1)));
        assert_eq!(h.next_deadline(), None);
    }

    #[test]
    fn earlier_existing_report_not_postponed_by_query() {
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0)); // pending retransmission at t=10
        let pending = h.next_deadline().unwrap();
        // A query with a huge MRD must not delay the earlier transmission.
        h.on_query(None, SimDuration::from_secs(10), t(5));
        assert!(h.next_deadline().unwrap() <= pending);
    }

    #[test]
    fn zero_mrd_query_means_immediate_report() {
        let mut h = host(MldConfig::default());
        h.join(g(1), t(0));
        h.on_deadline(t(10));
        h.on_query(None, SimDuration::ZERO, t(42));
        assert_eq!(h.next_deadline(), Some(t(42)));
    }

    #[test]
    fn robustness_three_sends_three_reports() {
        let cfg = MldConfig {
            robustness: 3,
            ..MldConfig::default()
        };
        let mut h = host(cfg);
        let mut count = h.join(g(1), t(0)).len();
        while let Some(dl) = h.next_deadline() {
            count += h.on_deadline(dl).len();
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn rng_determinism_across_instances() {
        let mk = || MldHostPort::new(MldConfig::default(), RngFactory::new(9).stream("h"));
        let mut a = mk();
        let mut b = mk();
        a.join(g(1), t(0));
        b.join(g(1), t(0));
        a.on_query(None, SimDuration::from_secs(10), t(1));
        b.on_query(None, SimDuration::from_secs(10), t(1));
        assert_eq!(a.next_deadline(), b.next_deadline());
    }
}

#[cfg(test)]
mod quiet_tests {
    use super::*;
    use mobicast_sim::RngFactory;

    #[test]
    fn join_quiet_waits_for_query() {
        let mut h = MldHostPort::new(MldConfig::default(), RngFactory::new(3).stream("h"));
        let g = GroupAddr::test_group(1);
        h.join_quiet(g);
        assert!(h.is_joined(g));
        assert_eq!(h.next_deadline(), None, "no unsolicited report");
        // Only a query provokes a report.
        h.on_query(None, SimDuration::from_secs(10), SimTime::from_secs(50));
        let dl = h.next_deadline().expect("delayed report scheduled");
        let out = h.on_deadline(dl);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn join_quiet_does_not_downgrade_active_join() {
        let mut h = MldHostPort::new(MldConfig::default(), RngFactory::new(3).stream("h"));
        let g = GroupAddr::test_group(1);
        h.join(g, SimTime::ZERO);
        let pending = h.next_deadline();
        h.join_quiet(g);
        assert_eq!(h.next_deadline(), pending, "existing state untouched");
    }
}
