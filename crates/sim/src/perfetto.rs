//! Perfetto / Chrome `trace.json` exporter.
//!
//! Renders a [`SpanBook`](crate::SpanBook)'s records plus sampled gauge series into the
//! Chrome trace-event JSON format (the `traceEvents` array form), which
//! `ui.perfetto.dev` and `chrome://tracing` open directly: spans become
//! `ph:"X"` complete events on one track per node, gauge series become
//! `ph:"C"` counter tracks. Timestamps are microseconds of *sim* time, so
//! the export is deterministic and golden-checkable.

use crate::series::TimeSeriesSet;
use crate::span::SpanRecord;
use serde::Serialize;
use serde_json::{json, Value};

/// The pid under which all tracks are grouped (one simulated world).
const PID: u64 = 1;

fn us(t_ns: u64) -> f64 {
    t_ns as f64 / 1000.0
}

fn span_event(s: &SpanRecord) -> Value {
    let mut args = json!({ "id": s.id.0 });
    if let Some(p) = s.parent {
        args["parent"] = json!(p.0);
    }
    for (k, v) in &s.attrs {
        args[k.as_str()] = v.to_json_value();
    }
    let end = s.end_ns.unwrap_or(s.start_ns);
    json!({
        "ph": "X",
        "pid": PID,
        "tid": s.node,
        "name": s.name.as_str(),
        "cat": "span",
        "ts": us(s.start_ns),
        "dur": us(end.saturating_sub(s.start_ns)),
        "args": args,
    })
}

/// Render spans and counter tracks as a Chrome trace-event JSON document.
///
/// `process_name` labels the single process track; node tracks are named
/// `node <id>`. Spans come first in id order, then one counter track per
/// series in name order — the output is byte-stable for a given input.
pub fn export_chrome_trace(
    process_name: &str,
    spans: &[SpanRecord],
    series: &TimeSeriesSet,
) -> String {
    let mut events = Vec::new();
    events.push(json!({
        "ph": "M",
        "pid": PID,
        "name": "process_name",
        "args": { "name": process_name },
    }));
    let mut nodes: Vec<u64> = spans.iter().map(|s| s.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in nodes {
        events.push(json!({
            "ph": "M",
            "pid": PID,
            "tid": n,
            "name": "thread_name",
            "args": { "name": format!("node {n}") },
        }));
    }
    for s in spans {
        events.push(span_event(s));
    }
    for (name, ts) in series.iter() {
        for &(t_ns, v) in &ts.points {
            events.push(json!({
                "ph": "C",
                "pid": PID,
                "tid": 0,
                "name": name.as_str(),
                "ts": us(t_ns),
                "args": { "value": v },
            }));
        }
    }
    serde_json::to_string(&json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }))
    .expect("chrome trace serialization is infallible")
}

/// Structural sanity check of an exported Chrome trace document: valid
/// JSON, a `traceEvents` array, every event carrying a known phase and
/// the fields that phase requires. Returns the first problem found.
pub fn validate_chrome_trace(doc: &str) -> Result<(), String> {
    let v = serde_json::from_str(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = v["traceEvents"]
        .as_array()
        .ok_or("missing \"traceEvents\" array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = e["ph"].as_str().ok_or(format!("event {i}: missing ph"))?;
        match ph {
            "M" => {
                if e["name"].as_str().is_none() {
                    return Err(format!("event {i}: metadata without name"));
                }
            }
            "X" => {
                for key in ["name", "cat"] {
                    if e[key].as_str().is_none() {
                        return Err(format!("event {i}: span without {key}"));
                    }
                }
                for key in ["ts", "dur"] {
                    if e[key].as_f64().is_none() {
                        return Err(format!("event {i}: span without numeric {key}"));
                    }
                }
            }
            "C" => {
                if e["name"].as_str().is_none() || e["ts"].as_f64().is_none() {
                    return Err(format!("event {i}: malformed counter"));
                }
                if e["args"]["value"].as_f64().is_none() {
                    return Err(format!("event {i}: counter without args.value"));
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanBook;
    use crate::time::SimTime;

    #[test]
    fn export_roundtrips_and_validates() {
        let mut book = SpanBook::default();
        let h = book.open("handoff", 9, SimTime::from_secs(10), None);
        let b = book.open("bu", 9, SimTime::from_millis(10_100), Some(h));
        book.annotate(h, "policy", "bidir-tunnel");
        book.close(b, SimTime::from_millis(10_400));
        book.close(h, SimTime::from_secs(12));
        let mut series = TimeSeriesSet::default();
        series.sample("queue.depth", SimTime::from_secs(10), 4.0);
        series.sample("queue.depth", SimTime::from_secs(11), 7.0);

        let doc = export_chrome_trace("mobicast handoff", book.records(), &series);
        validate_chrome_trace(&doc).expect("export validates");
        let v = serde_json::from_str(&doc).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // 1 process + 1 thread metadata + 2 spans + 2 counter samples.
        assert_eq!(events.len(), 6);
        let span = &events[2];
        assert_eq!(span["name"].as_str(), Some("handoff"));
        assert_eq!(span["args"]["policy"].as_str(), Some("bidir-tunnel"));
        assert_eq!(span["ts"].as_f64(), Some(10_000_000.0));
        let child = &events[3];
        assert_eq!(child["args"]["parent"].as_u64(), Some(h.0));
        assert_eq!(child["dur"].as_f64(), Some(300_000.0));
    }

    #[test]
    fn export_is_byte_stable() {
        let mut book = SpanBook::default();
        let a = book.open("graft", 2, SimTime::from_secs(1), None);
        book.close(a, SimTime::from_secs(2));
        let series = TimeSeriesSet::default();
        let one = export_chrome_trace("x", book.records(), &series);
        let two = export_chrome_trace("x", book.records(), &series);
        assert_eq!(one, two);
    }

    #[test]
    fn validation_rejects_malformed() {
        assert!(validate_chrome_trace("nope").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"Z\"}]}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"s\"}]}").is_err()
        );
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }
}
