//! Resource-budget primitives for control-plane overload robustness:
//! the shedding-policy selector shared by every bounded state table, and a
//! deterministic token bucket for rate limiting control-plane ingress.
//!
//! Both are pure state machines over [`SimTime`] — no
//! randomness, no wall clock — so a budgeted run is exactly as
//! reproducible as an unbudgeted one. Tables that need a tie-break among
//! equally stale victims iterate their (ordered) key space, which makes
//! the choice a deterministic function of table contents, not of hash
//! order or insertion history.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What a bounded state table does when an admission would exceed its
/// capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Refuse the new entry; established state is never disturbed. The
    /// newcomer must rely on protocol retransmission to get in later.
    RejectNew,
    /// Evict the entry closest to its natural expiry (the "stalest") to
    /// make room; ties break on the table's key order.
    EvictStalest,
}

impl ShedPolicy {
    /// Stable lowercase name used in counters, trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::RejectNew => "reject_new",
            ShedPolicy::EvictStalest => "evict_stalest",
        }
    }
}

// Manual impl (not `#[derive(Default)]` + `#[default]`): the vendored
// serde_derive shim does not tolerate variant attributes.
#[allow(clippy::derivable_impls)]
impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy::RejectNew
    }
}

/// Token-bucket rate limit parameters: sustained `rate_per_sec` with a
/// burst allowance of `burst` back-to-back messages.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Sustained refill rate, tokens per second. Must be positive.
    pub rate_per_sec: f64,
    /// Bucket depth: how many messages may arrive back to back before the
    /// limiter starts dropping. Must be >= 1.
    pub burst: u32,
}

impl RateLimit {
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_per_sec > 0.0 && self.rate_per_sec.is_finite()) {
            return Err(format!(
                "rate limit rate_per_sec = {} must be positive",
                self.rate_per_sec
            ));
        }
        if self.burst == 0 {
            return Err("rate limit burst must be >= 1".into());
        }
        Ok(())
    }
}

/// A deterministic token bucket over simulated time.
///
/// The bucket starts full; [`TokenBucket::try_take`] refills by elapsed
/// sim time at `rate_per_sec` (capped at `burst`), then consumes one token
/// if available. All arithmetic is on whole nanoseconds, so the admission
/// sequence is a pure function of the arrival times.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    limit: RateLimit,
    /// Tokens currently available, in nano-tokens (1 token = 1e9).
    nano_tokens: u64,
    last: SimTime,
}

const NANO: u64 = 1_000_000_000;

impl TokenBucket {
    pub fn new(limit: RateLimit) -> Self {
        TokenBucket {
            limit,
            nano_tokens: u64::from(limit.burst) * NANO,
            last: SimTime::ZERO,
        }
    }

    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Refill for the time elapsed since the last call, then try to take
    /// one token. Returns `false` when the message must be dropped.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        if now > self.last {
            let elapsed = (now - self.last).as_nanos();
            // nano-tokens gained = elapsed_ns * rate / 1e9 * 1e9.
            let gained = (elapsed as f64 * self.limit.rate_per_sec) as u64;
            let cap = u64::from(self.limit.burst) * NANO;
            self.nano_tokens = (self.nano_tokens + gained).min(cap);
            self.last = now;
        }
        if self.nano_tokens >= NANO {
            self.nano_tokens -= NANO;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (floor), for tests and introspection.
    pub fn available(&self) -> u32 {
        (self.nano_tokens / NANO) as u32
    }

    /// Earliest instant at which one whole token will be available again
    /// (now, if one already is). Useful for scheduling retries.
    pub fn next_token_at(&self, now: SimTime) -> SimTime {
        if self.nano_tokens >= NANO {
            return now;
        }
        let deficit = NANO - self.nano_tokens;
        let wait_ns = (deficit as f64 / self.limit.rate_per_sec).ceil() as u64;
        self.last.max(now) + SimDuration::from_nanos(wait_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(RateLimit {
            rate_per_sec: 1.0,
            burst: 3,
        });
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(!b.try_take(t(0)), "burst exhausted");
    }

    #[test]
    fn bucket_refills_at_rate() {
        let mut b = TokenBucket::new(RateLimit {
            rate_per_sec: 2.0,
            burst: 2,
        });
        assert!(b.try_take(t(0)));
        assert!(b.try_take(t(0)));
        assert!(!b.try_take(t(0)));
        // 0.5 s -> one token back at 2/s.
        assert!(b.try_take(SimTime::from_nanos(500_000_000)));
        assert!(!b.try_take(SimTime::from_nanos(500_000_000)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(RateLimit {
            rate_per_sec: 10.0,
            burst: 2,
        });
        assert!(b.try_take(t(0)));
        // A long quiet period must not bank more than `burst` tokens.
        assert!(b.try_take(t(100)));
        assert!(b.try_take(t(100)));
        assert!(!b.try_take(t(100)));
    }

    #[test]
    fn admission_sequence_is_deterministic() {
        let lim = RateLimit {
            rate_per_sec: 3.0,
            burst: 2,
        };
        let arrivals: Vec<SimTime> = (0..500)
            .map(|i| SimTime::from_nanos(i * 137_000_000))
            .collect();
        let run = |mut b: TokenBucket| -> Vec<bool> {
            arrivals.iter().map(|&at| b.try_take(at)).collect()
        };
        assert_eq!(run(TokenBucket::new(lim)), run(TokenBucket::new(lim)));
    }

    #[test]
    fn next_token_at_predicts_admission() {
        let mut b = TokenBucket::new(RateLimit {
            rate_per_sec: 4.0,
            burst: 1,
        });
        assert!(b.try_take(t(1)));
        let again = b.next_token_at(t(1));
        assert!(again > t(1));
        assert!(!b.try_take(again - SimDuration::from_nanos(1_000)));
        // (the failed probe advanced `last`; predict from the probe time)
        let again = b.next_token_at(again);
        assert!(b.try_take(again));
    }

    #[test]
    fn rate_limit_validation() {
        assert!(RateLimit {
            rate_per_sec: 1.0,
            burst: 1
        }
        .validate()
        .is_ok());
        assert!(RateLimit {
            rate_per_sec: 0.0,
            burst: 1
        }
        .validate()
        .is_err());
        assert!(RateLimit {
            rate_per_sec: 5.0,
            burst: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn shed_policy_names_are_stable() {
        assert_eq!(ShedPolicy::RejectNew.name(), "reject_new");
        assert_eq!(ShedPolicy::EvictStalest.name(), "evict_stalest");
        assert_eq!(ShedPolicy::default(), ShedPolicy::RejectNew);
    }
}
