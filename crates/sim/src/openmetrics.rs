//! OpenMetrics text exporter.
//!
//! Renders a snapshot of run metrics — monotonic counters, the latest
//! value of each sampled gauge series, and quantile digests as summaries
//! — in the OpenMetrics text exposition format (`# TYPE` family headers,
//! `_total` counter suffix, `quantile` labels, terminal `# EOF`). All
//! values are sim-time-derived, so the snapshot is deterministic and
//! golden-checkable.

use crate::metrics::Counters;
use crate::series::{QuantileDigest, TimeSeriesSet};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Map an arbitrary metric name onto the OpenMetrics charset: ASCII
/// letters, digits and underscores, with a leading underscore inserted
/// when the name would otherwise start with a digit.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_owned()
    }
}

/// Render the OpenMetrics snapshot. Every family name is prefixed with
/// `prefix` (plus `_`) and sanitized; families appear counters first,
/// then gauges, then summaries, alphabetically within each group.
pub fn export_openmetrics(
    prefix: &str,
    counters: &Counters,
    gauges: &TimeSeriesSet,
    digests: &BTreeMap<String, QuantileDigest>,
) -> String {
    let p = sanitize_metric_name(prefix);
    let mut out = String::new();
    for (name, value) in counters.iter() {
        let family = format!("{p}_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {family} counter");
        let _ = writeln!(out, "{family}_total {value}");
    }
    for (name, series) in gauges.iter() {
        let family = format!("{p}_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {family} gauge");
        let last = series.last().map(|(_, v)| v).unwrap_or(0.0);
        let _ = writeln!(out, "{family} {}", fmt_f64(last));
    }
    for (name, digest) in digests {
        let family = format!("{p}_{}", sanitize_metric_name(name));
        let _ = writeln!(out, "# TYPE {family} summary");
        for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99), ("1", 1.0)] {
            let v = digest.quantile_ns(q) as f64 / 1e9;
            let _ = writeln!(out, "{family}{{quantile=\"{label}\"}} {}", fmt_f64(v));
        }
        let _ = writeln!(out, "{family}_sum {}", fmt_f64(digest.sum_ns as f64 / 1e9));
        let _ = writeln!(out, "{family}_count {}", digest.count);
    }
    out.push_str("# EOF\n");
    out
}

/// Structural sanity check of an OpenMetrics snapshot: every non-comment
/// line must parse as `name[{labels}] value`, every family must be
/// declared by a preceding `# TYPE` line, and the snapshot must end with
/// `# EOF`. Returns the first problem found.
pub fn validate_openmetrics(doc: &str) -> Result<(), String> {
    let mut families: Vec<String> = Vec::new();
    let mut saw_eof = false;
    for (i, line) in doc.lines().enumerate() {
        if saw_eof {
            return Err(format!("line {}: content after # EOF", i + 1));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let family = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if family.is_empty() || !matches!(kind, "counter" | "gauge" | "summary") {
                return Err(format!("line {}: malformed TYPE line", i + 1));
            }
            families.push(family.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or(format!("line {}: no value", i + 1))?;
        let name = name_part.split('{').next().unwrap_or("");
        let base = name
            .strip_suffix("_total")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !families.iter().any(|f| f == base || f == name) {
            return Err(format!("line {}: sample {name:?} without TYPE", i + 1));
        }
        if value_part.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value_part:?}", i + 1));
        }
    }
    if !saw_eof {
        return Err("missing terminal # EOF".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn snapshot_renders_and_validates() {
        let mut counters = Counters::default();
        counters.add("frames.data", 42);
        let mut gauges = TimeSeriesSet::default();
        gauges.sample("queue.depth", SimTime::from_secs(1), 3.0);
        gauges.sample("queue.depth", SimTime::from_secs(2), 5.0);
        let mut digests = BTreeMap::new();
        let mut d = QuantileDigest::default();
        d.record_secs(0.25);
        d.record_secs(0.75);
        digests.insert("span.interruption".to_owned(), d);

        let doc = export_openmetrics("mobicast", &counters, &gauges, &digests);
        validate_openmetrics(&doc).expect("snapshot validates");
        assert!(doc.contains("# TYPE mobicast_frames_data counter"), "{doc}");
        assert!(doc.contains("mobicast_frames_data_total 42"), "{doc}");
        assert!(doc.contains("mobicast_queue_depth 5.0"), "{doc}");
        assert!(
            doc.contains("# TYPE mobicast_span_interruption summary"),
            "{doc}"
        );
        assert!(
            doc.contains("mobicast_span_interruption{quantile=\"1\"} 0.75"),
            "{doc}"
        );
        assert!(doc.contains("mobicast_span_interruption_count 2"), "{doc}");
        assert!(doc.ends_with("# EOF\n"), "{doc}");
    }

    #[test]
    fn sanitizer_handles_awkward_names() {
        assert_eq!(sanitize_metric_name("router.A.pim-sg"), "router_A_pim_sg");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_openmetrics("").is_err());
        assert!(validate_openmetrics("# EOF\n").is_ok());
        assert!(validate_openmetrics("orphan 1\n# EOF\n").is_err());
        assert!(validate_openmetrics("# TYPE a counter\na_total nope\n# EOF\n").is_err());
        assert!(validate_openmetrics("# TYPE a counter\na_total 3\n# EOF\nmore").is_err());
    }
}
