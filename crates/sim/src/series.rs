//! Sim-time metric series: sampled gauge timelines and a mergeable
//! quantile digest for latency-style measurements.
//!
//! Everything here is deterministic and derived from the simulation clock
//! only: a [`TimeSeries`] is a list of `(t_ns, value)` points appended in
//! sim-time order, and a [`QuantileDigest`] buckets nanosecond
//! observations with pure integer arithmetic so two runs of the same seed
//! — serial or parallel — serialize byte-identically. Wall-clock numbers
//! never enter these types; they stay in `SimProfile`.

use crate::time::SimTime;
use serde::Serialize;
use std::collections::BTreeMap;

/// One sampled gauge over simulation time: `(t_ns, value)` points in
/// ascending time order.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct TimeSeries {
    /// The samples, oldest first, as `[t_ns, value]` pairs.
    pub points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Append one sample. Samples must arrive in non-decreasing sim time;
    /// out-of-order pushes are a logic error and panic in debug builds.
    pub fn push(&mut self, at: SimTime, value: f64) {
        let t = at.as_nanos();
        debug_assert!(
            self.points.last().is_none_or(|(last, _)| *last <= t),
            "time series samples must be pushed in sim-time order"
        );
        self.points.push((t, value));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }

    /// Largest sampled value (`None` when empty). Ties resolve to the
    /// earliest sample, which keeps the result deterministic.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| match acc {
                None => Some(v),
                Some(m) if v > m => Some(v),
                Some(m) => Some(m),
            })
    }
}

/// A named collection of [`TimeSeries`], ordered by name.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct TimeSeriesSet {
    series: BTreeMap<String, TimeSeries>,
}

impl TimeSeriesSet {
    /// Append a sample to the named series, creating it on first use.
    pub fn sample(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push(at, value);
    }

    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterate series in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &TimeSeries)> {
        self.series.iter()
    }

    pub fn len(&self) -> usize {
        self.series.len()
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

/// Number of linear sub-buckets per power of two in [`QuantileDigest`].
const DIGEST_SUBBUCKET_BITS: u32 = 3;
const DIGEST_SUBBUCKETS: u64 = 1 << DIGEST_SUBBUCKET_BITS;

/// A mergeable quantile digest over nanosecond observations.
///
/// Observations land in logarithmic buckets (powers of two, each split
/// into 8 linear sub-buckets, ~12.5 % relative error); exact `count`,
/// `sum`, `min` and `max` ride alongside. Bucketing uses only integer
/// arithmetic, so digests are deterministic across platforms and merge
/// order, and two digests over the same observations serialize
/// identically.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct QuantileDigest {
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Exact smallest observation (0 when empty).
    pub min_ns: u64,
    /// Exact largest observation (0 when empty).
    pub max_ns: u64,
    /// Sparse `[bucket_index, count]` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

fn bucket_index(v: u64) -> u32 {
    if v < DIGEST_SUBBUCKETS {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - DIGEST_SUBBUCKET_BITS)) & (DIGEST_SUBBUCKETS - 1)) as u32;
    (msb - DIGEST_SUBBUCKET_BITS) * DIGEST_SUBBUCKETS as u32 + DIGEST_SUBBUCKETS as u32 + sub
}

/// Upper bound of the value range covered by `idx` (the deterministic
/// representative reported for quantiles landing in that bucket).
fn bucket_upper(idx: u32) -> u64 {
    let subs = DIGEST_SUBBUCKETS as u32;
    if idx < subs {
        return idx as u64;
    }
    let shift = (idx - subs) / subs;
    let sub = ((idx - subs) % subs) as u64;
    ((DIGEST_SUBBUCKETS + sub + 1) << shift) - 1
}

impl QuantileDigest {
    /// Record one observation, in nanoseconds.
    pub fn record_ns(&mut self, v: u64) {
        if self.count == 0 {
            self.min_ns = v;
            self.max_ns = v;
        } else {
            self.min_ns = self.min_ns.min(v);
            self.max_ns = self.max_ns.max(v);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(v);
        let idx = bucket_index(v);
        match self.buckets.binary_search_by_key(&idx, |(i, _)| *i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Record a duration given in (non-negative) seconds.
    pub fn record_secs(&mut self, secs: f64) {
        self.record_ns((secs.max(0.0) * 1e9).round() as u64);
    }

    /// Fold another digest into this one. Merge is associative and
    /// commutative, so sharded collection reduces to the same digest.
    pub fn merge(&mut self, other: &QuantileDigest) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |(i, _)| *i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, nearest-rank over
    /// the bucketed histogram. Exact at the extremes (`q == 0` returns
    /// `min`, `q >= 1` returns `max`); in between the bucket upper bound
    /// is reported, clamped to the exact `[min, max]` envelope.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min_ns;
        }
        if q >= 1.0 {
            return self.max_ns;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median in seconds.
    pub fn p50_secs(&self) -> f64 {
        self.quantile_ns(0.50) as f64 / 1e9
    }

    /// 95th percentile in seconds.
    pub fn p95_secs(&self) -> f64 {
        self.quantile_ns(0.95) as f64 / 1e9
    }

    /// 99th percentile in seconds.
    pub fn p99_secs(&self) -> f64 {
        self.quantile_ns(0.99) as f64 / 1e9
    }

    /// Exact maximum in seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_ns as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_orders_and_reports() {
        let mut s = TimeSeries::default();
        assert!(s.is_empty());
        s.push(SimTime::from_secs(1), 2.0);
        s.push(SimTime::from_secs(2), 5.0);
        s.push(SimTime::from_secs(3), 3.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some((3_000_000_000, 3.0)));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn series_set_is_name_ordered() {
        let mut set = TimeSeriesSet::default();
        set.sample("b", SimTime::ZERO, 1.0);
        set.sample("a", SimTime::ZERO, 2.0);
        set.sample("b", SimTime::from_secs(1), 3.0);
        let names: Vec<&str> = set.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(set.get("b").unwrap().len(), 2);
    }

    #[test]
    fn digest_exact_small_values() {
        let mut d = QuantileDigest::default();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            d.record_ns(v);
        }
        // Values below the sub-bucket count land in exact buckets.
        assert_eq!(d.quantile_ns(0.5), 3);
        assert_eq!(d.min_ns, 0);
        assert_eq!(d.max_ns, 7);
        assert_eq!(d.count, 8);
    }

    #[test]
    fn digest_relative_error_is_bounded() {
        let mut d = QuantileDigest::default();
        for i in 1..=1000u64 {
            d.record_ns(i * 1_000_000); // 1ms .. 1s
        }
        for q in [0.5f64, 0.95, 0.99] {
            let exact = ((q * 1000.0).ceil() as u64) * 1_000_000;
            let got = d.quantile_ns(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.15, "q={q}: got {got}, exact {exact}, err {err}");
        }
        assert_eq!(d.quantile_ns(1.0), 1_000_000_000);
        assert_eq!(d.quantile_ns(0.0), 1_000_000);
    }

    #[test]
    fn digest_merge_equals_combined() {
        let mut a = QuantileDigest::default();
        let mut b = QuantileDigest::default();
        let mut all = QuantileDigest::default();
        for i in 0..500u64 {
            let v = i * 37 + 11;
            if i % 2 == 0 {
                a.record_ns(v);
            } else {
                b.record_ns(v);
            }
            all.record_ns(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        // Commutativity.
        let mut merged2 = b;
        merged2.merge(&a);
        assert_eq!(merged2, all);
    }

    #[test]
    fn digest_serializes_deterministically() {
        let mut d = QuantileDigest::default();
        d.record_ns(1_500);
        d.record_ns(9);
        let one = serde_json::to_string(&d.to_json_value()).unwrap();
        let two = serde_json::to_string(&d.clone().to_json_value()).unwrap();
        assert_eq!(one, two);
        assert!(one.contains("\"count\":2"), "{one}");
    }
}
