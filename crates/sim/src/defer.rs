//! Deferred side-effect buffering for threaded executors.
//!
//! The threaded sharded executor dispatches node callbacks on worker
//! threads, but every observable side effect (recorder rows, series
//! samples, span records) must land in the *same order* the sequential
//! loop would have produced — that order is what makes runs byte-identical
//! across `(shards, workers)` choices.
//!
//! The mechanism is deliberately dumb: while a worker runs a node
//! callback it arms a thread-local buffer; any component that would
//! normally mutate shared run state (e.g. the core recorder) wraps the
//! mutation in a closure and hands it to [`defer_or_run`]. Armed: the
//! closure is queued. Disarmed (the sequential loop, scripts, analysis):
//! it runs on the spot. The worker ships the queued closures to the
//! coordinator, which replays them in global `(time, seq)` dispatch
//! order at the window barrier — reproducing the sequential mutation
//! order exactly, without the buffering component knowing anything about
//! shards, windows or threads.
//!
//! Allocation-style calls that must return a value immediately (tag or
//! span-id allocation) cannot be deferred; they either use atomics with
//! order-insensitive consumers or derive deterministic values from
//! per-node state.

use std::cell::RefCell;

/// One buffered side effect, replayed on the coordinator thread.
pub type DeferredOp = Box<dyn FnOnce() + Send>;

thread_local! {
    static BUFFER: RefCell<Option<Vec<DeferredOp>>> = const { RefCell::new(None) };
}

/// True while this thread is buffering side effects (i.e. between
/// [`begin`] and [`take`] on a worker thread).
pub fn is_buffering() -> bool {
    BUFFER.with(|b| b.borrow().is_some())
}

/// Queue `f` if this thread is buffering, otherwise run it immediately.
pub fn defer_or_run<F: FnOnce() + Send + 'static>(f: F) {
    BUFFER.with(|b| {
        let mut slot = b.borrow_mut();
        match slot.as_mut() {
            Some(buf) => buf.push(Box::new(f)),
            None => {
                drop(slot);
                f();
            }
        }
    });
}

/// Arm the buffer on this thread. Panics if already armed — the executor
/// brackets exactly one node callback at a time.
pub fn begin() {
    BUFFER.with(|b| {
        let mut slot = b.borrow_mut();
        assert!(slot.is_none(), "deferred-op buffer is already armed");
        *slot = Some(Vec::new());
    });
}

/// Disarm the buffer and return everything queued since [`begin`].
pub fn take() -> Vec<DeferredOp> {
    BUFFER.with(|b| {
        b.borrow_mut()
            .take()
            .expect("deferred-op buffer was not armed")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_immediately_when_disarmed() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        defer_or_run(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn buffers_in_order_when_armed() {
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        begin();
        assert!(is_buffering());
        for i in 0..3 {
            let l = log.clone();
            defer_or_run(move || l.lock().unwrap().push(i));
        }
        let ops = take();
        assert!(!is_buffering());
        assert!(log.lock().unwrap().is_empty(), "nothing ran while armed");
        for op in ops {
            op();
        }
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn ops_can_cross_threads() {
        begin();
        let flag = Arc::new(AtomicU64::new(0));
        let f = flag.clone();
        defer_or_run(move || {
            f.store(7, Ordering::SeqCst);
        });
        let ops = take();
        std::thread::spawn(move || {
            for op in ops {
                op();
            }
        })
        .join()
        .unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }
}
