//! A hierarchical timer wheel with the exact semantics of the original
//! binary-heap [`HeapEventQueue`](crate::queue::HeapEventQueue).
//!
//! The protocol stack schedules two very different kinds of events: frame
//! deliveries a few tens of microseconds ahead (link delay + serialization)
//! and soft-state timers seconds to minutes ahead (MLD queries every 125 s,
//! PIM prune holds of 210 s, binding lifetimes of 256 s). A binary heap
//! pays `O(log n)` per operation on the *total* population; the wheel
//! places every event in `O(1)` by the position of the highest bit in
//! which its tick differs from the wheel's current tick.
//!
//! Layout: ticks are `2^16` ns (~65.5 µs) wide; each of the 8 levels holds
//! 64 slots, so level `L` resolves bits `[6L, 6L+6)` of the tick and the
//! top level spans the entire `u64` nanosecond range — nothing ever
//! overflows. Events whose tick is at or below the current tick sit in a
//! small binary heap (`bottom`) that resolves sub-tick ordering exactly by
//! `(time, sequence)`; everything else hangs in the wheel. Advancing pops
//! the earliest non-empty slot: level-0 slots drain straight into the
//! bottom heap (one slot = one tick), higher slots cascade down one level
//! at a time.
//!
//! Determinism: pops are globally ordered by `(time, sequence)` — the
//! same total order the heap produced — so replacing the queue cannot
//! perturb a single run. The differential tests at the bottom drive both
//! implementations through identical random workloads and assert identical
//! pop sequences.
//!
//! Invariants maintained:
//! * every wheel entry's tick is strictly greater than `current_tick`;
//! * every bottom-heap entry's tick is at or below `current_tick`;
//! * `current_tick` only advances, and only to the base of the earliest
//!   non-empty slot — never past a pending event.

use crate::queue::EventId;
use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

/// log2 of the tick width in nanoseconds (~65.5 µs per tick).
const TICK_BITS: u32 = 16;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Levels needed so the top level spans every representable tick:
/// ticks fit in `64 - TICK_BITS = 48` bits and `8 * LEVEL_BITS = 48`.
const LEVELS: usize = 8;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_BITS
}

/// A deterministic, cancellable event queue over a hierarchical timer
/// wheel. Drop-in replacement for the heap-based queue: identical API,
/// identical pop order, identical panics.
pub struct TimerWheel<E> {
    /// `LEVELS * SLOTS` buckets; bucket `level * SLOTS + slot` holds
    /// entries whose tick matches `current_tick` above bit `6*(level+1)`
    /// and has `slot` in bits `[6*level, 6*level+6)`.
    slots: Vec<Vec<Entry<E>>>,
    /// Entries with tick <= `current_tick`, ordered exactly by `(at, seq)`.
    bottom: BinaryHeap<Reverse<Entry<E>>>,
    /// Number of entries physically stored in `slots` (including entries
    /// already cancelled but not yet swept out).
    in_wheel: usize,
    current_tick: u64,
    /// Ids scheduled but neither popped nor cancelled yet.
    pending: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    depth_high_water: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            bottom: BinaryHeap::new(),
            in_wheel: 0,
            current_tick: 0,
            pending: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            depth_high_water: 0,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Place an entry: at or below the current tick goes to the bottom
    /// heap (which resolves sub-tick order), the future goes in the wheel
    /// at the level of the highest differing tick bit.
    fn place(&mut self, entry: Entry<E>) {
        let tick = tick_of(entry.at);
        if tick <= self.current_tick {
            self.bottom.push(Reverse(entry));
            return;
        }
        let level = ((63 - (tick ^ self.current_tick).leading_zeros()) / LEVEL_BITS) as usize;
        debug_assert!(level < LEVELS);
        let slot = ((tick >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push(entry);
        self.in_wheel += 1;
    }

    /// Advance to the earliest non-empty wheel slot: drain a level-0 slot
    /// into the bottom heap, or cascade a higher slot one step down.
    /// Returns `false` when the wheel holds nothing.
    fn pull_next_slot(&mut self) -> bool {
        if self.in_wheel == 0 {
            return false;
        }
        for level in 0..LEVELS as u32 {
            let cur_slot = ((self.current_tick >> (LEVEL_BITS * level)) & SLOT_MASK) as usize;
            for slot in cur_slot + 1..SLOTS {
                let bucket = level as usize * SLOTS + slot;
                if self.slots[bucket].is_empty() {
                    continue;
                }
                let entries = std::mem::take(&mut self.slots[bucket]);
                self.in_wheel -= entries.len();
                let width = LEVEL_BITS * level;
                // Clear this level's and all lower bits, then re-apply the
                // slot index: the least tick the slot can hold.
                let base = (self.current_tick >> (width + LEVEL_BITS)) << (width + LEVEL_BITS);
                self.current_tick = base | ((slot as u64) << width);
                if level == 0 {
                    // One level-0 slot = exactly one tick.
                    self.bottom.extend(entries.into_iter().map(Reverse));
                } else {
                    for e in entries {
                        self.place(e);
                    }
                }
                return true;
            }
        }
        unreachable!("in_wheel > 0 but every slot above current_tick is empty");
    }

    /// Make the globally earliest live entry (if any) the bottom-heap top.
    /// Returns `false` when no live entries remain anywhere.
    fn settle_bottom(&mut self) -> bool {
        loop {
            while let Some(Reverse(entry)) = self.bottom.peek() {
                if self.pending.contains(&entry.seq) {
                    return true;
                }
                self.bottom.pop(); // drop cancelled
            }
            if !self.pull_next_slot() {
                return false;
            }
        }
    }

    /// Schedule `payload` for delivery at absolute time `at`.
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a DES.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.depth_high_water = self.depth_high_water.max(self.pending.len());
        self.place(Entry { at, seq, payload });
        EventId::from_raw(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` iff the event was
    /// still pending (and is now guaranteed not to fire).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.raw())
    }

    /// Consume the next sequence number without inserting an entry.
    ///
    /// The threaded sharded executor keeps shard-local events out of the
    /// global queue but still numbers them from the single global sequence
    /// counter (in merged dispatch order), so the `(time, seq)` total order
    /// — and `scheduled_total` — stay identical to a sequential run. The
    /// reserved id may later be materialized with
    /// [`schedule_at_seq`](Self::schedule_at_seq).
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Insert an entry under a sequence number previously obtained from
    /// [`reserve_seq`](Self::reserve_seq) (or from popping/holding the
    /// entry elsewhere). Does not advance the sequence counter.
    ///
    /// Panics if `seq` was never issued, is still pending, or `at` is in
    /// the past — any of those would corrupt the `(time, seq)` order.
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        assert!(seq < self.next_seq, "seq {seq} was never reserved");
        let fresh = self.pending.insert(seq);
        assert!(fresh, "seq {seq} is already pending");
        self.depth_high_water = self.depth_high_water.max(self.pending.len());
        self.place(Entry { at, seq, payload });
    }

    /// Remove and return the next event `(time, payload)`, advancing `now`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(at, _, payload)| (at, payload))
    }

    /// Remove and return the next event together with its [`EventId`],
    /// advancing `now`. Same order as [`pop`](Self::pop).
    pub fn pop_entry(&mut self) -> Option<(SimTime, EventId, E)> {
        if !self.settle_bottom() {
            return None;
        }
        let Reverse(entry) = self.bottom.pop().expect("settled bottom is non-empty");
        let removed = self.pending.remove(&entry.seq);
        debug_assert!(removed, "settled top must be live");
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, EventId::from_raw(entry.seq), entry.payload))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| at)
    }

    /// `(time, seq)` pop-order key of the next pending event without
    /// popping it.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.settle_bottom() {
            return None;
        }
        self.bottom.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of live (scheduled, not fired, not cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Highest number of simultaneously live events ever observed
    /// (diagnostic; maintained on every `schedule`, so it is always on and
    /// costs one comparison).
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Advance the clock to `t` without popping anything. Panics if a live
    /// event earlier than `t` is still pending (that event must be popped
    /// first) or if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance backwards");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= t,
                "cannot advance past pending event at {next:?} to {t:?}"
            );
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::HeapEventQueue;
    use crate::time::SimDuration;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Schedules spanning every wheel level pop in global time order.
    #[test]
    fn cross_level_ordering() {
        let mut q: TimerWheel<u64> = TimerWheel::new();
        // Nanosecond offsets hitting bottom, level 0, and several higher
        // levels (1 tick = 2^16 ns; level L spans 2^(16+6L) ns).
        let offsets: [u64; 12] = [
            0,
            1,
            0xffff,          // same tick as 0 (bottom)
            0x1_0000,        // level 0
            0x2_0001,        // level 0
            0x40_0000,       // level 1
            0x41_1234,       // level 1
            0x1000_0000,     // level 2
            0x4_0000_0000,   // level 3
            0x100_0000_0000, // level 4
            3_600_000_000_000,
            86_400_000_000_000,
        ];
        let mut expect: Vec<u64> = offsets.to_vec();
        for &n in offsets.iter().rev() {
            q.schedule(SimTime::from_nanos(n), n);
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        while let Some((at, v)) = q.pop() {
            assert_eq!(at.as_nanos(), v);
            got.push(v);
        }
        assert_eq!(got, expect);
    }

    /// A cascaded slot keeps FIFO order for entries at the same instant.
    #[test]
    fn cascade_preserves_fifo_within_instant() {
        let mut q = TimerWheel::new();
        // Far enough out to start at a high level, forcing cascades.
        let far = SimTime::from_secs(300);
        for i in 0..50 {
            q.schedule(far, i);
        }
        // An earlier event so the cascade happens on pop, not at once.
        q.schedule(t(1), 999);
        assert_eq!(q.pop(), Some((t(1), 999)));
        for i in 0..50 {
            assert_eq!(q.pop(), Some((far, i)));
        }
        assert_eq!(q.pop(), None);
    }

    /// Scheduling between `now` and a far-pending event after the wheel
    /// has advanced lands in the correct order (the regression the bottom
    /// heap exists for: `advance_to` may leave `current_tick` beyond a
    /// later schedule's tick).
    #[test]
    fn schedule_below_current_tick_after_advance() {
        let mut q = TimerWheel::new();
        q.schedule(t(100), "far");
        // peek advances the wheel cursor toward t=100.
        assert_eq!(q.peek_time(), Some(t(100)));
        q.advance_to(t(50));
        // New event between now (50 s) and the pending one.
        q.schedule(t(60), "mid");
        q.schedule(t(55), "near");
        assert_eq!(q.pop(), Some((t(55), "near")));
        assert_eq!(q.pop(), Some((t(60), "mid")));
        assert_eq!(q.pop(), Some((t(100), "far")));
    }

    /// Cancelled entries inside un-cascaded wheel slots are skipped.
    #[test]
    fn cancel_inside_wheel_slot() {
        let mut q = TimerWheel::new();
        let a = q.schedule(t(200), "a");
        q.schedule(t(200), "b");
        let c = q.schedule(t(300), "c");
        assert!(q.cancel(a));
        assert!(q.cancel(c));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(200)));
        assert_eq!(q.pop(), Some((t(200), "b")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    /// The differential harness: the wheel and the reference heap queue
    /// process an identical randomized schedule/cancel/pop/advance script
    /// and must emit identical pop sequences and identical diagnostics.
    #[test]
    fn differential_against_heap_queue() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(diff_seed(seed));
            let mut wheel: TimerWheel<u64> = TimerWheel::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut live: Vec<(EventId, EventId)> = Vec::new();
            let mut payload = 0u64;
            for _ in 0..4000 {
                match rng.random_range(0..10u32) {
                    // Schedule with a mix of horizons: sub-tick, sub-ms,
                    // seconds, minutes — every level gets traffic.
                    0..=5 => {
                        let horizon = match rng.random_range(0..4u32) {
                            0 => rng.random_range(0..0x1_0000u64),
                            1 => rng.random_range(0..1_000_000),
                            2 => rng.random_range(0..5_000_000_000),
                            _ => rng.random_range(0..400_000_000_000),
                        };
                        let at =
                            SimTime::from_nanos(wheel.now().as_nanos().saturating_add(horizon));
                        payload += 1;
                        let iw = wheel.schedule(at, payload);
                        let ih = heap.schedule(at, payload);
                        live.push((iw, ih));
                    }
                    6..=7 => {
                        assert_eq!(wheel.pop(), heap.pop());
                        assert_eq!(wheel.now(), heap.now());
                    }
                    8 => {
                        if !live.is_empty() {
                            let k = rng.random_range(0..live.len());
                            let (iw, ih) = live.swap_remove(k);
                            assert_eq!(wheel.cancel(iw), heap.cancel(ih));
                        }
                    }
                    _ => {
                        assert_eq!(wheel.peek_time(), heap.peek_time());
                        if let Some(next) = wheel.peek_time() {
                            // Advance halfway to the next event.
                            let mid = SimTime::from_nanos(
                                wheel.now().as_nanos()
                                    + (next.as_nanos() - wheel.now().as_nanos()) / 2,
                            );
                            wheel.advance_to(mid);
                            heap.advance_to(mid);
                        }
                    }
                }
                assert_eq!(wheel.len(), heap.len());
                assert_eq!(wheel.is_empty(), heap.is_empty());
            }
            // Drain both completely.
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
            assert_eq!(wheel.depth_high_water(), heap.depth_high_water());
        }
    }

    /// Domain-separate the differential seeds from other tests.
    fn diff_seed(seed: u64) -> u64 {
        seed ^ 0x51f7_d1ff
    }

    #[test]
    fn advance_to_far_future_then_reschedule() {
        let mut q = TimerWheel::new();
        q.advance_to(SimTime::from_secs(1000));
        q.schedule(SimTime::from_secs(1000), "same-instant");
        q.schedule(SimTime::from_secs(1001), "later");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1000), "same-instant")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1001), "later")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn schedule_into_past_panics() {
        let mut q = TimerWheel::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(1), ());
    }

    #[test]
    fn dense_same_tick_burst_stays_fifo() {
        let mut q = TimerWheel::new();
        let base = SimTime::from_nanos(123_456_789);
        for i in 0..500u32 {
            // All inside one tick (spread < 2^16 ns), many at equal times.
            q.schedule(base + SimDuration::from_nanos(u64::from(i % 7)), i);
        }
        let mut last: Option<(SimTime, u32)> = None;
        while let Some((at, v)) = q.pop() {
            if let Some((lat, lv)) = last {
                assert!(at > lat || (at == lat && v > lv), "order violated");
            }
            last = Some((at, v));
        }
    }
}
