//! Structured trace of simulation activity.
//!
//! Traces are the debugging backbone of the simulator: every protocol event
//! (packet send, state transition, timer) can be emitted as a `TraceEvent`.
//! Sinks decide what to do with them — collect, print, or drop.
//!
//! Events come in two flavours: free-form notes (`kind == "note"`, message
//! text only) and *typed* events (a stable `kind` string plus typed
//! key/value fields), which survive machine processing. Typed events are
//! what the JSONL export ([`jsonl_line`]) and the packet-journey explainer
//! consume; the schema is versioned ([`TRACE_SCHEMA_VERSION`]) and every
//! exported line can be checked with [`validate_jsonl_line`].

use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Category of a trace event, used for filtering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Frame handed to a link / delivered from a link.
    Link,
    /// IPv6 forwarding decisions.
    Forwarding,
    /// MLD protocol activity.
    Mld,
    /// PIM-DM protocol activity.
    Pim,
    /// Mobile IPv6 activity (binding updates, tunnels).
    MobileIp,
    /// Host mobility (attach/detach).
    Mobility,
    /// Application layer (source/sink).
    App,
    /// Simulation harness bookkeeping.
    Harness,
    /// Injected faults (loss bursts, link flaps, crashes).
    Fault,
    /// Overload admission control (sheds, evictions, rate-limit drops).
    Overload,
    /// Causal span lifecycle (open/close of handoff-phase spans).
    Span,
}

impl TraceCategory {
    /// Stable short name used in text output and the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            TraceCategory::Link => "link",
            TraceCategory::Forwarding => "fwd",
            TraceCategory::Mld => "mld",
            TraceCategory::Pim => "pim",
            TraceCategory::MobileIp => "mip6",
            TraceCategory::Mobility => "move",
            TraceCategory::App => "app",
            TraceCategory::Harness => "sim",
            TraceCategory::Fault => "fault",
            TraceCategory::Overload => "ovl",
            TraceCategory::Span => "span",
        }
    }

    /// Single-bit mask for this category, positioned by declaration order
    /// (matches [`Tracer::enabled_mask`]).
    pub fn bit(self) -> u16 {
        1 << (self as usize)
    }

    /// Every category, in declaration order (used by schema validation).
    pub const ALL: [TraceCategory; 11] = [
        TraceCategory::Link,
        TraceCategory::Forwarding,
        TraceCategory::Mld,
        TraceCategory::Pim,
        TraceCategory::MobileIp,
        TraceCategory::Mobility,
        TraceCategory::App,
        TraceCategory::Harness,
        TraceCategory::Fault,
        TraceCategory::Overload,
        TraceCategory::Span,
    ];
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed field value attached to a structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(n) => write!(f, "{n}"),
            FieldValue::I64(n) => write!(f, "{n}"),
            FieldValue::F64(x) => write!(f, "{x}"),
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(n: u64) -> Self {
        FieldValue::U64(n)
    }
}
impl From<u32> for FieldValue {
    fn from(n: u32) -> Self {
        FieldValue::U64(n as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(n: usize) -> Self {
        FieldValue::U64(n as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(n: i64) -> Self {
        FieldValue::I64(n)
    }
}
impl From<f64> for FieldValue {
    fn from(x: f64) -> Self {
        FieldValue::F64(x)
    }
}
impl From<bool> for FieldValue {
    fn from(b: bool) -> Self {
        FieldValue::Bool(b)
    }
}
impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}
impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_owned())
    }
}
impl From<std::net::Ipv6Addr> for FieldValue {
    fn from(a: std::net::Ipv6Addr) -> Self {
        FieldValue::Str(a.to_string())
    }
}

/// Field list of a typed event.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// Event kind used for free-form string messages (the legacy emit path).
pub const NOTE_KIND: &str = "note";

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub at: SimTime,
    pub category: TraceCategory,
    /// Identifier of the node the event happened on (usize::MAX = global).
    pub node: usize,
    /// Stable machine-readable event kind (`"note"` for free-form messages).
    pub kind: &'static str,
    /// Typed key/value payload (empty for free-form messages).
    pub fields: Fields,
    pub message: String,
}

impl TraceEvent {
    /// A free-form note (legacy string-message event).
    pub fn note(at: SimTime, category: TraceCategory, node: usize, message: String) -> Self {
        TraceEvent {
            at,
            category,
            node,
            kind: NOTE_KIND,
            fields: Vec::new(),
            message,
        }
    }

    /// A typed event with a stable kind and key/value fields.
    pub fn typed(
        at: SimTime,
        category: TraceCategory,
        node: usize,
        kind: &'static str,
        fields: Fields,
    ) -> Self {
        TraceEvent {
            at,
            category,
            node,
            kind,
            fields,
            message: String::new(),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6} {:>4} n{:<3}] ",
            self.at.as_secs_f64(),
            self.category,
            self.node,
        )?;
        if self.kind != NOTE_KIND {
            write!(f, "{}", self.kind)?;
            for (k, v) in &self.fields {
                write!(f, " {k}={v}")?;
            }
            if !self.message.is_empty() {
                write!(f, " ")?;
            }
        }
        f.write_str(&self.message)
    }
}

// --- JSONL export ---------------------------------------------------------

/// Schema identifier written in the header line of every trace export.
pub const TRACE_SCHEMA: &str = "mobicast-trace";
/// Version of the export schema; bump on any incompatible line change.
/// v2 added the `span` category (span_open/span_close lifecycle events)
/// and the optional `dropped` header field; v1 lines remain valid.
pub const TRACE_SCHEMA_VERSION: u64 = 2;
/// Oldest schema version [`validate_jsonl_line`] still accepts.
pub const TRACE_SCHEMA_MIN_VERSION: u64 = 1;

fn field_to_json(v: &FieldValue) -> serde_json::Value {
    use serde_json::Value;
    match v {
        FieldValue::U64(n) => Value::U64(*n),
        FieldValue::I64(n) => Value::I64(*n),
        FieldValue::F64(x) => Value::F64(*x),
        FieldValue::Bool(b) => Value::Bool(*b),
        FieldValue::Str(s) => Value::Str(s.clone()),
    }
}

impl TraceEvent {
    /// The event as one schema-versioned JSON object (one JSONL line).
    pub fn to_json_value(&self) -> serde_json::Value {
        use serde_json::Value;
        let mut members = vec![
            ("v".to_owned(), Value::U64(TRACE_SCHEMA_VERSION)),
            ("t_ns".to_owned(), Value::U64(self.at.as_nanos())),
            ("node".to_owned(), Value::U64(self.node as u64)),
            (
                "cat".to_owned(),
                Value::Str(self.category.name().to_owned()),
            ),
            ("kind".to_owned(), Value::Str(self.kind.to_owned())),
            (
                "fields".to_owned(),
                Value::Object(
                    self.fields
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), field_to_json(v)))
                        .collect(),
                ),
            ),
        ];
        if !self.message.is_empty() {
            members.push(("msg".to_owned(), Value::Str(self.message.clone())));
        }
        Value::Object(members)
    }
}

/// The header line starting every JSONL trace export.
pub fn jsonl_header() -> String {
    format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_SCHEMA_VERSION}}}")
}

/// Header line carrying the count of events evicted from a bounded
/// collector before export (how much history the file is missing).
pub fn jsonl_header_with_dropped(dropped: u64) -> String {
    format!(
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_SCHEMA_VERSION},\"dropped\":{dropped}}}"
    )
}

/// One compact JSONL line for an event (no trailing newline).
pub fn jsonl_line(event: &TraceEvent) -> String {
    serde_json::to_string(&event.to_json_value()).expect("trace serialization is infallible")
}

/// Check one line of a trace export against the versioned schema.
///
/// Accepts either the header line or an event line; returns a description
/// of the first problem found. Used by the CI telemetry job and tests.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let v = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let version_ok = |n: Option<u64>| {
        n.is_some_and(|n| (TRACE_SCHEMA_MIN_VERSION..=TRACE_SCHEMA_VERSION).contains(&n))
    };
    if v.get("schema").is_some() {
        if v["schema"].as_str() != Some(TRACE_SCHEMA) {
            return Err(format!("unknown schema {:?}", v["schema"].as_str()));
        }
        if !version_ok(v["version"].as_u64()) {
            return Err(format!("unsupported version {:?}", v["version"].as_u64()));
        }
        if v.get("dropped").is_some() && v["dropped"].as_u64().is_none() {
            return Err("non-integer \"dropped\" in header".into());
        }
        return Ok(());
    }
    if !version_ok(v["v"].as_u64()) {
        return Err(format!("bad or missing \"v\": {:?}", v["v"].as_u64()));
    }
    if v["t_ns"].as_u64().is_none() {
        return Err("missing u64 \"t_ns\"".into());
    }
    if v["node"].as_u64().is_none() {
        return Err("missing u64 \"node\"".into());
    }
    let cat = v["cat"].as_str().ok_or("missing string \"cat\"")?;
    if !TraceCategory::ALL.iter().any(|c| c.name() == cat) {
        return Err(format!("unknown category {cat:?}"));
    }
    let kind = v["kind"].as_str().ok_or("missing string \"kind\"")?;
    if kind.is_empty() {
        return Err("empty \"kind\"".into());
    }
    let fields = v["fields"].as_object().ok_or("missing object \"fields\"")?;
    for (key, val) in fields {
        match val {
            serde_json::Value::U64(_)
            | serde_json::Value::I64(_)
            | serde_json::Value::F64(_)
            | serde_json::Value::Bool(_)
            | serde_json::Value::Str(_) => {}
            _ => return Err(format!("field {key:?} is not a scalar")),
        }
    }
    Ok(())
}

/// Where trace events go.
pub trait TraceSink {
    fn emit(&mut self, event: TraceEvent);
    /// Fast-path check so callers can skip formatting entirely.
    fn enabled(&self, _category: TraceCategory) -> bool {
        true
    }
}

/// Drops everything; `enabled` returns false so callers skip formatting.
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: TraceEvent) {}
    fn enabled(&self, _category: TraceCategory) -> bool {
        false
    }
}

/// Collects events in memory (used heavily by tests).
#[derive(Default)]
pub struct VecSink {
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Prints events to stdout, optionally restricted to some categories.
pub struct StdoutSink {
    /// If `Some`, only these categories are printed.
    pub filter: Option<Vec<TraceCategory>>,
}

impl StdoutSink {
    pub fn all() -> Self {
        StdoutSink { filter: None }
    }

    pub fn only(categories: Vec<TraceCategory>) -> Self {
        StdoutSink {
            filter: Some(categories),
        }
    }
}

impl TraceSink for StdoutSink {
    fn emit(&mut self, event: TraceEvent) {
        println!("{event}");
    }
    fn enabled(&self, category: TraceCategory) -> bool {
        match &self.filter {
            None => true,
            Some(cats) => cats.contains(&category),
        }
    }
}

/// Shared handle to a trace sink. The simulation is single-threaded, so
/// `Rc<RefCell<..>>` is the right tool (no atomics on the hot path).
#[derive(Clone)]
pub struct Tracer {
    sink: Rc<RefCell<dyn TraceSink>>,
}

impl Tracer {
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Tracer {
            sink: Rc::new(RefCell::new(sink)),
        }
    }

    /// A tracer that discards everything.
    pub fn null() -> Self {
        Tracer::new(NullSink)
    }

    pub fn enabled(&self, category: TraceCategory) -> bool {
        self.sink.borrow().enabled(category)
    }

    /// Snapshot of the per-category enabled set as a bitmask indexed by
    /// position in [`TraceCategory::ALL`]. Worker threads cannot hold the
    /// (single-threaded) tracer, so the executor snapshots this mask and
    /// lets workers materialize events for enabled categories only.
    pub fn enabled_mask(&self) -> u16 {
        let sink = self.sink.borrow();
        let mut mask = 0u16;
        for (i, c) in TraceCategory::ALL.iter().enumerate() {
            if sink.enabled(*c) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Emit an already-materialized event (replay path of the threaded
    /// executor). Re-checks the category so sinks never see events they
    /// declared disabled.
    pub fn emit_raw(&self, event: TraceEvent) {
        if self.enabled(event.category) {
            self.sink.borrow_mut().emit(event);
        }
    }

    pub fn emit(&self, at: SimTime, category: TraceCategory, node: usize, message: String) {
        if self.enabled(category) {
            self.sink
                .borrow_mut()
                .emit(TraceEvent::note(at, category, node, message));
        }
    }

    /// Emit with lazy message construction: the closure runs only when the
    /// category is enabled.
    pub fn emit_with(
        &self,
        at: SimTime,
        category: TraceCategory,
        node: usize,
        f: impl FnOnce() -> String,
    ) {
        if self.enabled(category) {
            self.sink
                .borrow_mut()
                .emit(TraceEvent::note(at, category, node, f()));
        }
    }

    /// Emit a typed event; the field closure runs only when the category is
    /// enabled, so disabled tracing pays one virtual call and nothing else.
    pub fn emit_typed(
        &self,
        at: SimTime,
        category: TraceCategory,
        node: usize,
        kind: &'static str,
        fields: impl FnOnce() -> Fields,
    ) {
        if self.enabled(category) {
            self.sink
                .borrow_mut()
                .emit(TraceEvent::typed(at, category, node, kind, fields()));
        }
    }
}

/// Bounded in-memory sink: keeps the most recent `capacity` events and
/// counts how many older ones were evicted. This is the default sink for
/// trace export — a run of any length uses bounded memory, and the export
/// records how much history was lost.
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// If `Some`, only these categories are recorded.
    pub filter: Option<Vec<TraceCategory>>,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
            filter: None,
        }
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
    fn enabled(&self, category: TraceCategory) -> bool {
        match &self.filter {
            None => true,
            Some(cats) => cats.contains(&category),
        }
    }
}

/// A tracer backed by a [`RingBufferSink`] whose contents can be drained
/// after the run (same shared-handle pattern as [`CapturingTracer`]).
pub struct RingBufferTracer {
    sink: Rc<RefCell<RingBufferSink>>,
}

impl RingBufferTracer {
    pub fn new(capacity: usize) -> (Tracer, RingBufferTracer) {
        let sink = Rc::new(RefCell::new(RingBufferSink::new(capacity)));
        let tracer = Tracer { sink: sink.clone() };
        (tracer, RingBufferTracer { sink })
    }

    /// Number of events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.sink.borrow().dropped
    }

    pub fn len(&self) -> usize {
        self.sink.borrow().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sink.borrow().events.is_empty()
    }

    /// Remove and return all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.sink.borrow_mut().events.drain(..).collect()
    }

    /// Render the buffered events as a full JSONL export: header line first
    /// (carrying the evicted-event count, so lost history is visible in the
    /// file itself), then one line per event, oldest first.
    pub fn export_jsonl(&self) -> String {
        let sink = self.sink.borrow();
        let mut out = jsonl_header_with_dropped(sink.dropped);
        out.push('\n');
        for e in &sink.events {
            out.push_str(&jsonl_line(e));
            out.push('\n');
        }
        out
    }
}

/// A tracer whose `VecSink` can be inspected after the run (test helper).
pub struct CapturingTracer {
    events: Rc<RefCell<VecSink>>,
}

impl CapturingTracer {
    #[allow(clippy::new_without_default)]
    pub fn new() -> (Tracer, CapturingTracer) {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let tracer = Tracer { sink: sink.clone() };
        (tracer, CapturingTracer { events: sink })
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().events.clone()
    }

    pub fn messages_in(&self, category: TraceCategory) -> Vec<String> {
        self.events
            .borrow()
            .events
            .iter()
            .filter(|e| e.category == category)
            .map(|e| e.message.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_disables_formatting() {
        let t = Tracer::null();
        assert!(!t.enabled(TraceCategory::Pim));
        let mut called = false;
        t.emit_with(SimTime::ZERO, TraceCategory::Pim, 0, || {
            called = true;
            String::new()
        });
        assert!(!called, "lazy closure must not run for a null sink");
    }

    #[test]
    fn capturing_tracer_records() {
        let (t, cap) = CapturingTracer::new();
        t.emit(SimTime::from_secs(1), TraceCategory::Mld, 3, "join".into());
        t.emit(SimTime::from_secs(2), TraceCategory::Pim, 4, "graft".into());
        let events = cap.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].node, 3);
        assert_eq!(cap.messages_in(TraceCategory::Pim), vec!["graft"]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::note(
            SimTime::from_millis(1500),
            TraceCategory::Mobility,
            7,
            "moved".into(),
        );
        let s = format!("{e}");
        assert!(s.contains("move"));
        assert!(s.contains("n7"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn typed_events_format_and_export() {
        let (t, cap) = CapturingTracer::new();
        t.emit_typed(
            SimTime::from_secs(2),
            TraceCategory::Pim,
            4,
            "assert",
            || vec![("iface", 1u32.into()), ("won", true.into())],
        );
        let events = cap.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, "assert");
        let s = format!("{e}");
        assert!(s.contains("assert iface=1 won=true"), "{s}");

        let line = jsonl_line(e);
        validate_jsonl_line(&line).expect("typed event line is schema-valid");
        validate_jsonl_line(&jsonl_header()).expect("header line is schema-valid");
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v["kind"].as_str(), Some("assert"));
        assert_eq!(v["t_ns"].as_u64(), Some(2_000_000_000));
        assert_eq!(v["fields"]["iface"].as_u64(), Some(1));
    }

    #[test]
    fn typed_closure_skipped_when_disabled() {
        let t = Tracer::null();
        let mut called = false;
        t.emit_typed(SimTime::ZERO, TraceCategory::Pim, 0, "x", || {
            called = true;
            vec![]
        });
        assert!(!called);
    }

    #[test]
    fn ring_buffer_bounds_memory() {
        let (t, ring) = RingBufferTracer::new(3);
        for i in 0..5u64 {
            t.emit_typed(SimTime::from_secs(i), TraceCategory::App, 0, "tick", || {
                vec![("i", i.into())]
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let export = ring.export_jsonl();
        let mut lines = export.lines();
        validate_jsonl_line(lines.next().unwrap()).unwrap();
        let rest: Vec<&str> = lines.collect();
        assert_eq!(rest.len(), 3);
        for line in &rest {
            validate_jsonl_line(line).unwrap();
        }
        // Oldest surviving event is i=2.
        let first = serde_json::from_str(rest[0]).unwrap();
        assert_eq!(first["fields"]["i"].as_u64(), Some(2));
        // The eviction count survives export in the header line.
        let header = serde_json::from_str(export.lines().next().unwrap()).unwrap();
        assert_eq!(header["dropped"].as_u64(), Some(2));
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn validation_rejects_bad_lines() {
        assert!(validate_jsonl_line("not json").is_err());
        assert!(validate_jsonl_line("{\"v\":1}").is_err());
        assert!(validate_jsonl_line(
            "{\"v\":1,\"t_ns\":0,\"node\":0,\"cat\":\"nope\",\"kind\":\"x\",\"fields\":{}}"
        )
        .is_err());
        assert!(validate_jsonl_line(
            "{\"v\":1,\"t_ns\":0,\"node\":0,\"cat\":\"pim\",\"kind\":\"x\",\"fields\":{\"a\":[]}}"
        )
        .is_err());
        assert!(validate_jsonl_line(
            "{\"v\":1,\"t_ns\":0,\"node\":0,\"cat\":\"pim\",\"kind\":\"x\",\"fields\":{\"a\":1}}"
        )
        .is_ok());
        assert!(validate_jsonl_line("{\"schema\":\"mobicast-trace\",\"version\":99}").is_err());
    }

    #[test]
    fn validation_spans_schema_versions() {
        // v1 headers and lines (pre-span exports) must keep validating.
        assert!(validate_jsonl_line("{\"schema\":\"mobicast-trace\",\"version\":1}").is_ok());
        assert!(validate_jsonl_line("{\"schema\":\"mobicast-trace\",\"version\":2}").is_ok());
        assert!(
            validate_jsonl_line("{\"schema\":\"mobicast-trace\",\"version\":2,\"dropped\":7}")
                .is_ok()
        );
        assert!(validate_jsonl_line(
            "{\"schema\":\"mobicast-trace\",\"version\":2,\"dropped\":\"x\"}"
        )
        .is_err());
        // The v2 span category validates; it is part of the closed set.
        assert!(validate_jsonl_line(
            "{\"v\":2,\"t_ns\":0,\"node\":0,\"cat\":\"span\",\"kind\":\"span_open\",\"fields\":{\"id\":1}}"
        )
        .is_ok());
        assert!(validate_jsonl_line(
            "{\"v\":3,\"t_ns\":0,\"node\":0,\"cat\":\"pim\",\"kind\":\"x\",\"fields\":{}}"
        )
        .is_err());
    }

    #[test]
    fn stdout_filter_logic() {
        let s = StdoutSink::only(vec![TraceCategory::Mld]);
        assert!(s.enabled(TraceCategory::Mld));
        assert!(!s.enabled(TraceCategory::Pim));
        assert!(StdoutSink::all().enabled(TraceCategory::Pim));
    }
}
