//! Structured trace of simulation activity.
//!
//! Traces are the debugging backbone of the simulator: every protocol event
//! (packet send, state transition, timer) can be emitted as a `TraceEvent`.
//! Sinks decide what to do with them — collect, print, or drop.

use crate::time::SimTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Category of a trace event, used for filtering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Frame handed to a link / delivered from a link.
    Link,
    /// IPv6 forwarding decisions.
    Forwarding,
    /// MLD protocol activity.
    Mld,
    /// PIM-DM protocol activity.
    Pim,
    /// Mobile IPv6 activity (binding updates, tunnels).
    MobileIp,
    /// Host mobility (attach/detach).
    Mobility,
    /// Application layer (source/sink).
    App,
    /// Simulation harness bookkeeping.
    Harness,
    /// Injected faults (loss bursts, link flaps, crashes).
    Fault,
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Link => "link",
            TraceCategory::Forwarding => "fwd",
            TraceCategory::Mld => "mld",
            TraceCategory::Pim => "pim",
            TraceCategory::MobileIp => "mip6",
            TraceCategory::Mobility => "move",
            TraceCategory::App => "app",
            TraceCategory::Harness => "sim",
            TraceCategory::Fault => "fault",
        };
        f.write_str(s)
    }
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub at: SimTime,
    pub category: TraceCategory,
    /// Identifier of the node the event happened on (usize::MAX = global).
    pub node: usize,
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6} {:>4} n{:<3}] {}",
            self.at.as_secs_f64(),
            self.category,
            self.node,
            self.message
        )
    }
}

/// Where trace events go.
pub trait TraceSink {
    fn emit(&mut self, event: TraceEvent);
    /// Fast-path check so callers can skip formatting entirely.
    fn enabled(&self, _category: TraceCategory) -> bool {
        true
    }
}

/// Drops everything; `enabled` returns false so callers skip formatting.
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: TraceEvent) {}
    fn enabled(&self, _category: TraceCategory) -> bool {
        false
    }
}

/// Collects events in memory (used heavily by tests).
#[derive(Default)]
pub struct VecSink {
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Prints events to stdout, optionally restricted to some categories.
pub struct StdoutSink {
    /// If `Some`, only these categories are printed.
    pub filter: Option<Vec<TraceCategory>>,
}

impl StdoutSink {
    pub fn all() -> Self {
        StdoutSink { filter: None }
    }

    pub fn only(categories: Vec<TraceCategory>) -> Self {
        StdoutSink {
            filter: Some(categories),
        }
    }
}

impl TraceSink for StdoutSink {
    fn emit(&mut self, event: TraceEvent) {
        println!("{event}");
    }
    fn enabled(&self, category: TraceCategory) -> bool {
        match &self.filter {
            None => true,
            Some(cats) => cats.contains(&category),
        }
    }
}

/// Shared handle to a trace sink. The simulation is single-threaded, so
/// `Rc<RefCell<..>>` is the right tool (no atomics on the hot path).
#[derive(Clone)]
pub struct Tracer {
    sink: Rc<RefCell<dyn TraceSink>>,
}

impl Tracer {
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Tracer {
            sink: Rc::new(RefCell::new(sink)),
        }
    }

    /// A tracer that discards everything.
    pub fn null() -> Self {
        Tracer::new(NullSink)
    }

    pub fn enabled(&self, category: TraceCategory) -> bool {
        self.sink.borrow().enabled(category)
    }

    pub fn emit(&self, at: SimTime, category: TraceCategory, node: usize, message: String) {
        if self.enabled(category) {
            self.sink.borrow_mut().emit(TraceEvent {
                at,
                category,
                node,
                message,
            });
        }
    }

    /// Emit with lazy message construction: the closure runs only when the
    /// category is enabled.
    pub fn emit_with(
        &self,
        at: SimTime,
        category: TraceCategory,
        node: usize,
        f: impl FnOnce() -> String,
    ) {
        if self.enabled(category) {
            self.sink.borrow_mut().emit(TraceEvent {
                at,
                category,
                node,
                message: f(),
            });
        }
    }
}

/// A tracer whose `VecSink` can be inspected after the run (test helper).
pub struct CapturingTracer {
    events: Rc<RefCell<VecSink>>,
}

impl CapturingTracer {
    #[allow(clippy::new_without_default)]
    pub fn new() -> (Tracer, CapturingTracer) {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let tracer = Tracer { sink: sink.clone() };
        (tracer, CapturingTracer { events: sink })
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().events.clone()
    }

    pub fn messages_in(&self, category: TraceCategory) -> Vec<String> {
        self.events
            .borrow()
            .events
            .iter()
            .filter(|e| e.category == category)
            .map(|e| e.message.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_disables_formatting() {
        let t = Tracer::null();
        assert!(!t.enabled(TraceCategory::Pim));
        let mut called = false;
        t.emit_with(SimTime::ZERO, TraceCategory::Pim, 0, || {
            called = true;
            String::new()
        });
        assert!(!called, "lazy closure must not run for a null sink");
    }

    #[test]
    fn capturing_tracer_records() {
        let (t, cap) = CapturingTracer::new();
        t.emit(SimTime::from_secs(1), TraceCategory::Mld, 3, "join".into());
        t.emit(SimTime::from_secs(2), TraceCategory::Pim, 4, "graft".into());
        let events = cap.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].node, 3);
        assert_eq!(cap.messages_in(TraceCategory::Pim), vec!["graft"]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: SimTime::from_millis(1500),
            category: TraceCategory::Mobility,
            node: 7,
            message: "moved".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("move"));
        assert!(s.contains("n7"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn stdout_filter_logic() {
        let s = StdoutSink::only(vec![TraceCategory::Mld]);
        assert!(s.enabled(TraceCategory::Mld));
        assert!(!s.enabled(TraceCategory::Pim));
        assert!(StdoutSink::all().enabled(TraceCategory::Pim));
    }
}
