//! A dependency-free scoped worker pool for deterministic fan-out.
//!
//! Every scenario run is single-threaded and deterministic in its seed, so
//! a sweep of independent runs parallelizes trivially: workers pull input
//! indices from a shared counter, send `(index, output)` pairs back over a
//! channel, and the caller scatters them into input order. The output is
//! therefore **bit-identical regardless of worker count or OS scheduling**
//! — the property the determinism-parity harness asserts by re-running
//! every experiment with `workers = 1` and comparing JSON byte-for-byte.
//!
//! Worker count resolution (first match wins):
//! 1. a programmatic override installed with [`set_worker_override`]
//!    (used by the parity harness to force serial execution),
//! 2. the `MOBICAST_WORKERS` environment variable,
//! 3. `std::thread::available_parallelism()`, clamped to [1, 16].
//!
//! With one worker the pool spawns no threads at all: the closure runs
//! inline on the caller's thread, so "serial" really is the plain loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Sentinel for "no override installed".
const NO_OVERRIDE: usize = 0;

static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(NO_OVERRIDE);

/// Force every subsequent [`configured_workers`] call to return `n`
/// (process-wide). `None` removes the override. Returns the previous
/// override. Intended for the determinism-parity harness and the
/// experiment binaries' `--workers` flag, not for concurrent juggling.
pub fn set_worker_override(n: Option<usize>) -> Option<usize> {
    let raw = match n {
        Some(n) => {
            assert!(n >= 1, "worker override must be >= 1");
            n
        }
        None => NO_OVERRIDE,
    };
    match WORKER_OVERRIDE.swap(raw, Ordering::SeqCst) {
        NO_OVERRIDE => None,
        prev => Some(prev),
    }
}

/// Resolve the worker count: override, then `MOBICAST_WORKERS`, then
/// available parallelism clamped to [1, 16].
pub fn configured_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::SeqCst) {
        NO_OVERRIDE => {}
        n => return n,
    }
    if let Ok(v) = std::env::var("MOBICAST_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid MOBICAST_WORKERS={v:?}");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Run `f` over every input on up to `workers` scoped threads, returning
/// the outputs **in input order** whatever the scheduling.
///
/// `workers == 1` runs inline on the caller's thread (no spawn, no
/// channel): the serial reference execution of the parity harness.
pub fn run_ordered<I, O, F>(inputs: Vec<I>, workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    let n = inputs.len();
    if workers == 1 || n <= 1 {
        return inputs.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let next_ref = &next;
    let inputs_ref = &inputs;
    let f_ref = &f;
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    let mut results: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f_ref(&inputs_ref[i]);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect on the caller's thread while workers run; scattering by
        // index restores input order deterministically.
        for (i, out) in rx {
            debug_assert!(results[i].is_none(), "input {i} processed twice");
            results[i] = Some(out);
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("every input processed"))
        .collect()
}

/// Convenience: run with an override installed for the duration of `g`,
/// restoring the previous override afterwards (even on unwind).
pub fn with_workers<R>(n: usize, g: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_worker_override(self.0);
        }
    }
    let _restore = Restore(set_worker_override(Some(n)));
    g()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let inputs: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = inputs.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 7, 16] {
            let out = run_ordered(inputs.clone(), workers, |x| x * 3);
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let inputs: Vec<u64> = (0..64).collect();
        let serial = run_ordered(inputs.clone(), 1, |x| x.wrapping_mul(0x9e37_79b9));
        let parallel = run_ordered(inputs, 8, |x| x.wrapping_mul(0x9e37_79b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u32> = run_ordered(Vec::<u32>::new(), 4, |_| 0);
        assert!(out.is_empty());
        let out = run_ordered(vec![5u32], 16, |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn with_workers_installs_and_restores() {
        with_workers(3, || {
            assert_eq!(configured_workers(), 3);
            with_workers(1, || assert_eq!(configured_workers(), 1));
            assert_eq!(configured_workers(), 3);
        });
    }

    #[test]
    fn uncaught_worker_output_is_not_lost_under_contention() {
        // Many tiny tasks: exercises the channel path under real contention.
        let inputs: Vec<usize> = (0..1000).collect();
        let out = run_ordered(inputs, 8, |&i| i + 1);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }
}
