//! Lightweight metrics: named counters and value series with summary
//! statistics. The experiment harness uses these to turn the paper's
//! qualitative criteria (join delay, bandwidth, system load, …) into numbers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A set of monotonically increasing named counters.
///
/// Keys are stable strings; `BTreeMap` keeps report output deterministic.
#[derive(Default, Clone, Debug, Serialize, Deserialize)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        // Hot path: bump in place without allocating the key. The
        // `to_owned` only runs on a counter's first touch.
        if let Some(v) = self.values.get_mut(name) {
            *v += delta;
        } else {
            self.values.insert(name.to_owned(), delta);
        }
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Raise gauge `name` to `value` if that exceeds its current reading
    /// (high-water-mark semantics; never lowers). A zero reading still
    /// creates the gauge at 0, so reports distinguish "sampled at 0"
    /// (entry present) from "never sampled" (entry absent) — idle
    /// scenarios must show their queue-depth gauges, not hide them.
    pub fn record_max(&mut self, name: &str, value: u64) {
        match self.values.get_mut(name) {
            Some(slot) => {
                if value > *slot {
                    *slot = value;
                }
            }
            None => {
                self.values.insert(name.to_owned(), value);
            }
        }
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.values
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merge another counter set into this one (summing shared keys).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A recorded series of samples with summary statistics.
#[derive(Default, Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    samples: Vec<f64>,
}

/// Summary statistics over a [`Series`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub stddev: f64,
}

impl Summary {
    /// Summary of an empty series: all values NaN-free zeros with count 0.
    pub const EMPTY: Summary = Summary {
        count: 0,
        mean: 0.0,
        min: 0.0,
        max: 0.0,
        p50: 0.0,
        p95: 0.0,
        stddev: 0.0,
    };
}

impl Series {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "series sample must be finite");
        self.samples.push(v);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    pub fn extend_from(&mut self, other: &Series) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Compute summary statistics. Returns [`Summary::EMPTY`] for an empty
    /// series rather than NaNs, so report code never has to special-case.
    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::EMPTY;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            stddev: var.sqrt(),
        }
    }
}

/// Nearest-rank percentile over a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A registry of named series, mirroring [`Counters`].
#[derive(Default, Clone, Debug, Serialize, Deserialize)]
pub struct SeriesSet {
    values: BTreeMap<String, Series>,
}

impl SeriesSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, name: &str, v: f64) {
        if let Some(s) = self.values.get_mut(name) {
            s.push(v);
        } else {
            let mut s = Series::new();
            s.push(v);
            self.values.insert(name.to_owned(), s);
        }
    }

    pub fn get(&self, name: &str) -> Option<&Series> {
        self.values.get(name)
    }

    pub fn summary(&self, name: &str) -> Summary {
        self.values
            .get(name)
            .map(|s| s.summary())
            .unwrap_or(Summary::EMPTY)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn merge(&mut self, other: &SeriesSet) {
        for (k, s) in other.iter() {
            match self.values.get_mut(k) {
                Some(mine) => mine.extend_from(s),
                None => {
                    self.values.insert(k.to_owned(), s.clone());
                }
            }
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} p50={:.4} p95={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.p50, self.p95, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_basis() {
        let mut c = Counters::new();
        c.inc("a");
        c.add("a", 4);
        c.add("b.x", 2);
        c.add("b.y", 3);
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.sum_prefix("b."), 5);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 7);
    }

    #[test]
    fn record_max_keeps_zero_samples_visible() {
        let mut c = Counters::new();
        // A zero reading is a real sample: the gauge appears at 0
        // ("sampled at 0"), distinct from one never sampled at all.
        c.record_max("idleQueueHighWater", 0);
        assert_eq!(c.get("idleQueueHighWater"), 0);
        assert!(c.iter().any(|(k, _)| k == "idleQueueHighWater"));
        assert!(!c.iter().any(|(k, _)| k == "neverSampled"));
        c.record_max("idleQueueHighWater", 5);
        c.record_max("idleQueueHighWater", 3);
        assert_eq!(c.get("idleQueueHighWater"), 5, "high water never lowers");
    }

    #[test]
    fn summary_of_known_values() {
        let mut s = Series::new();
        for v in [4.0, 1.0, 2.0, 3.0, 5.0] {
            s.push(v);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 5);
        assert_eq!(sum.mean, 3.0);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 5.0);
        assert_eq!(sum.p50, 3.0);
        assert_eq!(sum.p95, 5.0);
    }

    #[test]
    fn empty_series_summary_is_zeroed() {
        let s = Series::new();
        assert_eq!(s.summary(), Summary::EMPTY);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.25), 1.0);
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    #[test]
    fn series_set_roundtrip() {
        let mut ss = SeriesSet::new();
        ss.record("join_delay", 1.5);
        ss.record("join_delay", 2.5);
        let sum = ss.summary("join_delay");
        assert_eq!(sum.count, 2);
        assert_eq!(sum.mean, 2.0);
        assert_eq!(ss.summary("nope"), Summary::EMPTY);
    }

    #[test]
    fn series_set_merge() {
        let mut a = SeriesSet::new();
        a.record("d", 1.0);
        let mut b = SeriesSet::new();
        b.record("d", 3.0);
        b.record("e", 9.0);
        a.merge(&b);
        assert_eq!(a.summary("d").count, 2);
        assert_eq!(a.summary("e").count, 1);
    }

    #[test]
    fn stddev_zero_for_constant_series() {
        let mut s = Series::new();
        for _ in 0..10 {
            s.push(7.0);
        }
        assert_eq!(s.summary().stddev, 0.0);
    }
}
