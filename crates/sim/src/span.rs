//! Deterministic sim-time spans with stable ids and parent links.
//!
//! A span is a named interval on the simulation clock, optionally nested
//! under a parent span and carrying typed attributes. Node glue opens a
//! span when a causal episode starts (a handoff, a BU round-trip, a PIM
//! graft) and closes it when the episode completes; the [`SpanBook`]
//! derives ids from `(node, per-node open count)`, so the same seed
//! produces the same ids — serial or parallel — and the serialized form
//! is byte-stable.
//!
//! Spans carry *sim* time only. Wall-clock measurements stay in
//! `SimProfile` and never enter a span (the determinism contract of
//! `RunReport`).

use crate::time::SimTime;
use serde::{Serialize, Value};
use std::fmt;

/// Stable identifier of a span within one run.
///
/// Encodes `(node + 1) << 32 | per-node open sequence` (the global
/// pseudo-node `u64::MAX` wraps to a zero prefix, so its ids are the bare
/// sequence). Deriving the id from per-node state instead of a global
/// counter keeps ids identical between the sequential and the threaded
/// executor: each node's open order is deterministic, while the global
/// interleaving of opens across worker threads is not.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Derive the id of the `seq`-th span (1-based) opened on `node`.
    pub fn derive(node: u64, seq: u64) -> SpanId {
        SpanId((node.wrapping_add(1) << 32) | seq)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A typed attribute value on a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Serialize for AttrValue {
    fn to_json_value(&self) -> Value {
        match self {
            AttrValue::U64(n) => Value::U64(*n),
            AttrValue::I64(n) => Value::I64(*n),
            AttrValue::F64(x) => Value::F64(*x),
            AttrValue::Bool(b) => Value::Bool(*b),
            AttrValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(n) => write!(f, "{n}"),
            AttrValue::I64(n) => write!(f, "{n}"),
            AttrValue::F64(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
            AttrValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(n: u64) -> Self {
        AttrValue::U64(n)
    }
}
impl From<u32> for AttrValue {
    fn from(n: u32) -> Self {
        AttrValue::U64(n as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(n: usize) -> Self {
        AttrValue::U64(n as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::I64(n)
    }
}
impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::F64(x)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

/// One recorded span.
#[derive(Clone, Debug, Serialize)]
pub struct SpanRecord {
    /// Stable id, unique within the run.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Span name (a stable phase identifier such as `handoff` or `bu`).
    pub name: String,
    /// Node the span belongs to (`usize::MAX as u64` = global).
    pub node: u64,
    /// Open time, nanoseconds of sim time.
    pub start_ns: u64,
    /// Close time; `None` while still open (force-closed at run end).
    pub end_ns: Option<u64>,
    /// Typed attributes, in annotation order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Duration in nanoseconds; `None` while open.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }

    /// Duration in seconds; `None` while open.
    pub fn duration_secs(&self) -> Option<f64> {
        self.duration_ns().map(|n| n as f64 / 1e9)
    }

    /// Does the span cover sim time `t_ns`? Open spans cover everything
    /// at or after their start.
    pub fn contains_ns(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && self.end_ns.is_none_or(|e| t_ns <= e)
    }

    /// First attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// The run-scoped collection of spans. Records stay in insertion (= open
/// replay) order, which `records()` exposes directly; ids are per-node
/// (see [`SpanId::derive`]), so a hash index maps them back to records.
#[derive(Clone, Debug, Default)]
pub struct SpanBook {
    spans: Vec<SpanRecord>,
    /// id -> position in `spans`.
    index: std::collections::HashMap<u64, usize>,
    /// Per-node open counters feeding [`SpanId::derive`].
    opened: std::collections::HashMap<u64, u64>,
}

impl SpanBook {
    /// Open a span at `at`; returns its id.
    pub fn open(&mut self, name: &str, node: u64, at: SimTime, parent: Option<SpanId>) -> SpanId {
        let id = self.alloc(node);
        self.insert_allocated(id, name, node, at, parent);
        id
    }

    /// Reserve the next id for `node` without inserting a record yet.
    /// The threaded executor allocates at dispatch time (the caller needs
    /// the id immediately) and defers [`insert_allocated`](Self::insert_allocated)
    /// to the window barrier so record order matches the sequential run.
    pub fn alloc(&mut self, node: u64) -> SpanId {
        let seq = self.opened.entry(node).or_insert(0);
        *seq += 1;
        SpanId::derive(node, *seq)
    }

    /// Insert the record for an id handed out by [`alloc`](Self::alloc).
    pub fn insert_allocated(
        &mut self,
        id: SpanId,
        name: &str,
        node: u64,
        at: SimTime,
        parent: Option<SpanId>,
    ) {
        self.index.insert(id.0, self.spans.len());
        self.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_owned(),
            node,
            start_ns: at.as_nanos(),
            end_ns: None,
            attrs: Vec::new(),
        });
    }

    /// Attach a typed attribute to an existing span. Unknown ids are
    /// ignored (the span may have been dropped by a bounded collector).
    pub fn annotate(&mut self, id: SpanId, key: &str, value: impl Into<AttrValue>) {
        if let Some(s) = self.get_mut(id) {
            s.attrs.push((key.to_owned(), value.into()));
        }
    }

    /// Close a span at `at`. Closing an already-closed or unknown span is
    /// a no-op (the first close wins, keeping durations stable).
    pub fn close(&mut self, id: SpanId, at: SimTime) {
        if let Some(s) = self.get_mut(id) {
            if s.end_ns.is_none() {
                s.end_ns = Some(at.as_nanos());
            }
        }
    }

    /// Close every span still open (run teardown). Returns how many were
    /// force-closed; those spans additionally get `unfinished = true`.
    pub fn close_open(&mut self, at: SimTime) -> usize {
        let t = at.as_nanos();
        let mut n = 0;
        for s in &mut self.spans {
            if s.end_ns.is_none() {
                s.end_ns = Some(t.max(s.start_ns));
                s.attrs
                    .push(("unfinished".to_owned(), AttrValue::Bool(true)));
                n += 1;
            }
        }
        n
    }

    pub fn get(&self, id: SpanId) -> Option<&SpanRecord> {
        self.index.get(&id.0).map(|&pos| &self.spans[pos])
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut SpanRecord> {
        match self.index.get(&id.0) {
            Some(&pos) => self.spans.get_mut(pos),
            None => None,
        }
    }

    /// All spans, in open order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The innermost span on `node` covering sim time `t_ns`: among
    /// covering spans the one with the latest start (ties broken by the
    /// higher id, i.e. the most recently opened).
    pub fn enclosing(&self, node: u64, t_ns: u64) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.node == node && s.contains_ns(t_ns))
            .max_by_key(|s| (s.start_ns, s.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_node_scoped() {
        let mut book = SpanBook::default();
        let a = book.open("handoff", 1, SimTime::from_secs(10), None);
        let b = book.open("bu", 1, SimTime::from_secs(10), Some(a));
        let c = book.open("graft", 2, SimTime::from_secs(10), None);
        let g = book.open("run", u64::MAX, SimTime::from_secs(10), None);
        assert_eq!(a, SpanId::derive(1, 1));
        assert_eq!(b, SpanId::derive(1, 2));
        assert_eq!(c, SpanId::derive(2, 1));
        // The global pseudo-node wraps to a zero prefix: bare sequence.
        assert_eq!(g, SpanId(1));
        assert_eq!(book.get(b).unwrap().parent, Some(a));
        book.close(b, SimTime::from_secs(11));
        book.close(a, SimTime::from_secs(12));
        assert_eq!(book.get(a).unwrap().duration_secs(), Some(2.0));
        // Second close is a no-op.
        book.close(a, SimTime::from_secs(99));
        assert_eq!(book.get(a).unwrap().duration_secs(), Some(2.0));
    }

    #[test]
    fn close_open_marks_unfinished() {
        let mut book = SpanBook::default();
        let a = book.open("handoff", 1, SimTime::from_secs(10), None);
        let b = book.open("bu", 1, SimTime::from_secs(11), Some(a));
        book.close(b, SimTime::from_secs(12));
        assert_eq!(book.close_open(SimTime::from_secs(20)), 1);
        let rec = book.get(a).unwrap();
        assert_eq!(rec.end_ns, Some(20_000_000_000));
        assert_eq!(rec.attr("unfinished"), Some(&AttrValue::Bool(true)));
        assert!(book.get(b).unwrap().attr("unfinished").is_none());
    }

    #[test]
    fn enclosing_picks_innermost_on_node() {
        let mut book = SpanBook::default();
        let outer = book.open("handoff", 3, SimTime::from_secs(10), None);
        let inner = book.open("rejoin", 3, SimTime::from_secs(12), Some(outer));
        let _other = book.open("handoff", 4, SimTime::from_secs(11), None);
        book.close(inner, SimTime::from_secs(14));
        book.close(outer, SimTime::from_secs(16));
        let t = SimTime::from_secs(13).as_nanos();
        assert_eq!(book.enclosing(3, t).unwrap().id, inner);
        let t2 = SimTime::from_secs(15).as_nanos();
        assert_eq!(book.enclosing(3, t2).unwrap().id, outer);
        assert!(book.enclosing(5, t).is_none());
    }

    #[test]
    fn span_serializes_with_attrs() {
        let mut book = SpanBook::default();
        let a = book.open("handoff", 1, SimTime::from_secs(1), None);
        book.annotate(a, "policy", "bidir-tunnel");
        book.annotate(a, "to_link", 6u64);
        book.close(a, SimTime::from_secs(2));
        let json = serde_json::to_string(&book.get(a).unwrap().to_json_value()).unwrap();
        assert!(json.contains(&format!("\"id\":{}", a.0)), "{json}");
        assert!(json.contains("\"start_ns\":1000000000"), "{json}");
        assert!(json.contains("bidir-tunnel"), "{json}");
    }
}
