//! The event queue: a cancellable priority queue over virtual time.
//!
//! Events at equal times are delivered in the order they were scheduled
//! (FIFO), which makes runs fully deterministic. Cancellation is O(1) via a
//! pending-id set; cancelled entries are skipped (and dropped) on pop.
//!
//! Two implementations share the API and the exact `(time, sequence)` pop
//! order: the production [`EventQueue`] is the hierarchical timer wheel of
//! [`crate::wheel`] (O(1) schedule/placement); [`HeapEventQueue`] is the
//! original binary-heap queue, kept as the reference implementation for
//! the wheel's differential tests and the kernel benchmarks.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

/// The event queue used by the simulator: the timer wheel.
pub type EventQueue<E> = crate::wheel::TimerWheel<E>;

/// Handle identifying a scheduled event, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    pub(crate) fn from_raw(seq: u64) -> EventId {
        EventId(seq)
    }

    #[inline]
    pub(crate) fn raw(self) -> u64 {
        self.0
    }

    /// The queue-global sequence number behind this id. Together with the
    /// event's timestamp it forms the total pop order `(time, seq)` —
    /// executors that merge per-shard streams key on it.
    #[inline]
    pub fn seq(self) -> u64 {
        self.0
    }

    /// Reconstruct an id from a sequence number previously obtained via
    /// [`EventId::seq`]. Executors use this to name events they popped in
    /// a batch; fabricating unseen ids is harmless (cancel is a no-op).
    #[inline]
    pub fn from_seq(seq: u64) -> EventId {
        EventId(seq)
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic, cancellable event queue over a binary heap.
///
/// Sequence numbers are never reused, so an [`EventId`] unambiguously names
/// one scheduling. Cancelling an event that already fired (or was already
/// cancelled) is a no-op that returns `false`.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids scheduled but neither popped nor cancelled yet.
    pending: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    depth_high_water: usize,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            depth_high_water: 0,
        }
    }

    /// Current virtual time: the timestamp of the most recently popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` for delivery at absolute time `at`.
    ///
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a DES.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        self.pending.insert(seq);
        self.depth_high_water = self.depth_high_water.max(self.pending.len());
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` iff the event was
    /// still pending (and is now guaranteed not to fire).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Consume the next sequence number without inserting an entry; see
    /// [`TimerWheel::reserve_seq`](crate::wheel::TimerWheel::reserve_seq).
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Insert an entry under a previously reserved sequence number; see
    /// [`TimerWheel::schedule_at_seq`](crate::wheel::TimerWheel::schedule_at_seq).
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        assert!(seq < self.next_seq, "seq {seq} was never reserved");
        let fresh = self.pending.insert(seq);
        assert!(fresh, "seq {seq} is already pending");
        self.heap.push(Reverse(Entry { at, seq, payload }));
        self.depth_high_water = self.depth_high_water.max(self.pending.len());
    }

    /// Remove and return the next event `(time, payload)`, advancing `now`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(at, _, payload)| (at, payload))
    }

    /// Remove and return the next event together with its [`EventId`],
    /// advancing `now`. Same order as [`pop`](Self::pop).
    pub fn pop_entry(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            return Some((entry.at, EventId(entry.seq), entry.payload));
        }
        None
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| at)
    }

    /// `(time, seq)` pop-order key of the next pending event without
    /// popping it.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some((entry.at, entry.seq));
            }
            self.heap.pop();
        }
        None
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of live (scheduled, not fired, not cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Highest number of simultaneously live events ever observed
    /// (diagnostic; maintained on every `schedule`, so it is always on and
    /// costs one comparison).
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Advance the clock to `t` without popping anything. Panics if a live
    /// event earlier than `t` is still pending (that event must be popped
    /// first) or if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance backwards");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= t,
                "cannot advance past pending event at {next:?} to {t:?}"
            );
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), "c");
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_or_fired_id_is_false() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        let a = q.schedule(t(1), "a");
        q.pop();
        assert!(!q.cancel(a), "cancelling a fired event must be a no-op");
        // Double-cancel is also a no-op.
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(b));
        assert!(!q.cancel(b));
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn schedule_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(5), ());
        q.pop();
        q.schedule(t(1), ());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn is_empty_after_cancelling_everything() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|i| q.schedule(t(i), i)).collect();
        for id in ids {
            q.cancel(id);
        }
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1u32);
        assert_eq!(q.pop(), Some((t(1), 1)));
        let later = q.now() + SimDuration::from_secs(1);
        q.schedule(later, 2u32);
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn len_counts_only_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn reserved_seqs_keep_global_order() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        wheel.schedule(t(5), "a");
        heap.schedule(t(5), "a");
        let rw = wheel.reserve_seq();
        let rh = heap.reserve_seq();
        wheel.schedule(t(5), "c");
        heap.schedule(t(5), "c");
        wheel.schedule_at_seq(t(5), rw, "b");
        heap.schedule_at_seq(t(5), rh, "b");
        assert_eq!(wheel.scheduled_total(), 3);
        assert_eq!(heap.scheduled_total(), 3);
        for q in ["a", "b", "c"] {
            assert_eq!(wheel.pop(), Some((t(5), q)));
            assert_eq!(heap.pop(), Some((t(5), q)));
        }
    }

    #[test]
    #[should_panic(expected = "never reserved")]
    fn schedule_at_unreserved_seq_panics() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_at_seq(t(1), 7, "x");
    }

    #[test]
    fn depth_high_water_tracks_peak_live_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.depth_high_water(), 0);
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.schedule(t(3), ());
        assert_eq!(q.depth_high_water(), 3);
        q.cancel(a);
        q.pop();
        q.pop();
        // Draining does not lower the high-water mark.
        assert_eq!(q.depth_high_water(), 3);
        q.schedule(t(4), ());
        assert_eq!(q.depth_high_water(), 3, "peak was 3, new peak is only 1");
    }
}
