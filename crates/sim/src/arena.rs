//! Compact-state primitives for the million-host hot path: a dense
//! [`Interner`] turning wide keys (128-bit IPv6 addresses, group
//! addresses, link ids) into `u32` handles, and a generation-indexed
//! [`Arena`] backing struct-of-arrays state tables.
//!
//! Both are deterministic: interner ids are assigned in first-intern
//! order, arena slots are reused in LIFO free-list order, and neither
//! consults anything but its own call sequence — so two runs performing
//! the same operations produce identical ids and handles on every
//! platform (the property the differential state-model tests pin).
//!
//! Exhaustion is a typed error, never a panic: the interner refuses to
//! mint ids past its capacity and the arena refuses inserts past
//! `u32::MAX` live generations — callers on the wire-facing paths turn
//! that into shed/evict decisions instead of aborting the simulation.

use std::collections::BTreeMap;
use std::fmt;

/// Dense identifier minted by an [`Interner`].
///
/// Ids are assigned contiguously from zero in first-intern order, so they
/// double as indices into side tables (`Vec<T>` keyed by id).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InternId(pub u32);

impl InternId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Typed interner failure: the id space (or the configured capacity) is
/// exhausted. Interning an *already known* key never fails.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InternExhausted {
    /// The capacity that was hit.
    pub capacity: u32,
}

impl fmt::Display for InternExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interner exhausted: capacity {} ids", self.capacity)
    }
}

impl std::error::Error for InternExhausted {}

/// A deterministic key → dense-`u32` interner.
///
/// Lookups are `O(log n)` (sorted map), resolves are `O(1)` (vector
/// index). Ids are never recycled: a key, once interned, keeps its id for
/// the interner's lifetime — the id-stability property the proptests pin.
#[derive(Clone, Debug)]
pub struct Interner<K: Ord + Clone> {
    ids: BTreeMap<K, InternId>,
    keys: Vec<K>,
    capacity: u32,
}

impl<K: Ord + Clone> Default for Interner<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone> Interner<K> {
    /// An interner spanning the full `u32` id space.
    pub fn new() -> Self {
        Self::with_capacity(u32::MAX)
    }

    /// An interner refusing to mint more than `capacity` distinct ids.
    pub fn with_capacity(capacity: u32) -> Self {
        Interner {
            ids: BTreeMap::new(),
            keys: Vec::new(),
            capacity,
        }
    }

    /// Intern `key`, minting a fresh id on first sight.
    pub fn intern(&mut self, key: K) -> Result<InternId, InternExhausted> {
        if let Some(&id) = self.ids.get(&key) {
            return Ok(id);
        }
        if self.keys.len() >= self.capacity as usize {
            return Err(InternExhausted {
                capacity: self.capacity,
            });
        }
        let id = InternId(self.keys.len() as u32);
        self.keys.push(key.clone());
        self.ids.insert(key, id);
        Ok(id)
    }

    /// The id of an already-interned key.
    pub fn get(&self, key: &K) -> Option<InternId> {
        self.ids.get(key).copied()
    }

    /// The key behind `id`. `None` for ids this interner never minted.
    pub fn resolve(&self, id: InternId) -> Option<&K> {
        self.keys.get(id.index())
    }

    /// Number of distinct keys interned so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Documented-model byte audit: key storage counted twice (once for
    /// the sorted map, once for the resolve vector) plus one id per map
    /// entry. No allocator introspection — this is the model the
    /// memory-accounting tests check table audits against.
    pub fn state_bytes(&self) -> usize {
        self.keys.len() * (2 * std::mem::size_of::<K>() + std::mem::size_of::<InternId>())
    }
}

/// Shared world-level interner: one id space across every node's tables.
///
/// Internally an `Arc<RwLock<..>>` so protocol tables can intern from
/// executor worker threads; the `borrow`/`borrow_mut` guard API is kept
/// from the earlier `Rc<RefCell<..>>` shape so call sites read the same.
/// Id *values* may be minted in a different order across runs when
/// workers race, which is safe by construction: every ordered structure
/// in the stack compares resolved keys, never raw [`InternId`]s.
pub struct SharedInterner<K: Ord + Clone>(std::sync::Arc<std::sync::RwLock<Interner<K>>>);

impl<K: Ord + Clone> Clone for SharedInterner<K> {
    fn clone(&self) -> Self {
        SharedInterner(self.0.clone())
    }
}

impl<K: Ord + Clone + std::fmt::Debug> std::fmt::Debug for SharedInterner<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedInterner")
            .field(&*self.borrow())
            .finish()
    }
}

impl<K: Ord + Clone> Default for SharedInterner<K> {
    fn default() -> Self {
        shared_interner()
    }
}

impl<K: Ord + Clone> SharedInterner<K> {
    /// Shared (read) access to the interner.
    pub fn borrow(&self) -> std::sync::RwLockReadGuard<'_, Interner<K>> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Exclusive (write) access to the interner.
    pub fn borrow_mut(&self) -> std::sync::RwLockWriteGuard<'_, Interner<K>> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

/// Create a fresh [`SharedInterner`].
pub fn shared_interner<K: Ord + Clone>() -> SharedInterner<K> {
    SharedInterner(std::sync::Arc::new(std::sync::RwLock::new(Interner::new())))
}

/// Generation-indexed handle into an [`Arena`].
///
/// The generation makes dangling handles detectable: a slot reused after
/// removal carries a bumped generation, so a stale handle resolves to
/// `None` instead of aliasing the new occupant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Handle {
    idx: u32,
    generation: u32,
}

impl Handle {
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Typed arena failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArenaError {
    /// The arena's slot space (or configured capacity) is exhausted.
    Exhausted { capacity: u32 },
    /// A slot's generation counter reached `u32::MAX` and can no longer
    /// guarantee stale-handle detection; the slot is retired instead of
    /// reused.
    GenerationOverflow,
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::Exhausted { capacity } => {
                write!(f, "arena exhausted: capacity {capacity} slots")
            }
            ArenaError::GenerationOverflow => write!(f, "arena slot generation overflow"),
        }
    }
}

impl std::error::Error for ArenaError {}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generation-indexed slot arena: `O(1)` insert/remove/get, slots
/// reused LIFO with a generation bump, dense storage for struct-of-arrays
/// tables. Iteration over live slots is a linear sweep in slot order —
/// the access pattern the expiry scans and gauge samplers rely on.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    capacity: u32,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    pub fn new() -> Self {
        Self::with_capacity(u32::MAX)
    }

    /// An arena refusing to hold more than `capacity` live values.
    pub fn with_capacity(capacity: u32) -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            capacity,
        }
    }

    /// Insert a value, returning its handle.
    pub fn insert(&mut self, value: T) -> Result<Handle, ArenaError> {
        if self.live >= self.capacity as usize {
            return Err(ArenaError::Exhausted {
                capacity: self.capacity,
            });
        }
        // Reuse the most recently freed slot (deterministic LIFO).
        while let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.value.is_none());
            // A slot at the generation ceiling is retired, not reused:
            // handing it out again would let a stale handle alias.
            let Some(generation) = slot.generation.checked_add(1) else {
                continue;
            };
            slot.generation = generation;
            slot.value = Some(value);
            self.live += 1;
            return Ok(Handle { idx, generation });
        }
        if self.slots.len() >= u32::MAX as usize {
            return Err(ArenaError::Exhausted {
                capacity: self.capacity,
            });
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        self.live += 1;
        Ok(Handle { idx, generation: 0 })
    }

    /// The value behind `h`, or `None` for stale/removed handles.
    pub fn get(&self, h: Handle) -> Option<&T> {
        let slot = self.slots.get(h.index())?;
        if slot.generation != h.generation {
            return None;
        }
        slot.value.as_ref()
    }

    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.index())?;
        if slot.generation != h.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Remove and return the value behind `h`. Stale handles return `None`
    /// and change nothing.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let slot = self.slots.get_mut(h.index())?;
        if slot.generation != h.generation {
            return None;
        }
        let value = slot.value.take()?;
        self.free.push(h.idx);
        self.live -= 1;
        Some(value)
    }

    /// Number of live values (the occupancy counter gauge samplers read).
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Linear sweep over live values in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    Handle {
                        idx: i as u32,
                        generation: s.generation,
                    },
                    v,
                )
            })
        })
    }

    /// Linear sweep over live values in slot order, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let generation = s.generation;
            s.value.as_mut().map(move |v| {
                (
                    Handle {
                        idx: i as u32,
                        generation,
                    },
                    v,
                )
            })
        })
    }

    /// Documented-model byte audit: every allocated slot costs the value
    /// footprint plus the generation word; the free list costs one index
    /// per retired slot. No allocator introspection.
    pub fn state_bytes(&self) -> usize {
        self.slots.len() * (std::mem::size_of::<T>() + std::mem::size_of::<u32>() * 2)
            + self.free.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dense() {
        let mut i: Interner<&str> = Interner::new();
        let a = i.intern("a").unwrap();
        let b = i.intern("b").unwrap();
        assert_eq!(a, InternId(0));
        assert_eq!(b, InternId(1));
        assert_eq!(i.intern("a").unwrap(), a, "re-intern returns same id");
        assert_eq!(i.resolve(a), Some(&"a"));
        assert_eq!(i.resolve(InternId(9)), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn intern_exhaustion_is_typed_not_panic() {
        let mut i: Interner<u64> = Interner::with_capacity(2);
        i.intern(1).unwrap();
        i.intern(2).unwrap();
        assert_eq!(i.intern(3), Err(InternExhausted { capacity: 2 }));
        // Known keys still intern fine at capacity.
        assert_eq!(i.intern(2).unwrap(), InternId(1));
    }

    #[test]
    fn arena_insert_get_remove() {
        let mut a: Arena<String> = Arena::new();
        let h = a.insert("x".into()).unwrap();
        assert_eq!(a.get(h).map(String::as_str), Some("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(h), Some("x".into()));
        assert_eq!(a.get(h), None, "stale handle after remove");
        assert_eq!(a.remove(h), None, "double remove is a no-op");
        assert!(a.is_empty());
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut a: Arena<u32> = Arena::new();
        let h1 = a.insert(1).unwrap();
        a.remove(h1);
        let h2 = a.insert(2).unwrap();
        assert_eq!(h2.index(), h1.index(), "slot reused");
        assert_eq!(h2.generation(), h1.generation() + 1);
        assert_eq!(a.get(h1), None, "old generation stays dangling");
        assert_eq!(a.get(h2), Some(&2));
    }

    #[test]
    fn arena_capacity_is_typed_error() {
        let mut a: Arena<u8> = Arena::with_capacity(1);
        let h = a.insert(1).unwrap();
        assert_eq!(a.insert(2), Err(ArenaError::Exhausted { capacity: 1 }));
        a.remove(h);
        assert!(a.insert(3).is_ok(), "room again after removal");
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let mut a: Arena<u32> = Arena::new();
        let h0 = a.insert(10).unwrap();
        let _h1 = a.insert(11).unwrap();
        let _h2 = a.insert(12).unwrap();
        a.remove(h0);
        let live: Vec<u32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![11, 12]);
        for (_, v) in a.iter_mut() {
            *v += 1;
        }
        let live: Vec<u32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec![12, 13]);
    }
}
