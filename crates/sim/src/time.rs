//! Virtual time for the discrete-event simulation.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation. Integer time makes event ordering exact and runs reproducible:
//! two events scheduled for the same instant compare equal on every platform,
//! and tie-breaking is then done by the queue's sequence numbers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event the simulation will ever schedule.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input (invalid in a simulation schedule).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used e.g. for random response delays).
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "scale must be non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use `saturating_since` when the
    /// ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(2.5).as_nanos(), 2_500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::from_secs(1) < SimTime::MAX);
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
