//! # mobicast-sim
//!
//! Deterministic discrete-event simulation kernel used by the `mobicast`
//! protocol simulator (reproduction of *"Interoperation of Mobile IPv6 and
//! Protocol Independent Multicast Dense Mode"*, ICPP 2000).
//!
//! Contents:
//! * [`time`] — integer virtual time ([`SimTime`], [`SimDuration`]).
//! * [`queue`] — a cancellable, FIFO-stable event queue ([`EventQueue`]).
//! * [`wheel`] — the hierarchical timer wheel behind [`EventQueue`]
//!   (O(1) scheduling; the heap queue remains as [`HeapEventQueue`]).
//! * [`rng`] — labelled deterministic RNG streams ([`RngFactory`]).
//! * [`metrics`] — counters and sample series with summaries.
//! * [`trace`] — structured, filterable simulation traces with a versioned
//!   JSONL export.
//! * [`profile`] — opt-in wall-clock profiling of the event loop.
//! * [`parallel`] — a dependency-free scoped worker pool fanning
//!   independent deterministic runs across cores with ordered results.
//!
//! Determinism contract: given the same scenario seed, the same sequence of
//! `schedule`/`pop` calls yields the same event order and the same random
//! draws, on every platform. This is what makes the experiment tables in the
//! paper reproduction exactly repeatable.

pub mod budget;
pub mod metrics;
pub mod parallel;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;
pub mod wheel;

pub use budget::{RateLimit, ShedPolicy, TokenBucket};
pub use metrics::{Counters, Series, SeriesSet, Summary};
pub use profile::{Profiler, SimProfile};
pub use queue::{EventId, EventQueue, HeapEventQueue};
pub use rng::RngFactory;
pub use time::{SimDuration, SimTime};
pub use trace::{
    FieldValue, Fields, RingBufferTracer, TraceCategory, TraceEvent, TraceSink, Tracer,
};
pub use wheel::TimerWheel;
