//! # mobicast-sim
//!
//! Deterministic discrete-event simulation kernel used by the `mobicast`
//! protocol simulator (reproduction of *"Interoperation of Mobile IPv6 and
//! Protocol Independent Multicast Dense Mode"*, ICPP 2000).
//!
//! Contents:
//! * [`arena`] — compact-state primitives: a dense key interner
//!   ([`Interner`]) and a generation-indexed slot arena ([`Arena`])
//!   backing the struct-of-arrays protocol state tables.
//! * [`time`] — integer virtual time ([`SimTime`], [`SimDuration`]).
//! * [`queue`] — a cancellable, FIFO-stable event queue ([`EventQueue`]).
//! * [`wheel`] — the hierarchical timer wheel behind [`EventQueue`]
//!   (O(1) scheduling; the heap queue remains as [`HeapEventQueue`]).
//! * [`rng`] — labelled deterministic RNG streams ([`RngFactory`]).
//! * [`metrics`] — counters and sample series with summaries.
//! * [`trace`] — structured, filterable simulation traces with a versioned
//!   JSONL export.
//! * [`span`] — deterministic sim-time causal spans with stable ids and
//!   parent links ([`SpanBook`]).
//! * [`series`] — sim-time gauge timelines and a mergeable quantile
//!   digest ([`TimeSeriesSet`], [`QuantileDigest`]).
//! * [`perfetto`] / [`openmetrics`] — exporters rendering spans, series
//!   and counters as a Chrome/Perfetto trace and an OpenMetrics snapshot.
//! * [`profile`] — opt-in wall-clock profiling of the event loop.
//! * [`parallel`] — a dependency-free scoped worker pool fanning
//!   independent deterministic runs across cores with ordered results.
//! * [`defer`] — thread-local side-effect buffering that lets the
//!   threaded sharded executor replay shared-state mutations in
//!   sequential order at window barriers.
//!
//! Determinism contract: given the same scenario seed, the same sequence of
//! `schedule`/`pop` calls yields the same event order and the same random
//! draws, on every platform. This is what makes the experiment tables in the
//! paper reproduction exactly repeatable.

pub mod arena;
pub mod budget;
pub mod defer;
pub mod metrics;
pub mod openmetrics;
pub mod parallel;
pub mod perfetto;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod series;
pub mod span;
pub mod time;
pub mod trace;
pub mod wheel;

pub use arena::{
    shared_interner, Arena, ArenaError, Handle, InternExhausted, InternId, Interner, SharedInterner,
};
pub use budget::{RateLimit, ShedPolicy, TokenBucket};
pub use metrics::{Counters, Series, SeriesSet, Summary};
pub use profile::{Profiler, SimProfile};
pub use queue::{EventId, EventQueue, HeapEventQueue};
pub use rng::RngFactory;
pub use series::{QuantileDigest, TimeSeries, TimeSeriesSet};
pub use span::{AttrValue, SpanBook, SpanId, SpanRecord};
pub use time::{SimDuration, SimTime};
pub use trace::{
    FieldValue, Fields, RingBufferTracer, TraceCategory, TraceEvent, TraceSink, Tracer,
};
pub use wheel::TimerWheel;
