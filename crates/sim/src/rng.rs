//! Deterministic random-number streams.
//!
//! Every randomized component in the simulation receives its own RNG stream
//! derived from the scenario seed and a stable textual label. This keeps runs
//! reproducible even when components are added or reordered: a component's
//! stream depends only on `(seed, label)`, never on how many random numbers
//! other components consumed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive a child seed from a parent seed and a label (FNV-1a over the label
/// mixed with the parent seed, finalized with splitmix64).
pub fn child_seed(parent: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ parent;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// splitmix64 finalizer: turns a weakly mixed value into a well-distributed
/// seed. (Public domain reference algorithm by Sebastiano Vigna.)
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A factory handing out independent, labelled RNG streams.
#[derive(Clone, Debug)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The scenario seed this factory was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An RNG stream for the component identified by `label`.
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(child_seed(self.seed, label))
    }

    /// An RNG stream for a numbered instance of a component class, e.g.
    /// `indexed_stream("mld-host", node_id)`.
    pub fn indexed_stream(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(splitmix64(child_seed(self.seed, label) ^ splitmix64(index)))
    }

    /// A sub-factory, for hierarchical composition.
    pub fn subfactory(&self, label: &str) -> RngFactory {
        RngFactory {
            seed: child_seed(self.seed, label),
        }
    }
}

/// Draw from an exponential distribution with the given mean, via inverse
/// transform sampling. Used for exponential dwell times in mobility models.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    // Avoid ln(0): sample u from (0, 1].
    let u: f64 = 1.0 - rng.random::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream("x");
        let mut b = f.stream("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        let mut a = f.stream("x");
        let mut b = f.stream("y");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams for distinct labels should diverge");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngFactory::new(1).stream("x");
        let mut b = RngFactory::new(2).stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(7);
        let mut a = f.indexed_stream("host", 0);
        let mut b = f.indexed_stream("host", 1);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = f.indexed_stream("host", 0);
        assert_eq!(a.next_u64(), {
            a2.next_u64();
            a2.next_u64()
        });
    }

    #[test]
    fn exponential_mean_is_close() {
        let f = RngFactory::new(99);
        let mut rng = f.stream("exp");
        let n = 20_000;
        let mean_target = 3.0;
        let sum: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, mean_target))
            .sum();
        let mean = sum / n as f64;
        assert!(
            (mean - mean_target).abs() < 0.1,
            "sample mean {mean} too far from {mean_target}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = RngFactory::new(5).stream("e");
        for _ in 0..1000 {
            assert!(sample_exponential(&mut rng, 0.5) >= 0.0);
        }
    }

    #[test]
    fn subfactory_changes_streams() {
        let f = RngFactory::new(11);
        let sub = f.subfactory("layer");
        let mut a = f.stream("x");
        let mut b = sub.stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
