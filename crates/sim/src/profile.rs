//! Wall-clock profiling of the event loop.
//!
//! A [`Profiler`] is attached to the scheduler *opt-in*: when disabled the
//! event loop pays a single `Option` check per event and nothing else, so
//! the default build keeps its performance. When enabled, every handler
//! invocation is timed with `std::time::Instant` into log2-bucketed
//! nanosecond histograms, one per handler category, and the run is
//! summarized as a [`SimProfile`] (events/sec, queue-depth high-water mark,
//! per-category latency distribution).
//!
//! Wall-clock numbers are inherently nondeterministic, so a [`SimProfile`]
//! must never be folded into a deterministic run report — it is surfaced
//! side-band (e.g. `BENCH_sim.json`) only.

use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Number of log2 nanosecond buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` ns (bucket 0 also holds 0 ns). 2^39 ns ≈ 9 minutes,
/// far beyond any single handler invocation.
const BUCKETS: usize = 40;

/// A log2-bucketed histogram of nanosecond durations.
#[derive(Clone, Debug)]
pub struct NsHistogram {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Default for NsHistogram {
    fn default() -> Self {
        NsHistogram {
            count: 0,
            total_ns: 0,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl NsHistogram {
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        let idx = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket_floor_ns, count)` pairs.
    pub fn sparse_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }

    fn stats(&self) -> HandlerStats {
        HandlerStats {
            count: self.count,
            total_ns: self.total_ns,
            max_ns: self.max_ns,
            mean_ns: self.mean_ns(),
            buckets: self.sparse_buckets(),
        }
    }
}

/// Serializable per-category handler timing summary.
#[derive(Clone, Debug, Serialize)]
pub struct HandlerStats {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
    /// `(bucket_floor_ns, count)` pairs of the log2 latency histogram.
    pub buckets: Vec<(u64, u64)>,
}

/// Serializable summary of one profiled run. Wall-clock based: keep out of
/// deterministic reports.
#[derive(Clone, Debug, Serialize)]
pub struct SimProfile {
    pub events_executed: u64,
    pub events_scheduled: u64,
    pub queue_depth_high_water: u64,
    pub wall_ns: u64,
    pub events_per_sec: f64,
    pub handlers: BTreeMap<String, HandlerStats>,
}

/// Accumulates handler timings while a run executes.
pub struct Profiler {
    categories: &'static [&'static str],
    hists: Vec<NsHistogram>,
    events: u64,
    started: Instant,
}

impl Profiler {
    pub fn new(categories: &'static [&'static str]) -> Self {
        Profiler {
            categories,
            hists: vec![NsHistogram::default(); categories.len()],
            events: 0,
            started: Instant::now(),
        }
    }

    /// Timestamp taken just before a handler runs.
    #[inline]
    pub fn handler_start(&self) -> Instant {
        Instant::now()
    }

    /// Record one handler invocation of category `idx` (index into the
    /// category slice given to [`Profiler::new`]).
    #[inline]
    pub fn record(&mut self, idx: usize, started: Instant) {
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.events += 1;
        self.hists[idx].record(ns);
    }

    pub fn events_executed(&self) -> u64 {
        self.events
    }

    /// Summarize the run. Queue statistics are supplied by the scheduler
    /// that owns the event queue.
    pub fn finish(&self, queue_depth_high_water: usize, events_scheduled: u64) -> SimProfile {
        let wall_ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let events_per_sec = if wall_ns == 0 {
            0.0
        } else {
            self.events as f64 / (wall_ns as f64 / 1e9)
        };
        SimProfile {
            events_executed: self.events,
            events_scheduled,
            queue_depth_high_water: queue_depth_high_water as u64,
            wall_ns,
            events_per_sec,
            handlers: self
                .categories
                .iter()
                .zip(&self.hists)
                .map(|(name, h)| ((*name).to_owned(), h.stats()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = NsHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count, 5);
        assert_eq!(h.max_ns, 1024);
        let sparse = h.sparse_buckets();
        // 0 and 1 land in bucket 0 (floor 1), 2 and 3 in bucket 1 (floor 2),
        // 1024 in bucket 10 (floor 1024).
        assert_eq!(sparse, vec![(1, 2), (2, 2), (1024, 1)]);
        assert!((h.mean_ns() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn profiler_summarizes() {
        let mut p = Profiler::new(&["deliver", "timer"]);
        let t0 = p.handler_start();
        p.record(0, t0);
        let t1 = p.handler_start();
        p.record(1, t1);
        let prof = p.finish(17, 42);
        assert_eq!(prof.events_executed, 2);
        assert_eq!(prof.events_scheduled, 42);
        assert_eq!(prof.queue_depth_high_water, 17);
        assert_eq!(prof.handlers.len(), 2);
        assert_eq!(prof.handlers["deliver"].count, 1);
        assert!(prof.events_per_sec > 0.0);
        // Serializes cleanly (used for BENCH_sim.json).
        let v = serde_json::to_value(&prof);
        assert!(v["handlers"]["timer"]["count"].as_u64() == Some(1));
    }
}
