//! Property tests for the compact-state primitives behind the SoA
//! protocol tables: interner id stability and round-trip over the full
//! IPv6/group/link key domains, generation-guarded slot reuse in the
//! arena, and typed (never panicking) exhaustion on both.

use mobicast_sim::arena::{Arena, ArenaError, Handle, InternExhausted, Interner};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::Ipv6Addr;

fn ipv6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

proptest! {
    /// Ids are assigned densely in first-intern order, and re-interning a
    /// key — at any later point, after any number of other inserts —
    /// returns the id it was first given.
    #[test]
    fn intern_ids_are_stable_and_dense(keys in proptest::collection::vec(ipv6(), 1..200)) {
        let mut interner: Interner<Ipv6Addr> = Interner::new();
        let mut first_id: BTreeMap<Ipv6Addr, u32> = BTreeMap::new();
        for key in &keys {
            let id = interner.intern(*key).unwrap();
            match first_id.get(key) {
                Some(&seen) => prop_assert_eq!(id.0, seen, "id changed on re-intern"),
                None => {
                    // Fresh keys get the next dense id.
                    prop_assert_eq!(id.index(), first_id.len());
                    first_id.insert(*key, id.0);
                }
            }
        }
        prop_assert_eq!(interner.len(), first_id.len());
    }

    /// intern → resolve round-trips for every key over mixed IPv6
    /// unicast/multicast (group) values and u32 link ids alike.
    #[test]
    fn intern_resolve_round_trip(
        addrs in proptest::collection::vec(ipv6(), 1..150),
        links in proptest::collection::vec(any::<u32>(), 1..150),
    ) {
        let mut ai: Interner<Ipv6Addr> = Interner::new();
        for a in &addrs {
            let id = ai.intern(*a).unwrap();
            prop_assert_eq!(ai.resolve(id), Some(a));
            prop_assert_eq!(ai.get(a), Some(id));
        }
        let mut li: Interner<u32> = Interner::new();
        for l in &links {
            let id = li.intern(*l).unwrap();
            prop_assert_eq!(li.resolve(id), Some(l));
        }
        // Ids the interner never minted resolve to nothing.
        prop_assert_eq!(ai.resolve(mobicast_sim::InternId(ai.len() as u32)), None);
    }

    /// Exhaustion is a typed error and the interner stays usable: known
    /// keys still intern, fresh keys keep failing, nothing panics.
    #[test]
    fn intern_exhaustion_never_panics(
        cap in 1u32..40,
        keys in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let mut interner: Interner<u64> = Interner::with_capacity(cap);
        let mut known = Vec::new();
        for key in keys {
            match interner.intern(key) {
                Ok(id) => {
                    prop_assert!(interner.len() <= cap as usize);
                    known.push((key, id));
                }
                Err(e) => {
                    prop_assert_eq!(e, InternExhausted { capacity: cap });
                    prop_assert_eq!(interner.len(), cap as usize);
                }
            }
        }
        for (key, id) in known {
            prop_assert_eq!(interner.intern(key), Ok(id), "known key survives exhaustion");
        }
    }

    /// Random insert/remove churn: a slot index is never handed out twice
    /// without a generation bump, stale handles never resolve, and the
    /// occupancy counter tracks the live set exactly.
    #[test]
    fn arena_handles_never_alias(ops in proptest::collection::vec(any::<u16>(), 1..400)) {
        let mut arena: Arena<u16> = Arena::new();
        let mut live: Vec<(Handle, u16)> = Vec::new();
        let mut dead: Vec<Handle> = Vec::new();
        let mut issued: BTreeMap<u32, u32> = BTreeMap::new(); // idx -> last generation
        for op in ops {
            if op % 3 == 0 && !live.is_empty() {
                let (h, v) = live.remove(op as usize % live.len());
                prop_assert_eq!(arena.remove(h), Some(v));
                dead.push(h);
            } else {
                let h = arena.insert(op).unwrap();
                match issued.get(&(h.index() as u32)) {
                    Some(&g) => prop_assert!(
                        h.generation() > g,
                        "slot reused without generation bump"
                    ),
                    None => prop_assert_eq!(h.generation(), 0),
                }
                issued.insert(h.index() as u32, h.generation());
                live.push((h, op));
            }
            prop_assert_eq!(arena.len(), live.len());
            for h in &dead {
                prop_assert_eq!(arena.get(*h), None, "stale handle resolved");
            }
            for (h, v) in &live {
                prop_assert_eq!(arena.get(*h), Some(v));
            }
        }
        // Linear sweep sees exactly the live set.
        prop_assert_eq!(arena.iter().count(), live.len());
    }

    /// Arena exhaustion is a typed error, never a panic, and capacity is
    /// honored through arbitrary churn.
    #[test]
    fn arena_exhaustion_never_panics(
        cap in 1u32..20,
        ops in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut arena: Arena<u8> = Arena::with_capacity(cap);
        let mut live: Vec<Handle> = Vec::new();
        for op in ops {
            if op % 4 == 0 && !live.is_empty() {
                let h = live.swap_remove(op as usize % live.len());
                arena.remove(h);
            } else {
                match arena.insert(op) {
                    Ok(h) => live.push(h),
                    Err(e) => {
                        prop_assert_eq!(e, ArenaError::Exhausted { capacity: cap });
                        prop_assert_eq!(arena.len(), cap as usize);
                    }
                }
            }
            prop_assert!(arena.len() <= cap as usize);
        }
    }
}
