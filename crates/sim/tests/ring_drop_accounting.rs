//! Drop accounting for the bounded trace collector: no event is ever
//! silently lost. Whatever capacity the ring is given and however many
//! events are pushed through it, `emitted == retained + dropped`, the
//! retained window is exactly the newest events in order, and the
//! dropped count survives into the JSONL export header.

use mobicast_sim::time::SimTime;
use mobicast_sim::trace::{validate_jsonl_line, RingBufferTracer, TraceCategory};
use proptest::prelude::*;

proptest! {
    #[test]
    fn emitted_equals_retained_plus_dropped(
        capacity in 1usize..200,
        emitted in 0u64..500,
    ) {
        let (tracer, ring) = RingBufferTracer::new(capacity);
        for i in 0..emitted {
            tracer.emit_typed(
                SimTime::from_nanos(i),
                TraceCategory::App,
                0,
                "tick",
                || vec![("i", i.into())],
            );
        }
        let retained = ring.len() as u64;
        prop_assert_eq!(emitted, retained + ring.dropped());
        prop_assert!(retained <= capacity as u64);

        // The export carries the eviction count in its header and only
        // schema-valid lines after it.
        let export = ring.export_jsonl();
        let mut lines = export.lines();
        let header = lines.next().expect("export always has a header");
        validate_jsonl_line(header).expect("header is schema-valid");
        let parsed = serde_json::from_str(header).unwrap();
        prop_assert_eq!(parsed["dropped"].as_u64(), Some(emitted - retained));
        let mut count = 0u64;
        for line in lines {
            validate_jsonl_line(line).expect("event line is schema-valid");
            count += 1;
        }
        prop_assert_eq!(count, retained);

        // The survivors are exactly the newest `retained` events, oldest
        // first (the window slides, it never reorders).
        let events = ring.drain();
        for (offset, e) in events.iter().enumerate() {
            let expect = emitted - retained + offset as u64;
            prop_assert_eq!(e.at, SimTime::from_nanos(expect));
        }
    }

    /// Capacity churn across interleaved bursts: several rings of
    /// different capacities fed from one event stream each keep their own
    /// books balanced — accounting is per-collector, not global.
    #[test]
    fn accounting_balances_across_capacities(
        caps in proptest::collection::vec(1usize..50, 1..5),
        bursts in proptest::collection::vec(0u64..80, 1..5),
    ) {
        for cap in caps {
            let (tracer, ring) = RingBufferTracer::new(cap);
            let mut emitted = 0u64;
            for (b, n) in bursts.iter().enumerate() {
                for i in 0..*n {
                    tracer.emit(
                        SimTime::from_nanos(emitted),
                        TraceCategory::Harness,
                        b,
                        format!("burst {b} event {i}"),
                    );
                    emitted += 1;
                }
                // The invariant holds at every intermediate point, not
                // just at the end of the run.
                prop_assert_eq!(emitted, ring.len() as u64 + ring.dropped());
            }
        }
    }
}
