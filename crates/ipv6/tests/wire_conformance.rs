//! Wire-format conformance: byte-level layout checks against the RFCs the
//! simulator implements (RFC 2460 header fields, RFC 2710 MLD message
//! layout, RFC 2711 router alert, RFC 2473 encapsulation) plus structural
//! invariants on extension-header padding.

// Test helpers may unwrap freely (the lint wall targets non-test code).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::Bytes;
use mobicast_ipv6::addr::{GroupAddr, ALL_NODES};
use mobicast_ipv6::exthdr::{ExtHeader, Option6};
use mobicast_ipv6::packet::{proto, Packet};
use mobicast_ipv6::{encapsulate, Icmpv6};
use std::net::Ipv6Addr;

fn a(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

#[test]
fn fixed_header_layout_rfc2460() {
    let p = Packet::new(
        a("2001:db8::1"),
        a("2001:db8::2"),
        proto::UDP,
        Bytes::from_static(&[0xAA; 4]),
    )
    .with_hop_limit(64);
    let w = p.encode();
    assert_eq!(w.len(), 44);
    assert_eq!(w[0] >> 4, 6, "version nibble");
    assert_eq!(u16::from_be_bytes([w[4], w[5]]), 4, "payload length");
    assert_eq!(w[6], proto::UDP, "next header");
    assert_eq!(w[7], 64, "hop limit");
    assert_eq!(&w[8..24], &a("2001:db8::1").octets(), "source");
    assert_eq!(&w[24..40], &a("2001:db8::2").octets(), "destination");
    assert_eq!(&w[40..44], &[0xAA; 4], "payload");
}

#[test]
fn mld_report_layout_rfc2710() {
    let g = GroupAddr::test_group(9);
    let body = Icmpv6::MldReport { group: g.addr() }.encode(a("fe80::1"), g.addr());
    assert_eq!(body.len(), 24, "4-byte ICMP header + 20-byte MLD body");
    assert_eq!(body[0], 131, "ICMPv6 type: Multicast Listener Report");
    assert_eq!(body[1], 0, "code");
    assert_eq!(&body[8..24], &g.addr().octets(), "multicast address field");
}

#[test]
fn mld_query_carries_max_response_delay_in_ms() {
    let body = Icmpv6::MldQuery {
        max_response_delay_ms: 10_000,
        group: Ipv6Addr::UNSPECIFIED,
    }
    .encode(a("fe80::1"), ALL_NODES);
    assert_eq!(body[0], 130);
    assert_eq!(
        u16::from_be_bytes([body[4], body[5]]),
        10_000,
        "maximum response delay field (ms)"
    );
    assert!(body[8..24].iter().all(|b| *b == 0), "general query: ::");
}

#[test]
fn router_alert_option_rfc2711() {
    let p = Packet::new(
        a("fe80::1"),
        ALL_NODES,
        proto::ICMPV6,
        Bytes::from_static(&[0; 4]),
    )
    .with_ext(ExtHeader::HopByHop(vec![Option6::RouterAlert(0)]));
    let w = p.encode();
    // Hop-by-hop header right after the fixed header.
    assert_eq!(w[6], proto::HOP_BY_HOP, "first next-header is HBH");
    assert_eq!(w[40], proto::ICMPV6, "chained next-header");
    assert_eq!(w[41], 0, "HBH length = 8 octets");
    assert_eq!(w[42], 5, "router alert option type");
    assert_eq!(w[43], 2, "router alert length");
    assert_eq!(u16::from_be_bytes([w[44], w[45]]), 0, "MLD alert value");
}

#[test]
fn all_extension_headers_are_8_octet_aligned() {
    let cases: Vec<ExtHeader> = vec![
        ExtHeader::HopByHop(vec![Option6::RouterAlert(0)]),
        ExtHeader::DestinationOptions(vec![Option6::HomeAddress(a("2001:db8::9"))]),
        ExtHeader::DestinationOptions(vec![Option6::BindingRequest]),
        ExtHeader::DestinationOptions(vec![
            Option6::HomeAddress(a("2001:db8::9")),
            Option6::BindingRequest,
        ]),
        ExtHeader::DestinationOptions(vec![Option6::Unknown {
            kind: 77,
            data: vec![1, 2, 3, 4, 5],
        }]),
    ];
    for h in cases {
        assert_eq!(h.wire_len() % 8, 0, "{h:?} not 8-aligned");
        let mut out = bytes::BytesMut::new();
        h.encode(proto::NONE, &mut out);
        assert_eq!(out.len(), h.wire_len());
    }
}

#[test]
fn tunnel_header_chain_rfc2473() {
    let inner = Packet::new(
        a("2001:db8:4::9"),
        a("ff1e::1"),
        proto::UDP,
        Bytes::from_static(&[1, 2, 3]),
    );
    let outer = encapsulate(a("2001:db8:1::d"), a("2001:db8:6::9"), &inner);
    let w = outer.encode();
    assert_eq!(w[6], proto::IPV6, "outer next-header = 41 (IPv6)");
    // The inner packet starts right after the outer fixed header.
    let inner_again = Packet::decode(&w[40..]).unwrap();
    assert_eq!(inner_again, inner);
}

#[test]
fn echo_request_reply_pair() {
    let req = Icmpv6::EchoRequest { id: 7, seq: 1 };
    let w = req.encode(a("::1"), a("::2"));
    assert_eq!(w[0], 128);
    let rep = Icmpv6::EchoReply { id: 7, seq: 1 };
    let w = rep.encode(a("::2"), a("::1"));
    assert_eq!(w[0], 129);
}

#[test]
fn hop_limit_255_for_nd_messages_survives() {
    let p = Packet::new(
        a("fe80::1"),
        ALL_NODES,
        proto::ICMPV6,
        Icmpv6::RouterSolicit.encode(a("fe80::1"), ALL_NODES),
    )
    .with_hop_limit(255);
    let q = Packet::decode(&p.encode()).unwrap();
    assert_eq!(q.hop_limit, 255);
}

#[test]
fn max_payload_length_boundary() {
    // payload_len is u16: a payload of 65495 fits (65535 - 40-byte cap is
    // on the *payload* field, not the whole packet).
    let p = Packet::new(
        a("::1"),
        a("::2"),
        proto::NONE,
        Bytes::from(vec![0u8; 65_495]),
    );
    let w = p.encode();
    let q = Packet::decode(&w).unwrap();
    assert_eq!(q.payload.len(), 65_495);
}

#[test]
#[should_panic(expected = "payload too large")]
fn oversized_payload_rejected_at_encode() {
    let p = Packet::new(
        a("::1"),
        a("::2"),
        proto::NONE,
        Bytes::from(vec![0u8; 70_000]),
    );
    let _ = p.encode();
}
