//! Generic IPv6-in-IPv6 packet tunneling (RFC 2473).
//!
//! Mobile IPv6 home agents tunnel intercepted packets to a mobile host's
//! care-of address, and mobile senders may reverse-tunnel multicast
//! datagrams to their home agent (Section 4.2.2 B of the paper). Each level
//! of encapsulation costs exactly [`TUNNEL_OVERHEAD`] bytes on the wire —
//! the "protocol overhead" the paper's comparison charges to the tunnel
//! approaches.

use crate::error::DecodeError;
use crate::packet::{proto, Packet, FIXED_HEADER_LEN};
use std::net::Ipv6Addr;

/// Per-packet byte overhead of one encapsulation level (the outer fixed
/// IPv6 header).
pub const TUNNEL_OVERHEAD: usize = FIXED_HEADER_LEN;

/// Encapsulate `inner` in an outer packet from `outer_src` to `outer_dst`.
pub fn encapsulate(outer_src: Ipv6Addr, outer_dst: Ipv6Addr, inner: &Packet) -> Packet {
    Packet::new(outer_src, outer_dst, proto::IPV6, inner.encode())
}

/// Decapsulate one tunnel level. Fails if the packet is not IPv6-in-IPv6 or
/// the inner bytes do not parse.
pub fn decapsulate(outer: &Packet) -> Result<Packet, DecodeError> {
    if outer.payload_proto != proto::IPV6 {
        return Err(DecodeError::Unsupported {
            what: "decapsulation of non-tunnel packet",
            value: u32::from(outer.payload_proto),
        });
    }
    Packet::decode(&outer.payload)
}

/// Is this packet a tunnel packet?
pub fn is_tunnel(p: &Packet) -> bool {
    p.payload_proto == proto::IPV6
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn sample_inner() -> Packet {
        Packet::new(
            a("2001:db8:1::5"),
            a("ff1e::1"),
            proto::UDP,
            Bytes::from_static(&[0xab; 64]),
        )
    }

    #[test]
    fn encap_decap_roundtrip() {
        let inner = sample_inner();
        let outer = encapsulate(a("2001:db8:4::d"), a("2001:db8:1::c0a"), &inner);
        assert!(is_tunnel(&outer));
        assert_eq!(outer.payload_proto, proto::IPV6);
        let back = decapsulate(&outer).unwrap();
        assert_eq!(back, inner);
    }

    #[test]
    fn overhead_is_exactly_forty_bytes() {
        let inner = sample_inner();
        let outer = encapsulate(a("::1"), a("::2"), &inner);
        assert_eq!(outer.wire_len(), inner.wire_len() + TUNNEL_OVERHEAD);
    }

    #[test]
    fn nested_tunnels() {
        let inner = sample_inner();
        let mid = encapsulate(a("::1"), a("::2"), &inner);
        let outer = encapsulate(a("::3"), a("::4"), &mid);
        assert_eq!(outer.wire_len(), inner.wire_len() + 2 * TUNNEL_OVERHEAD);
        let back = decapsulate(&decapsulate(&outer).unwrap()).unwrap();
        assert_eq!(back, inner);
    }

    #[test]
    fn decap_of_plain_packet_fails() {
        let plain = sample_inner();
        assert!(matches!(
            decapsulate(&plain),
            Err(DecodeError::Unsupported { .. })
        ));
        assert!(!is_tunnel(&plain));
    }

    #[test]
    fn tunnel_survives_wire_roundtrip() {
        let inner = sample_inner();
        let outer = encapsulate(a("2001:db8:4::d"), a("2001:db8:6::beef"), &inner);
        let wire = outer.encode();
        let parsed = Packet::decode(&wire).unwrap();
        assert_eq!(decapsulate(&parsed).unwrap(), inner);
    }
}
