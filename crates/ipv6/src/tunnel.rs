//! Generic IPv6-in-IPv6 packet tunneling (RFC 2473).
//!
//! Mobile IPv6 home agents tunnel intercepted packets to a mobile host's
//! care-of address, and mobile senders may reverse-tunnel multicast
//! datagrams to their home agent (Section 4.2.2 B of the paper). Each level
//! of encapsulation costs exactly [`TUNNEL_OVERHEAD`] bytes on the wire —
//! the "protocol overhead" the paper's comparison charges to the tunnel
//! approaches.

use crate::error::DecodeError;
use crate::exthdr::{ExtHeader, Option6};
use crate::packet::{proto, Packet, FIXED_HEADER_LEN};
use std::net::Ipv6Addr;

/// Per-packet byte overhead of one encapsulation level (the outer fixed
/// IPv6 header).
pub const TUNNEL_OVERHEAD: usize = FIXED_HEADER_LEN;

/// Default Tunnel Encapsulation Limit (RFC 2473 §6.7 "TunnelEncapLim"):
/// how many further tunnel levels a packet without an explicit limit option
/// may be wrapped in.
pub const DEFAULT_ENCAP_LIMIT: u8 = 4;

/// Encapsulation refused: the inner packet's Tunnel Encapsulation Limit is
/// exhausted (RFC 2473 §4.1.1). The would-be encapsulator must discard the
/// packet and report an ICMPv6 Parameter Problem to the inner source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncapLimitExceeded;

/// Encapsulate `inner` in an outer packet from `outer_src` to `outer_dst`.
pub fn encapsulate(outer_src: Ipv6Addr, outer_dst: Ipv6Addr, inner: &Packet) -> Packet {
    Packet::new(outer_src, outer_dst, proto::IPV6, inner.encode())
}

/// The Tunnel Encapsulation Limit option of `p`, if it carries one.
pub fn tunnel_encap_limit(p: &Packet) -> Option<u8> {
    p.dest_options()?.iter().find_map(|o| match o {
        Option6::TunnelEncapLimit(l) => Some(*l),
        _ => None,
    })
}

/// Encapsulate with the RFC 2473 §4.1.1 nesting check.
///
/// The inner packet's remaining limit is its Tunnel Encapsulation Limit
/// option if present, else [`DEFAULT_ENCAP_LIMIT`]. A remaining limit of 0
/// refuses the encapsulation ([`EncapLimitExceeded`]). When the inner packet
/// is itself a tunnel packet the outer header carries a Tunnel Encapsulation
/// Limit option of `remaining - 1`, so each nesting level counts down and
/// recursive encapsulation is bounded. Plain (non-nested) tunnels carry no
/// option and keep the paper's exact 40-byte overhead.
pub fn encapsulate_limited(
    outer_src: Ipv6Addr,
    outer_dst: Ipv6Addr,
    inner: &Packet,
) -> Result<Packet, EncapLimitExceeded> {
    let remaining = tunnel_encap_limit(inner).unwrap_or(DEFAULT_ENCAP_LIMIT);
    if remaining == 0 {
        return Err(EncapLimitExceeded);
    }
    let mut outer = encapsulate(outer_src, outer_dst, inner);
    if is_tunnel(inner) {
        outer.ext.push(ExtHeader::DestinationOptions(vec![
            Option6::TunnelEncapLimit(remaining - 1),
        ]));
    }
    Ok(outer)
}

/// Decapsulate one tunnel level. Fails if the packet is not IPv6-in-IPv6 or
/// the inner bytes do not parse.
pub fn decapsulate(outer: &Packet) -> Result<Packet, DecodeError> {
    if outer.payload_proto != proto::IPV6 {
        return Err(DecodeError::Unsupported {
            what: "decapsulation of non-tunnel packet",
            value: u32::from(outer.payload_proto),
        });
    }
    Packet::decode(&outer.payload)
}

/// Is this packet a tunnel packet?
pub fn is_tunnel(p: &Packet) -> bool {
    p.payload_proto == proto::IPV6
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn sample_inner() -> Packet {
        Packet::new(
            a("2001:db8:1::5"),
            a("ff1e::1"),
            proto::UDP,
            Bytes::from_static(&[0xab; 64]),
        )
    }

    #[test]
    fn encap_decap_roundtrip() {
        let inner = sample_inner();
        let outer = encapsulate(a("2001:db8:4::d"), a("2001:db8:1::c0a"), &inner);
        assert!(is_tunnel(&outer));
        assert_eq!(outer.payload_proto, proto::IPV6);
        let back = decapsulate(&outer).unwrap();
        assert_eq!(back, inner);
    }

    #[test]
    fn overhead_is_exactly_forty_bytes() {
        let inner = sample_inner();
        let outer = encapsulate(a("::1"), a("::2"), &inner);
        assert_eq!(outer.wire_len(), inner.wire_len() + TUNNEL_OVERHEAD);
    }

    #[test]
    fn nested_tunnels() {
        let inner = sample_inner();
        let mid = encapsulate(a("::1"), a("::2"), &inner);
        let outer = encapsulate(a("::3"), a("::4"), &mid);
        assert_eq!(outer.wire_len(), inner.wire_len() + 2 * TUNNEL_OVERHEAD);
        let back = decapsulate(&decapsulate(&outer).unwrap()).unwrap();
        assert_eq!(back, inner);
    }

    #[test]
    fn limited_encap_counts_down_and_refuses_at_zero() {
        let inner = sample_inner();
        // First level: plain tunnel, no option, exact 40-byte overhead.
        let t1 = encapsulate_limited(a("::1"), a("::2"), &inner).unwrap();
        assert_eq!(tunnel_encap_limit(&t1), None);
        assert_eq!(t1.wire_len(), inner.wire_len() + TUNNEL_OVERHEAD);
        // Nesting attaches a decrementing limit option.
        let t2 = encapsulate_limited(a("::3"), a("::4"), &t1).unwrap();
        assert_eq!(tunnel_encap_limit(&t2), Some(DEFAULT_ENCAP_LIMIT - 1));
        let mut level = t2;
        for expect in (0..DEFAULT_ENCAP_LIMIT - 1).rev() {
            level = encapsulate_limited(a("::5"), a("::6"), &level).unwrap();
            assert_eq!(tunnel_encap_limit(&level), Some(expect));
        }
        // Remaining limit 0: further encapsulation is refused.
        assert_eq!(
            encapsulate_limited(a("::7"), a("::8"), &level),
            Err(EncapLimitExceeded)
        );
        // The whole nest still unwraps back to the original packet.
        let mut p = level;
        while is_tunnel(&p) {
            p = decapsulate(&p).unwrap();
        }
        assert_eq!(p, inner);
    }

    #[test]
    fn limit_option_survives_wire_roundtrip() {
        let inner = sample_inner();
        let t1 = encapsulate_limited(a("::1"), a("::2"), &inner).unwrap();
        let t2 = encapsulate_limited(a("::3"), a("::4"), &t1).unwrap();
        let parsed = Packet::decode(&t2.encode()).unwrap();
        assert_eq!(tunnel_encap_limit(&parsed), Some(DEFAULT_ENCAP_LIMIT - 1));
        assert_eq!(decapsulate(&parsed).unwrap(), t1);
    }

    #[test]
    fn decap_of_plain_packet_fails() {
        let plain = sample_inner();
        assert!(matches!(
            decapsulate(&plain),
            Err(DecodeError::Unsupported { .. })
        ));
        assert!(!is_tunnel(&plain));
    }

    #[test]
    fn tunnel_survives_wire_roundtrip() {
        let inner = sample_inner();
        let outer = encapsulate(a("2001:db8:4::d"), a("2001:db8:6::beef"), &inner);
        let wire = outer.encode();
        let parsed = Packet::decode(&wire).unwrap();
        assert_eq!(decapsulate(&parsed).unwrap(), inner);
    }
}
