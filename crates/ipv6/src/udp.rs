//! Minimal UDP datagram codec. The multicast application traffic in the
//! simulation is carried over UDP so that data packets have realistic
//! framing (8-byte UDP header) and checksums.

use crate::error::{need, DecodeError};
use crate::packet::{proto, pseudo_header_checksum};
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv6Addr;

/// Fixed UDP header size in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram (header + payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Bytes,
}

impl UdpDatagram {
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// Encode with a valid checksum (mandatory for UDP over IPv6).
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Bytes {
        let len = self.wire_len();
        assert!(len <= usize::from(u16::MAX), "UDP datagram too large");
        let mut out = BytesMut::with_capacity(len);
        out.put_u16(self.src_port);
        out.put_u16(self.dst_port);
        out.put_u16(len as u16);
        out.put_u16(0);
        out.put_slice(&self.payload);
        let mut sum = pseudo_header_checksum(src, dst, proto::UDP, &out);
        if sum == 0 {
            sum = 0xffff; // RFC 2460 §8.1: zero is transmitted as all-ones
        }
        out[6..8].copy_from_slice(&sum.to_be_bytes());
        out.freeze()
    }

    pub fn decode(src: Ipv6Addr, dst: Ipv6Addr, buf: &[u8]) -> Result<Self, DecodeError> {
        need(buf, UDP_HEADER_LEN, "UDP header")?;
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < UDP_HEADER_LEN || len > buf.len() {
            return Err(DecodeError::BadLength {
                what: "UDP length",
                value: len,
            });
        }
        if pseudo_header_checksum(src, dst, proto::UDP, &buf[..len]) != 0 {
            return Err(DecodeError::Invalid {
                what: "UDP checksum",
            });
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: Bytes::copy_from_slice(&buf[UDP_HEADER_LEN..len]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(4000, 5001, Bytes::from_static(b"stream data"));
        let wire = d.encode(a("2001:db8::1"), a("ff1e::1"));
        assert_eq!(wire.len(), d.wire_len());
        let q = UdpDatagram::decode(a("2001:db8::1"), a("ff1e::1"), &wire).unwrap();
        assert_eq!(q, d);
    }

    #[test]
    fn empty_payload() {
        let d = UdpDatagram::new(1, 2, Bytes::new());
        let wire = d.encode(a("::1"), a("::2"));
        assert_eq!(wire.len(), 8);
        assert_eq!(UdpDatagram::decode(a("::1"), a("::2"), &wire).unwrap(), d);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(&[7; 32]));
        let mut wire = d.encode(a("::1"), a("::2")).to_vec();
        wire[12] ^= 1;
        assert!(UdpDatagram::decode(a("::1"), a("::2"), &wire).is_err());
    }

    #[test]
    fn wrong_pseudo_header_rejected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(&[7; 8]));
        let wire = d.encode(a("::1"), a("::2"));
        assert!(UdpDatagram::decode(a("::1"), a("::3"), &wire).is_err());
    }

    #[test]
    fn bad_length_field_rejected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(&[7; 8]));
        let mut wire = d.encode(a("::1"), a("::2")).to_vec();
        wire[4] = 0xff;
        wire[5] = 0xff;
        assert!(matches!(
            UdpDatagram::decode(a("::1"), a("::2"), &wire),
            Err(DecodeError::BadLength { .. })
        ));
    }
}
