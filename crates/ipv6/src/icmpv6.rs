//! ICMPv6 message framing: MLD (RFC 2710), Neighbor Discovery subset
//! (Router Solicitation / Advertisement with prefix options, RFC 2461), and
//! echo. Checksums are real (pseudo-header per RFC 2463).

use crate::addr::Prefix;
use crate::error::{need, DecodeError};
use crate::exthdr::read_addr;
use crate::packet::pseudo_header_checksum;
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv6Addr;

/// ICMPv6 type: Multicast Listener Query.
pub const TYPE_MLD_QUERY: u8 = 130;
/// ICMPv6 type: Multicast Listener Report.
pub const TYPE_MLD_REPORT: u8 = 131;
/// ICMPv6 type: Multicast Listener Done.
pub const TYPE_MLD_DONE: u8 = 132;
/// ICMPv6 type: Router Solicitation.
pub const TYPE_ROUTER_SOLICIT: u8 = 133;
/// ICMPv6 type: Router Advertisement.
pub const TYPE_ROUTER_ADVERT: u8 = 134;
/// ICMPv6 type: Parameter Problem (RFC 2463 §3.4). Sent by a tunnel entry
/// node whose Tunnel Encapsulation Limit is exhausted (RFC 2473 §6.7).
pub const TYPE_PARAM_PROBLEM: u8 = 4;
/// Parameter Problem code: erroneous header field encountered (RFC 2463).
/// RFC 2473 §6.7 uses this code for an exhausted encapsulation limit.
pub const PARAM_PROBLEM_ERRONEOUS_FIELD: u8 = 0;
/// Parameter Problem code: unrecognized Next Header type encountered.
pub const PARAM_PROBLEM_UNRECOGNIZED_NEXT_HEADER: u8 = 1;
/// Parameter Problem code: unrecognized IPv6 option encountered
/// (RFC 8200 §4.2, option-type high bits `10`/`11`).
pub const PARAM_PROBLEM_UNRECOGNIZED_OPTION: u8 = 2;
/// ICMPv6 type: Echo Request.
pub const TYPE_ECHO_REQUEST: u8 = 128;
/// ICMPv6 type: Echo Reply.
pub const TYPE_ECHO_REPLY: u8 = 129;

/// ND option: Prefix Information.
const ND_OPT_PREFIX_INFO: u8 = 3;

/// A prefix advertised in a Router Advertisement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdvertisedPrefix {
    pub prefix: Prefix,
    /// Autonomous address configuration flag (SLAAC allowed).
    pub autonomous: bool,
    pub valid_lifetime_secs: u32,
    pub preferred_lifetime_secs: u32,
}

/// A parsed ICMPv6 message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Icmpv6 {
    /// MLD Query (RFC 2710 §4). `group` is unspecified (`::`) for a General
    /// Query, or a specific group for a Multicast-Address-Specific Query.
    MldQuery {
        /// Maximum Response Delay in milliseconds.
        max_response_delay_ms: u16,
        group: Ipv6Addr,
    },
    /// MLD Report for `group`.
    MldReport {
        group: Ipv6Addr,
    },
    /// MLD Done for `group`.
    MldDone {
        group: Ipv6Addr,
    },
    /// Parameter Problem. `code` distinguishes an erroneous header field
    /// (0, e.g. RFC 2473's exhausted Tunnel Encapsulation Limit) from an
    /// unrecognized next header (1) or option (2, RFC 8200 §4.2);
    /// `pointer` is the offset of the offending field in the invoking
    /// packet.
    ParamProblem {
        code: u8,
        pointer: u32,
    },
    RouterSolicit,
    RouterAdvert {
        router_lifetime_secs: u16,
        prefixes: Vec<AdvertisedPrefix>,
    },
    EchoRequest {
        id: u16,
        seq: u16,
    },
    EchoReply {
        id: u16,
        seq: u16,
    },
    Unknown {
        icmp_type: u8,
        code: u8,
        body: Vec<u8>,
    },
}

impl Icmpv6 {
    /// The ICMPv6 type byte for this message.
    pub fn icmp_type(&self) -> u8 {
        match self {
            Icmpv6::MldQuery { .. } => TYPE_MLD_QUERY,
            Icmpv6::MldReport { .. } => TYPE_MLD_REPORT,
            Icmpv6::MldDone { .. } => TYPE_MLD_DONE,
            Icmpv6::ParamProblem { .. } => TYPE_PARAM_PROBLEM,
            Icmpv6::RouterSolicit => TYPE_ROUTER_SOLICIT,
            Icmpv6::RouterAdvert { .. } => TYPE_ROUTER_ADVERT,
            Icmpv6::EchoRequest { .. } => TYPE_ECHO_REQUEST,
            Icmpv6::EchoReply { .. } => TYPE_ECHO_REPLY,
            Icmpv6::Unknown { icmp_type, .. } => *icmp_type,
        }
    }

    /// Encode including a valid checksum computed over the pseudo-header.
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u8(self.icmp_type());
        out.put_u8(match self {
            Icmpv6::Unknown { code, .. } | Icmpv6::ParamProblem { code, .. } => *code,
            _ => 0,
        });
        out.put_u16(0); // checksum placeholder
        match self {
            Icmpv6::MldQuery {
                max_response_delay_ms,
                group,
            } => {
                out.put_u16(*max_response_delay_ms);
                out.put_u16(0); // reserved
                out.put_slice(&group.octets());
            }
            Icmpv6::MldReport { group } | Icmpv6::MldDone { group } => {
                out.put_u16(0); // max response delay: 0 in reports/done
                out.put_u16(0);
                out.put_slice(&group.octets());
            }
            Icmpv6::ParamProblem { pointer, .. } => {
                out.put_u32(*pointer);
            }
            Icmpv6::RouterSolicit => {
                out.put_u32(0); // reserved
            }
            Icmpv6::RouterAdvert {
                router_lifetime_secs,
                prefixes,
            } => {
                out.put_u8(64); // cur hop limit
                out.put_u8(0); // flags (M/O clear: stateless autoconfig)
                out.put_u16(*router_lifetime_secs);
                out.put_u32(0); // reachable time
                out.put_u32(0); // retrans timer
                for p in prefixes {
                    out.put_u8(ND_OPT_PREFIX_INFO);
                    out.put_u8(4); // length in 8-octet units
                    out.put_u8(p.prefix.len());
                    out.put_u8(if p.autonomous { 0x40 } else { 0 }); // L clear, A flag
                    out.put_u32(p.valid_lifetime_secs);
                    out.put_u32(p.preferred_lifetime_secs);
                    out.put_u32(0); // reserved
                    out.put_slice(&p.prefix.network().octets());
                }
            }
            Icmpv6::EchoRequest { id, seq } | Icmpv6::EchoReply { id, seq } => {
                out.put_u16(*id);
                out.put_u16(*seq);
            }
            Icmpv6::Unknown { body, .. } => {
                out.put_slice(body);
            }
        }
        let sum = pseudo_header_checksum(src, dst, crate::packet::proto::ICMPV6, &out);
        out[2..4].copy_from_slice(&sum.to_be_bytes());
        out.freeze()
    }

    /// Decode and verify the checksum.
    pub fn decode(src: Ipv6Addr, dst: Ipv6Addr, buf: &[u8]) -> Result<Icmpv6, DecodeError> {
        need(buf, 4, "ICMPv6 header")?;
        if pseudo_header_checksum(src, dst, crate::packet::proto::ICMPV6, buf) != 0 {
            return Err(DecodeError::Invalid {
                what: "ICMPv6 checksum",
            });
        }
        let icmp_type = buf[0];
        let code = buf[1];
        let body = &buf[4..];
        match icmp_type {
            TYPE_MLD_QUERY => {
                need(body, 20, "MLD query")?;
                Ok(Icmpv6::MldQuery {
                    max_response_delay_ms: u16::from_be_bytes([body[0], body[1]]),
                    group: read_addr(&body[4..20])?,
                })
            }
            TYPE_MLD_REPORT => {
                need(body, 20, "MLD report")?;
                Ok(Icmpv6::MldReport {
                    group: read_addr(&body[4..20])?,
                })
            }
            TYPE_MLD_DONE => {
                need(body, 20, "MLD done")?;
                Ok(Icmpv6::MldDone {
                    group: read_addr(&body[4..20])?,
                })
            }
            TYPE_PARAM_PROBLEM => {
                need(body, 4, "parameter problem")?;
                Ok(Icmpv6::ParamProblem {
                    code,
                    pointer: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                })
            }
            TYPE_ROUTER_SOLICIT => Ok(Icmpv6::RouterSolicit),
            TYPE_ROUTER_ADVERT => {
                need(body, 12, "router advertisement")?;
                let router_lifetime_secs = u16::from_be_bytes([body[2], body[3]]);
                let mut prefixes = Vec::new();
                let mut rest = &body[12..];
                while !rest.is_empty() {
                    need(rest, 2, "ND option header")?;
                    let kind = rest[0];
                    let len = usize::from(rest[1]) * 8;
                    if len == 0 {
                        return Err(DecodeError::BadLength {
                            what: "ND option",
                            value: 0,
                        });
                    }
                    need(rest, len, "ND option body")?;
                    if kind == ND_OPT_PREFIX_INFO && len == 32 {
                        let plen = rest[2];
                        if plen > 128 {
                            return Err(DecodeError::BadLength {
                                what: "advertised prefix length",
                                value: usize::from(plen),
                            });
                        }
                        prefixes.push(AdvertisedPrefix {
                            prefix: Prefix::new(read_addr(&rest[16..32])?, plen),
                            autonomous: rest[3] & 0x40 != 0,
                            valid_lifetime_secs: u32::from_be_bytes([
                                rest[4], rest[5], rest[6], rest[7],
                            ]),
                            preferred_lifetime_secs: u32::from_be_bytes([
                                rest[8], rest[9], rest[10], rest[11],
                            ]),
                        });
                    }
                    rest = &rest[len..];
                }
                Ok(Icmpv6::RouterAdvert {
                    router_lifetime_secs,
                    prefixes,
                })
            }
            TYPE_ECHO_REQUEST | TYPE_ECHO_REPLY => {
                need(body, 4, "echo")?;
                let id = u16::from_be_bytes([body[0], body[1]]);
                let seq = u16::from_be_bytes([body[2], body[3]]);
                Ok(if icmp_type == TYPE_ECHO_REQUEST {
                    Icmpv6::EchoRequest { id, seq }
                } else {
                    Icmpv6::EchoReply { id, seq }
                })
            }
            _ => Ok(Icmpv6::Unknown {
                icmp_type,
                code,
                body: body.to_vec(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ALL_NODES, ALL_ROUTERS};

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn roundtrip(m: &Icmpv6, src: Ipv6Addr, dst: Ipv6Addr) -> Icmpv6 {
        let wire = m.encode(src, dst);
        Icmpv6::decode(src, dst, &wire).expect("decode")
    }

    #[test]
    fn mld_query_roundtrip() {
        let m = Icmpv6::MldQuery {
            max_response_delay_ms: 10_000,
            group: Ipv6Addr::UNSPECIFIED,
        };
        assert_eq!(roundtrip(&m, a("fe80::1"), ALL_NODES), m);
    }

    #[test]
    fn mld_specific_query_roundtrip() {
        let g = a("ff1e::1");
        let m = Icmpv6::MldQuery {
            max_response_delay_ms: 1_000,
            group: g,
        };
        assert_eq!(roundtrip(&m, a("fe80::1"), g), m);
    }

    #[test]
    fn mld_report_and_done_roundtrip() {
        let g = a("ff1e::2");
        let r = Icmpv6::MldReport { group: g };
        assert_eq!(roundtrip(&r, a("fe80::9"), g), r);
        let d = Icmpv6::MldDone { group: g };
        assert_eq!(roundtrip(&d, a("fe80::9"), ALL_ROUTERS), d);
    }

    #[test]
    fn router_advert_roundtrip() {
        let m = Icmpv6::RouterAdvert {
            router_lifetime_secs: 1800,
            prefixes: vec![AdvertisedPrefix {
                prefix: "2001:db8:6::/64".parse().unwrap(),
                autonomous: true,
                valid_lifetime_secs: 86400,
                preferred_lifetime_secs: 14400,
            }],
        };
        assert_eq!(roundtrip(&m, a("fe80::e"), ALL_NODES), m);
    }

    #[test]
    fn router_solicit_roundtrip() {
        assert_eq!(
            roundtrip(&Icmpv6::RouterSolicit, a("fe80::1"), ALL_ROUTERS),
            Icmpv6::RouterSolicit
        );
    }

    #[test]
    fn echo_roundtrip() {
        let m = Icmpv6::EchoRequest { id: 7, seq: 9 };
        assert_eq!(roundtrip(&m, a("::1"), a("::2")), m);
        let m = Icmpv6::EchoReply { id: 7, seq: 9 };
        assert_eq!(roundtrip(&m, a("::2"), a("::1")), m);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let m = Icmpv6::MldReport {
            group: a("ff1e::1"),
        };
        let mut wire = m.encode(a("fe80::1"), a("ff1e::1")).to_vec();
        wire[10] ^= 0xff;
        assert_eq!(
            Icmpv6::decode(a("fe80::1"), a("ff1e::1"), &wire),
            Err(DecodeError::Invalid {
                what: "ICMPv6 checksum"
            })
        );
    }

    #[test]
    fn checksum_binds_addresses() {
        // Same bytes, different pseudo-header => checksum failure.
        let m = Icmpv6::MldReport {
            group: a("ff1e::1"),
        };
        let wire = m.encode(a("fe80::1"), a("ff1e::1"));
        assert!(Icmpv6::decode(a("fe80::2"), a("ff1e::1"), &wire).is_err());
    }

    #[test]
    fn param_problem_roundtrip() {
        let m = Icmpv6::ParamProblem {
            code: PARAM_PROBLEM_ERRONEOUS_FIELD,
            pointer: 48,
        };
        assert_eq!(roundtrip(&m, a("2001:db8:4::d"), a("2001:db8:1::5")), m);
        let m = Icmpv6::ParamProblem {
            code: PARAM_PROBLEM_UNRECOGNIZED_OPTION,
            pointer: 42,
        };
        assert_eq!(roundtrip(&m, a("2001:db8:4::d"), a("2001:db8:1::5")), m);
    }

    #[test]
    fn unknown_type_preserved() {
        let m = Icmpv6::Unknown {
            icmp_type: 200,
            code: 3,
            body: vec![9, 9, 9],
        };
        assert_eq!(roundtrip(&m, a("::1"), a("::2")), m);
    }

    #[test]
    fn truncated_mld_is_error() {
        let m = Icmpv6::MldReport {
            group: a("ff1e::1"),
        };
        let wire = m.encode(a("fe80::1"), a("ff1e::1"));
        assert!(Icmpv6::decode(a("fe80::1"), a("ff1e::1"), &wire[..10]).is_err());
    }

    #[test]
    fn advert_without_prefixes() {
        let m = Icmpv6::RouterAdvert {
            router_lifetime_secs: 0,
            prefixes: vec![],
        };
        assert_eq!(roundtrip(&m, a("fe80::a"), ALL_NODES), m);
    }
}
