//! Decode errors for the IPv6 wire codecs.

use std::fmt;

/// Why a buffer failed to parse as an IPv6 packet / header / message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the fixed part of a structure.
    Truncated {
        what: &'static str,
        needed: usize,
        got: usize,
    },
    /// A version field other than 6.
    BadVersion(u8),
    /// A length field inconsistent with the surrounding buffer.
    BadLength { what: &'static str, value: usize },
    /// Unknown / unsupported discriminator encountered where we must
    /// understand it to continue.
    Unsupported { what: &'static str, value: u32 },
    /// A value violated a protocol invariant (e.g. multicast where unicast
    /// is required).
    Invalid { what: &'static str },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: need {needed} bytes, got {got}")
            }
            DecodeError::BadVersion(v) => write!(f, "bad IP version {v}, expected 6"),
            DecodeError::BadLength { what, value } => {
                write!(f, "bad length for {what}: {value}")
            }
            DecodeError::Unsupported { what, value } => {
                write!(f, "unsupported {what}: {value}")
            }
            DecodeError::Invalid { what } => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Check that at least `needed` bytes remain in `buf`, returning a
/// `Truncated` error naming `what` otherwise.
pub(crate) fn need(buf: &[u8], needed: usize, what: &'static str) -> Result<(), DecodeError> {
    if buf.len() < needed {
        Err(DecodeError::Truncated {
            what,
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}
