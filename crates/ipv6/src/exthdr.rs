//! IPv6 extension headers and the Mobile IPv6 destination options,
//! including the paper's proposed **Multicast Group List Sub-Option**
//! (Figure 5 of the paper).
//!
//! Wire layout follows RFC 2460 (extension header TLVs, 8-octet padding) and
//! draft-ietf-mobileip-ipv6-10 for the Binding Update / Binding
//! Acknowledgement / Binding Request / Home Address destination options.
//! Option type numbers for the mobility options are taken from the draft era
//! (BU = 198, HAO = 201); they only need to be self-consistent inside the
//! simulator.

use crate::addr::GroupAddr;
use crate::error::{need, DecodeError};
use bytes::{BufMut, BytesMut};
use std::net::Ipv6Addr;

/// Option type: Pad1 (a single zero byte).
pub const OPT_PAD1: u8 = 0;
/// Option type: PadN.
pub const OPT_PADN: u8 = 1;
/// Option type: Tunnel Encapsulation Limit (RFC 2473 §4.1.1) — carried in a
/// Destination Options header of a tunnel packet; bounds further nesting.
pub const OPT_TUNNEL_ENCAP_LIMIT: u8 = 4;
/// Option type: Router Alert (RFC 2711) — carried in Hop-by-Hop for MLD.
pub const OPT_ROUTER_ALERT: u8 = 5;
/// Option type: Binding Update (Mobile IPv6 draft).
pub const OPT_BINDING_UPDATE: u8 = 198;
/// Option type: Binding Acknowledgement.
pub const OPT_BINDING_ACK: u8 = 199;
/// Option type: Binding Request.
pub const OPT_BINDING_REQUEST: u8 = 200;
/// Option type: Home Address.
pub const OPT_HOME_ADDRESS: u8 = 201;

/// Sub-option type inside a Binding Update: Unique Identifier (draft).
pub const SUBOPT_UNIQUE_ID: u8 = 1;
/// Sub-option type: Alternate Care-of Address (draft).
pub const SUBOPT_ALT_COA: u8 = 2;
/// Sub-option type: **Multicast Group List** — proposed by the paper
/// (Figure 5). Data is `N` 16-byte multicast group addresses and the length
/// field must equal `16 * N`. Because the Sub-Option Len field is one byte,
/// a single sub-option carries at most 15 groups (240 bytes); encoding more
/// panics.
pub const SUBOPT_MCAST_GROUP_LIST: u8 = 3;

/// Binding Update flag: acknowledgement requested.
pub const BU_FLAG_ACK: u8 = 0x80;
/// Binding Update flag: home registration (required for the Multicast Group
/// List Sub-Option, per the paper: "valid only in a BINDING UPDATE sent to a
/// home agent (Home Registration (H) is set)").
pub const BU_FLAG_HOME: u8 = 0x40;

/// A Binding Update destination option (draft-ietf-mobileip-ipv6-10 §5.1,
/// simplified: flags, sequence number, lifetime, sub-options).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindingUpdate {
    pub flags: u8,
    pub sequence: u16,
    /// Binding lifetime in seconds.
    pub lifetime_secs: u32,
    pub sub_options: Vec<SubOption>,
}

impl BindingUpdate {
    pub fn ack_requested(&self) -> bool {
        self.flags & BU_FLAG_ACK != 0
    }

    pub fn home_registration(&self) -> bool {
        self.flags & BU_FLAG_HOME != 0
    }

    /// The multicast groups requested via the paper's sub-option, if present.
    pub fn multicast_groups(&self) -> Option<&[GroupAddr]> {
        self.sub_options.iter().find_map(|s| match s {
            SubOption::MulticastGroupList(groups) => Some(groups.as_slice()),
            _ => None,
        })
    }
}

/// A Binding Acknowledgement destination option.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindingAck {
    /// 0 = accepted; values ≥ 128 indicate rejection.
    pub status: u8,
    pub sequence: u16,
    pub lifetime_secs: u32,
    /// Suggested refresh interval in seconds.
    pub refresh_secs: u32,
}

impl BindingAck {
    pub fn accepted(&self) -> bool {
        self.status < 128
    }
}

/// Sub-options carried inside a Binding Update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubOption {
    UniqueIdentifier(u16),
    AlternateCoa(Ipv6Addr),
    /// The paper's Figure-5 sub-option: the list of multicast groups the
    /// mobile host asks its home agent to join on its behalf.
    MulticastGroupList(Vec<GroupAddr>),
    Unknown {
        kind: u8,
        data: Vec<u8>,
    },
}

impl SubOption {
    fn data_len(&self) -> usize {
        match self {
            SubOption::UniqueIdentifier(_) => 2,
            SubOption::AlternateCoa(_) => 16,
            SubOption::MulticastGroupList(groups) => 16 * groups.len(),
            SubOption::Unknown { data, .. } => data.len(),
        }
    }

    fn encode(&self, out: &mut BytesMut) {
        let len = self.data_len();
        assert!(len <= 255, "sub-option data too long: {len}");
        match self {
            SubOption::UniqueIdentifier(id) => {
                out.put_u8(SUBOPT_UNIQUE_ID);
                out.put_u8(len as u8);
                out.put_u16(*id);
            }
            SubOption::AlternateCoa(a) => {
                out.put_u8(SUBOPT_ALT_COA);
                out.put_u8(len as u8);
                out.put_slice(&a.octets());
            }
            SubOption::MulticastGroupList(groups) => {
                // Figure 5: "The Sub-Option Len fields must be set to 16N,
                // where N is the number of multicast group addresses."
                out.put_u8(SUBOPT_MCAST_GROUP_LIST);
                out.put_u8(len as u8);
                for g in groups {
                    out.put_slice(&g.addr().octets());
                }
            }
            SubOption::Unknown { kind, data } => {
                out.put_u8(*kind);
                out.put_u8(len as u8);
                out.put_slice(data);
            }
        }
    }

    fn decode(kind: u8, data: &[u8]) -> Result<SubOption, DecodeError> {
        match kind {
            SUBOPT_UNIQUE_ID => {
                need(data, 2, "unique identifier sub-option")?;
                Ok(SubOption::UniqueIdentifier(u16::from_be_bytes([
                    data[0], data[1],
                ])))
            }
            SUBOPT_ALT_COA => {
                need(data, 16, "alternate care-of address sub-option")?;
                Ok(SubOption::AlternateCoa(read_addr(data)?))
            }
            SUBOPT_MCAST_GROUP_LIST => {
                if !data.len().is_multiple_of(16) {
                    return Err(DecodeError::BadLength {
                        what: "multicast group list sub-option (must be 16*N)",
                        value: data.len(),
                    });
                }
                let mut groups = Vec::with_capacity(data.len() / 16);
                for chunk in data.chunks_exact(16) {
                    let addr = read_addr(chunk)?;
                    let group = GroupAddr::try_new(addr).ok_or(DecodeError::Invalid {
                        what: "non-multicast address in multicast group list",
                    })?;
                    groups.push(group);
                }
                Ok(SubOption::MulticastGroupList(groups))
            }
            _ => Ok(SubOption::Unknown {
                kind,
                data: data.to_vec(),
            }),
        }
    }
}

/// What a node must do with an option whose Option Type it does not
/// recognize, per RFC 8200 §4.2: the two high-order bits of the type byte
/// encode the required disposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnknownOptionAction {
    /// `00` — skip over this option and continue processing the header.
    Skip,
    /// `01` — discard the packet silently.
    Discard,
    /// `10` — discard the packet and, regardless of whether the destination
    /// was multicast, send an ICMPv6 Parameter Problem (code 2) to the
    /// source, pointing at the unrecognized Option Type.
    DiscardSendIcmp,
    /// `11` — discard the packet and send the Parameter Problem only if the
    /// destination was not a multicast address.
    DiscardSendIcmpUnlessMulticast,
}

impl UnknownOptionAction {
    /// The action encoded in the two high-order bits of an Option Type.
    pub fn for_option_type(kind: u8) -> UnknownOptionAction {
        match kind >> 6 {
            0 => UnknownOptionAction::Skip,
            1 => UnknownOptionAction::Discard,
            2 => UnknownOptionAction::DiscardSendIcmp,
            _ => UnknownOptionAction::DiscardSendIcmpUnlessMulticast,
        }
    }

    /// True if the packet carrying the option must be discarded.
    pub fn discards(self) -> bool {
        !matches!(self, UnknownOptionAction::Skip)
    }

    /// True if an ICMPv6 Parameter Problem (code 2) must be sent to the
    /// source, given whether the packet's destination was multicast.
    pub fn sends_icmp(self, dst_is_multicast: bool) -> bool {
        match self {
            UnknownOptionAction::Skip | UnknownOptionAction::Discard => false,
            UnknownOptionAction::DiscardSendIcmp => true,
            UnknownOptionAction::DiscardSendIcmpUnlessMulticast => !dst_is_multicast,
        }
    }
}

/// A single TLV option inside a Hop-by-Hop or Destination Options header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Option6 {
    PadN(u8),
    /// Router alert value (0 = MLD).
    RouterAlert(u16),
    /// RFC 2473 Tunnel Encapsulation Limit: how many further tunnel levels
    /// this packet may be wrapped in. An encapsulator seeing 0 must discard
    /// the packet and send an ICMPv6 Parameter Problem to the inner source.
    TunnelEncapLimit(u8),
    BindingUpdate(BindingUpdate),
    BindingAck(BindingAck),
    BindingRequest,
    HomeAddress(Ipv6Addr),
    Unknown {
        kind: u8,
        data: Vec<u8>,
    },
}

impl Option6 {
    fn encode(&self, out: &mut BytesMut) {
        match self {
            Option6::PadN(n) => {
                if *n == 1 {
                    out.put_u8(OPT_PAD1);
                } else {
                    out.put_u8(OPT_PADN);
                    out.put_u8(n - 2);
                    out.put_bytes(0, usize::from(*n) - 2);
                }
            }
            Option6::RouterAlert(v) => {
                out.put_u8(OPT_ROUTER_ALERT);
                out.put_u8(2);
                out.put_u16(*v);
            }
            Option6::TunnelEncapLimit(limit) => {
                out.put_u8(OPT_TUNNEL_ENCAP_LIMIT);
                out.put_u8(1);
                out.put_u8(*limit);
            }
            Option6::BindingUpdate(bu) => {
                let mut body = BytesMut::new();
                body.put_u8(bu.flags);
                body.put_u8(0); // reserved
                body.put_u16(bu.sequence);
                body.put_u32(bu.lifetime_secs);
                for sub in &bu.sub_options {
                    sub.encode(&mut body);
                }
                assert!(body.len() <= 255, "binding update option too long");
                out.put_u8(OPT_BINDING_UPDATE);
                out.put_u8(body.len() as u8);
                out.put_slice(&body);
            }
            Option6::BindingAck(ba) => {
                out.put_u8(OPT_BINDING_ACK);
                out.put_u8(12);
                out.put_u8(ba.status);
                out.put_u8(0); // reserved
                out.put_u16(ba.sequence);
                out.put_u32(ba.lifetime_secs);
                out.put_u32(ba.refresh_secs);
            }
            Option6::BindingRequest => {
                out.put_u8(OPT_BINDING_REQUEST);
                out.put_u8(0);
            }
            Option6::HomeAddress(a) => {
                out.put_u8(OPT_HOME_ADDRESS);
                out.put_u8(16);
                out.put_slice(&a.octets());
            }
            Option6::Unknown { kind, data } => {
                assert!(data.len() <= 255);
                out.put_u8(*kind);
                out.put_u8(data.len() as u8);
                out.put_slice(data);
            }
        }
    }

    fn decode(kind: u8, data: &[u8]) -> Result<Option6, DecodeError> {
        match kind {
            OPT_PADN => Ok(Option6::PadN(data.len() as u8 + 2)),
            OPT_ROUTER_ALERT => {
                need(data, 2, "router alert option")?;
                Ok(Option6::RouterAlert(u16::from_be_bytes([data[0], data[1]])))
            }
            OPT_TUNNEL_ENCAP_LIMIT => {
                need(data, 1, "tunnel encapsulation limit option")?;
                Ok(Option6::TunnelEncapLimit(data[0]))
            }
            OPT_BINDING_UPDATE => {
                need(data, 8, "binding update option")?;
                let flags = data[0];
                let sequence = u16::from_be_bytes([data[2], data[3]]);
                let lifetime_secs = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
                let mut sub_options = Vec::new();
                let mut rest = &data[8..];
                while !rest.is_empty() {
                    need(rest, 2, "binding update sub-option header")?;
                    let sk = rest[0];
                    let sl = usize::from(rest[1]);
                    need(&rest[2..], sl, "binding update sub-option data")?;
                    sub_options.push(SubOption::decode(sk, &rest[2..2 + sl])?);
                    rest = &rest[2 + sl..];
                }
                Ok(Option6::BindingUpdate(BindingUpdate {
                    flags,
                    sequence,
                    lifetime_secs,
                    sub_options,
                }))
            }
            OPT_BINDING_ACK => {
                need(data, 12, "binding ack option")?;
                Ok(Option6::BindingAck(BindingAck {
                    status: data[0],
                    sequence: u16::from_be_bytes([data[2], data[3]]),
                    lifetime_secs: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                    refresh_secs: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                }))
            }
            OPT_BINDING_REQUEST => Ok(Option6::BindingRequest),
            OPT_HOME_ADDRESS => {
                need(data, 16, "home address option")?;
                Ok(Option6::HomeAddress(read_addr(data)?))
            }
            _ => Ok(Option6::Unknown {
                kind,
                data: data.to_vec(),
            }),
        }
    }
}

/// Type-0 routing header (used by correspondent nodes to route via a care-of
/// address; the paper's tunnels use encapsulation instead, but both are
/// provided).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingHeader {
    pub segments_left: u8,
    pub addresses: Vec<Ipv6Addr>,
}

/// One IPv6 extension header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExtHeader {
    HopByHop(Vec<Option6>),
    DestinationOptions(Vec<Option6>),
    Routing(RoutingHeader),
}

impl ExtHeader {
    /// The `next_header` protocol number identifying this extension header.
    pub fn protocol(&self) -> u8 {
        match self {
            ExtHeader::HopByHop(_) => crate::packet::proto::HOP_BY_HOP,
            ExtHeader::DestinationOptions(_) => crate::packet::proto::DEST_OPTS,
            ExtHeader::Routing(_) => crate::packet::proto::ROUTING,
        }
    }

    /// Encode, writing `next` as the chained next-header value. The encoded
    /// length is always a multiple of 8 octets (padded with PadN).
    pub fn encode(&self, next: u8, out: &mut BytesMut) {
        match self {
            ExtHeader::HopByHop(opts) | ExtHeader::DestinationOptions(opts) => {
                let mut body = BytesMut::new();
                for o in opts {
                    o.encode(&mut body);
                }
                // Pad the 2-byte header + options out to a multiple of 8.
                let unpadded = 2 + body.len();
                let pad = (8 - unpadded % 8) % 8;
                if pad == 1 {
                    Option6::PadN(1).encode(&mut body);
                } else if pad >= 2 {
                    Option6::PadN(pad as u8).encode(&mut body);
                }
                let total = 2 + body.len();
                debug_assert_eq!(total % 8, 0);
                out.put_u8(next);
                out.put_u8((total / 8 - 1) as u8);
                out.put_slice(&body);
            }
            ExtHeader::Routing(rh) => {
                let total = 8 + 16 * rh.addresses.len();
                debug_assert_eq!(total % 8, 0);
                out.put_u8(next);
                out.put_u8((total / 8 - 1) as u8);
                out.put_u8(0); // routing type 0
                out.put_u8(rh.segments_left);
                out.put_u32(0); // reserved
                for a in &rh.addresses {
                    out.put_slice(&a.octets());
                }
            }
        }
    }

    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            ExtHeader::HopByHop(opts) | ExtHeader::DestinationOptions(opts) => {
                let mut body = 0usize;
                for o in opts {
                    body += encoded_option_len(o);
                }
                let unpadded = 2 + body;
                unpadded + (8 - unpadded % 8) % 8
            }
            ExtHeader::Routing(rh) => 8 + 16 * rh.addresses.len(),
        }
    }

    /// Decode one extension header of kind `proto` from the front of `buf`.
    /// Returns the header, the chained next-header value and the number of
    /// bytes consumed.
    pub fn decode(proto: u8, buf: &[u8]) -> Result<(ExtHeader, u8, usize), DecodeError> {
        use crate::packet::proto::*;
        need(buf, 2, "extension header")?;
        let next = buf[0];
        match proto {
            HOP_BY_HOP | DEST_OPTS => {
                let total = 8 * (usize::from(buf[1]) + 1);
                need(buf, total, "options extension header")?;
                let mut opts = Vec::new();
                let mut rest = &buf[2..total];
                while !rest.is_empty() {
                    if rest[0] == OPT_PAD1 {
                        rest = &rest[1..];
                        continue;
                    }
                    need(rest, 2, "option header")?;
                    let kind = rest[0];
                    let len = usize::from(rest[1]);
                    need(&rest[2..], len, "option data")?;
                    let opt = Option6::decode(kind, &rest[2..2 + len])?;
                    // Swallow decoded padding; it is a wire artifact.
                    if !matches!(opt, Option6::PadN(_)) {
                        opts.push(opt);
                    }
                    rest = &rest[2 + len..];
                }
                let hdr = if proto == HOP_BY_HOP {
                    ExtHeader::HopByHop(opts)
                } else {
                    ExtHeader::DestinationOptions(opts)
                };
                Ok((hdr, next, total))
            }
            ROUTING => {
                let total = 8 * (usize::from(buf[1]) + 1);
                need(buf, total, "routing header")?;
                if buf[2] != 0 {
                    return Err(DecodeError::Unsupported {
                        what: "routing header type",
                        value: u32::from(buf[2]),
                    });
                }
                let segments_left = buf[3];
                let naddr = (total - 8) / 16;
                let mut addresses = Vec::with_capacity(naddr);
                for i in 0..naddr {
                    addresses.push(read_addr(&buf[8 + 16 * i..])?);
                }
                Ok((
                    ExtHeader::Routing(RoutingHeader {
                        segments_left,
                        addresses,
                    }),
                    next,
                    total,
                ))
            }
            _ => Err(DecodeError::Unsupported {
                what: "extension header protocol",
                value: u32::from(proto),
            }),
        }
    }

    /// Convenience: the options of a destination-options header, if that is
    /// what this is.
    pub fn dest_options(&self) -> Option<&[Option6]> {
        match self {
            ExtHeader::DestinationOptions(opts) => Some(opts),
            _ => None,
        }
    }
}

pub(crate) fn encoded_option_len(o: &Option6) -> usize {
    match o {
        Option6::PadN(n) => usize::from(*n),
        Option6::RouterAlert(_) => 4,
        Option6::TunnelEncapLimit(_) => 3,
        Option6::BindingUpdate(bu) => {
            2 + 8
                + bu.sub_options
                    .iter()
                    .map(|s| 2 + s.data_len())
                    .sum::<usize>()
        }
        Option6::BindingAck(_) => 14,
        Option6::BindingRequest => 2,
        Option6::HomeAddress(_) => 18,
        Option6::Unknown { data, .. } => 2 + data.len(),
    }
}

/// Read a 16-byte IPv6 address from the front of `buf`, as a typed error
/// instead of a slice panic when the buffer is short. Every call site also
/// guards with [`need`], so the error arm is belt-and-braces against future
/// decode paths that forget to.
pub(crate) fn read_addr(buf: &[u8]) -> Result<Ipv6Addr, DecodeError> {
    let Some(head) = buf.get(..16) else {
        return Err(DecodeError::Truncated {
            what: "IPv6 address",
            needed: 16,
            got: buf.len(),
        });
    };
    let mut o = [0u8; 16];
    o.copy_from_slice(head);
    Ok(Ipv6Addr::from(o))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::proto;

    fn roundtrip(h: &ExtHeader) -> ExtHeader {
        let mut out = BytesMut::new();
        h.encode(proto::NONE, &mut out);
        assert_eq!(out.len(), h.wire_len(), "wire_len mismatch for {h:?}");
        assert_eq!(out.len() % 8, 0, "extension header must be 8-aligned");
        let (decoded, next, used) = ExtHeader::decode(h.protocol(), &out).expect("decode");
        assert_eq!(next, proto::NONE);
        assert_eq!(used, out.len());
        decoded
    }

    #[test]
    fn router_alert_roundtrip() {
        let h = ExtHeader::HopByHop(vec![Option6::RouterAlert(0)]);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn home_address_roundtrip() {
        let h = ExtHeader::DestinationOptions(vec![Option6::HomeAddress(
            "2001:db8:1::77".parse().unwrap(),
        )]);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn binding_update_roundtrip_with_group_list() {
        let groups = vec![GroupAddr::test_group(1), GroupAddr::test_group(2)];
        let bu = BindingUpdate {
            flags: BU_FLAG_ACK | BU_FLAG_HOME,
            sequence: 42,
            lifetime_secs: 256,
            sub_options: vec![
                SubOption::UniqueIdentifier(7),
                SubOption::MulticastGroupList(groups.clone()),
            ],
        };
        let h = ExtHeader::DestinationOptions(vec![Option6::BindingUpdate(bu.clone())]);
        let d = roundtrip(&h);
        let opts = d.dest_options().unwrap();
        match &opts[0] {
            Option6::BindingUpdate(got) => {
                assert_eq!(got, &bu);
                assert!(got.home_registration());
                assert!(got.ack_requested());
                assert_eq!(got.multicast_groups().unwrap(), groups.as_slice());
            }
            other => panic!("unexpected option {other:?}"),
        }
    }

    #[test]
    fn figure5_suboption_len_is_16n() {
        // The paper's Figure 5 requires Sub-Option Len = 16 * N.
        for n in 0..5u16 {
            let groups: Vec<GroupAddr> = (0..n).map(GroupAddr::test_group).collect();
            let sub = SubOption::MulticastGroupList(groups);
            let mut out = BytesMut::new();
            sub.encode(&mut out);
            assert_eq!(out[0], SUBOPT_MCAST_GROUP_LIST);
            assert_eq!(usize::from(out[1]), 16 * usize::from(n));
            assert_eq!(out.len(), 2 + 16 * usize::from(n));
        }
    }

    #[test]
    fn group_list_rejects_unicast() {
        let mut data = Vec::new();
        data.extend_from_slice(&"2001:db8::1".parse::<Ipv6Addr>().unwrap().octets());
        let err = SubOption::decode(SUBOPT_MCAST_GROUP_LIST, &data).unwrap_err();
        assert!(matches!(err, DecodeError::Invalid { .. }));
    }

    #[test]
    fn group_list_rejects_ragged_length() {
        let err = SubOption::decode(SUBOPT_MCAST_GROUP_LIST, &[0u8; 17]).unwrap_err();
        assert!(matches!(err, DecodeError::BadLength { .. }));
    }

    #[test]
    fn binding_ack_roundtrip() {
        let ba = BindingAck {
            status: 0,
            sequence: 9,
            lifetime_secs: 256,
            refresh_secs: 128,
        };
        assert!(ba.accepted());
        let h = ExtHeader::DestinationOptions(vec![Option6::BindingAck(ba.clone())]);
        let d = roundtrip(&h);
        assert_eq!(
            d.dest_options().unwrap()[0],
            Option6::BindingAck(ba.clone())
        );
        let rejected = BindingAck { status: 130, ..ba };
        assert!(!rejected.accepted());
    }

    #[test]
    fn binding_request_roundtrip() {
        let h = ExtHeader::DestinationOptions(vec![Option6::BindingRequest]);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn routing_header_roundtrip() {
        let h = ExtHeader::Routing(RoutingHeader {
            segments_left: 1,
            addresses: vec!["2001:db8:6::abcd".parse().unwrap()],
        });
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn tunnel_encap_limit_roundtrip() {
        let h = ExtHeader::DestinationOptions(vec![Option6::TunnelEncapLimit(4)]);
        assert_eq!(roundtrip(&h), h);
        let zero = ExtHeader::DestinationOptions(vec![Option6::TunnelEncapLimit(0)]);
        assert_eq!(roundtrip(&zero), zero);
    }

    #[test]
    fn unknown_option_preserved() {
        let h = ExtHeader::DestinationOptions(vec![Option6::Unknown {
            kind: 77,
            data: vec![1, 2, 3],
        }]);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn multiple_options_in_one_header() {
        let h = ExtHeader::DestinationOptions(vec![
            Option6::HomeAddress("2001:db8:1::1".parse().unwrap()),
            Option6::BindingRequest,
        ]);
        assert_eq!(roundtrip(&h), h);
    }

    #[test]
    fn truncated_header_is_error() {
        assert!(ExtHeader::decode(proto::DEST_OPTS, &[58]).is_err());
        // Claims 8 bytes but provides 4.
        assert!(ExtHeader::decode(proto::DEST_OPTS, &[58, 0, 1, 0]).is_err());
    }

    #[test]
    fn unknown_option_class_00_is_skipped() {
        // High bits 00: process the rest of the header normally.
        let act = UnknownOptionAction::for_option_type(0x3e);
        assert_eq!(act, UnknownOptionAction::Skip);
        assert!(!act.discards());
        assert!(!act.sends_icmp(false));
        assert!(!act.sends_icmp(true));
    }

    #[test]
    fn unknown_option_class_01_discards_silently() {
        // High bits 01: discard, never report.
        let act = UnknownOptionAction::for_option_type(0x7e);
        assert_eq!(act, UnknownOptionAction::Discard);
        assert!(act.discards());
        assert!(!act.sends_icmp(false));
        assert!(!act.sends_icmp(true));
    }

    #[test]
    fn unknown_option_class_10_discards_and_reports() {
        // High bits 10: discard and send Parameter Problem even for
        // multicast destinations.
        let act = UnknownOptionAction::for_option_type(0xbe);
        assert_eq!(act, UnknownOptionAction::DiscardSendIcmp);
        assert!(act.discards());
        assert!(act.sends_icmp(false));
        assert!(act.sends_icmp(true));
    }

    #[test]
    fn unknown_option_class_11_spares_multicast() {
        // High bits 11: discard; report only when the destination was not
        // multicast (avoids ICMP implosion onto a multicast source).
        let act = UnknownOptionAction::for_option_type(0xfe);
        assert_eq!(act, UnknownOptionAction::DiscardSendIcmpUnlessMulticast);
        assert!(act.discards());
        assert!(act.sends_icmp(false));
        assert!(!act.sends_icmp(true));
    }

    #[test]
    fn known_option_types_classify_as_expected() {
        // Our registered mobility options live in the 11-class (198..=201);
        // Router Alert and the pads are 00-class.
        assert_eq!(
            UnknownOptionAction::for_option_type(OPT_ROUTER_ALERT),
            UnknownOptionAction::Skip
        );
        assert_eq!(
            UnknownOptionAction::for_option_type(OPT_BINDING_UPDATE),
            UnknownOptionAction::DiscardSendIcmpUnlessMulticast
        );
    }

    #[test]
    fn short_address_is_typed_error() {
        assert!(matches!(
            read_addr(&[0u8; 8]),
            Err(DecodeError::Truncated {
                needed: 16,
                got: 8,
                ..
            })
        ));
    }

    #[test]
    fn unsupported_routing_type_is_error() {
        let mut out = BytesMut::new();
        ExtHeader::Routing(RoutingHeader {
            segments_left: 0,
            addresses: vec![],
        })
        .encode(proto::NONE, &mut out);
        let mut bytes = out.to_vec();
        bytes[2] = 2; // routing type 2: unsupported
        assert!(matches!(
            ExtHeader::decode(proto::ROUTING, &bytes),
            Err(DecodeError::Unsupported { .. })
        ));
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn fifteen_groups_fit_in_one_suboption() {
        let groups: Vec<GroupAddr> = (0..15).map(GroupAddr::test_group).collect();
        let mut out = BytesMut::new();
        SubOption::MulticastGroupList(groups).encode(&mut out);
        assert_eq!(out[1], 240, "len field at its maximum");
    }

    #[test]
    #[should_panic(expected = "sub-option data too long")]
    fn sixteen_groups_overflow_the_len_field() {
        // The Figure-5 format's one-byte length caps a single sub-option at
        // 15 groups; larger lists must be split across Binding Updates.
        let groups: Vec<GroupAddr> = (0..16).map(GroupAddr::test_group).collect();
        let mut out = BytesMut::new();
        SubOption::MulticastGroupList(groups).encode(&mut out);
    }
}
