//! IPv6 addresses, prefixes and the well-known addresses this system uses.
//!
//! We reuse [`std::net::Ipv6Addr`] for the address itself and add the pieces
//! the simulation needs: CIDR prefixes with containment tests, stateless
//! address autoconfiguration (prefix + interface identifier), and the
//! well-known multicast groups of MLD and PIM.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// All-nodes link-local multicast (`ff02::1`). MLD queries go here.
pub const ALL_NODES: Ipv6Addr = Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 1);
/// All-routers link-local multicast (`ff02::2`). MLD Done goes here.
pub const ALL_ROUTERS: Ipv6Addr = Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 2);
/// All-PIM-routers link-local multicast (`ff02::d`). PIM control goes here.
pub const ALL_PIM_ROUTERS: Ipv6Addr = Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 0xd);
/// The unspecified address `::`.
pub const UNSPECIFIED: Ipv6Addr = Ipv6Addr::UNSPECIFIED;

/// Is `a` any multicast address (`ff00::/8`)?
#[inline]
pub fn is_multicast(a: Ipv6Addr) -> bool {
    a.octets()[0] == 0xff
}

/// Is `a` a link-local unicast address (`fe80::/10`)?
#[inline]
pub fn is_link_local(a: Ipv6Addr) -> bool {
    let o = a.octets();
    o[0] == 0xfe && (o[1] & 0xc0) == 0x80
}

/// Multicast scope nibble (RFC 4291 §2.7); 2 = link-local, 5 = site, 14 = global.
#[inline]
pub fn multicast_scope(a: Ipv6Addr) -> Option<u8> {
    is_multicast(a).then(|| a.octets()[1] & 0x0f)
}

/// Construct an address from a 64-bit network prefix part and a 64-bit
/// interface identifier.
pub fn from_parts(net: u64, iid: u64) -> Ipv6Addr {
    let bits = (u128::from(net) << 64) | u128::from(iid);
    Ipv6Addr::from(bits)
}

/// The link-local address for interface identifier `iid` (`fe80::/64` + iid).
pub fn link_local(iid: u64) -> Ipv6Addr {
    from_parts(0xfe80_0000_0000_0000, iid)
}

/// An IPv6 CIDR prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv6Addr,
    len: u8,
}

impl Prefix {
    /// Create a prefix; host bits of `addr` are masked off. Panics if
    /// `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} > 128");
        let bits = u128::from(addr) & Self::mask(len);
        Prefix {
            addr: Ipv6Addr::from(bits),
            len,
        }
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - u32::from(len))
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv6Addr {
        self.addr
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Does this prefix contain `a`?
    pub fn contains(&self, a: Ipv6Addr) -> bool {
        (u128::from(a) & Self::mask(self.len)) == u128::from(self.addr)
    }

    /// An address within this prefix with the given interface identifier in
    /// the low 64 bits. Intended for /64 prefixes (stateless
    /// autoconfiguration, RFC 2462); for longer prefixes the iid is masked
    /// into the host part.
    pub fn addr_with_iid(&self, iid: u64) -> Ipv6Addr {
        let host_mask = !Self::mask(self.len);
        let bits = u128::from(self.addr) | (u128::from(iid) & host_mask);
        Ipv6Addr::from(bits)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or("missing '/' in prefix")?;
        let addr: Ipv6Addr = a.parse().map_err(|e| format!("bad address: {e}"))?;
        let len: u8 = l.parse().map_err(|e| format!("bad length: {e}"))?;
        if len > 128 {
            return Err(format!("prefix length {len} > 128"));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// A multicast group address. Thin validated wrapper so APIs that require a
/// group can say so in their types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupAddr(Ipv6Addr);

impl GroupAddr {
    /// Wrap a multicast address. Panics if `a` is not multicast — group
    /// addresses are constructed from literals / config, so this is a
    /// programming error, not input validation.
    pub fn new(a: Ipv6Addr) -> Self {
        assert!(is_multicast(a), "{a} is not a multicast address");
        GroupAddr(a)
    }

    /// Fallible variant for wire decoding.
    pub fn try_new(a: Ipv6Addr) -> Option<Self> {
        is_multicast(a).then_some(GroupAddr(a))
    }

    /// A transient global-scope test group `ff1e::/32` + index.
    pub fn test_group(index: u16) -> Self {
        GroupAddr(Ipv6Addr::new(0xff1e, 0, 0, 0, 0, 0, 0, index))
    }

    pub fn addr(&self) -> Ipv6Addr {
        self.0
    }
}

impl fmt::Debug for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<GroupAddr> for Ipv6Addr {
    fn from(g: GroupAddr) -> Ipv6Addr {
        g.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_addresses() {
        assert!(is_multicast(ALL_NODES));
        assert!(is_multicast(ALL_ROUTERS));
        assert!(is_multicast(ALL_PIM_ROUTERS));
        assert_eq!(multicast_scope(ALL_NODES), Some(2));
        assert!(!is_multicast(UNSPECIFIED));
    }

    #[test]
    fn link_local_construction() {
        let a = link_local(0x1234);
        assert!(is_link_local(a));
        assert_eq!(a, "fe80::1234".parse::<Ipv6Addr>().unwrap());
        assert!(!is_link_local("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "2001:db8:1::/64".parse().unwrap();
        assert!(p.contains("2001:db8:1::42".parse().unwrap()));
        assert!(!p.contains("2001:db8:2::42".parse().unwrap()));
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new("2001:db8:1::dead:beef".parse().unwrap(), 64);
        assert_eq!(p.network(), "2001:db8:1::".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn prefix_zero_and_full_length() {
        let all = Prefix::new(UNSPECIFIED, 0);
        assert!(all.contains("2001:db8::1".parse().unwrap()));
        let host = Prefix::new("2001:db8::1".parse().unwrap(), 128);
        assert!(host.contains("2001:db8::1".parse().unwrap()));
        assert!(!host.contains("2001:db8::2".parse().unwrap()));
    }

    #[test]
    fn addr_with_iid_slaac() {
        let p: Prefix = "2001:db8:6::/64".parse().unwrap();
        let a = p.addr_with_iid(0xabcd);
        assert_eq!(a, "2001:db8:6::abcd".parse::<Ipv6Addr>().unwrap());
        assert!(p.contains(a));
    }

    #[test]
    fn prefix_parse_errors() {
        assert!("2001:db8::1".parse::<Prefix>().is_err());
        assert!("2001:db8::1/129".parse::<Prefix>().is_err());
        assert!("nonsense/64".parse::<Prefix>().is_err());
    }

    #[test]
    fn group_addr_validation() {
        let g = GroupAddr::test_group(7);
        assert!(is_multicast(g.addr()));
        assert!(GroupAddr::try_new("2001:db8::1".parse().unwrap()).is_none());
        assert!(GroupAddr::try_new(ALL_NODES).is_some());
    }

    #[test]
    #[should_panic(expected = "not a multicast address")]
    fn group_addr_panics_on_unicast() {
        GroupAddr::new("2001:db8::1".parse().unwrap());
    }

    #[test]
    fn from_parts_layout() {
        let a = from_parts(0x2001_0db8_0001_0000, 0x1);
        assert_eq!(a, "2001:db8:1::1".parse::<Ipv6Addr>().unwrap());
    }
}
