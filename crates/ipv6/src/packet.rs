//! The IPv6 packet: fixed header, chained extension headers, payload.
//!
//! Packets are carried through the simulated network as real wire bytes
//! (`encode` / `decode` round-trip), which is what gives the experiment
//! harness byte-accurate bandwidth accounting — e.g. the 40-byte-per-packet
//! encapsulation overhead of the tunnel approaches falls out of the math
//! instead of being asserted.

use crate::error::{need, DecodeError};
use crate::exthdr::{encoded_option_len, read_addr, ExtHeader, Option6, UnknownOptionAction};
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv6Addr;

/// Protocol numbers used in `next_header` fields.
pub mod proto {
    /// Hop-by-Hop options extension header.
    pub const HOP_BY_HOP: u8 = 0;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
    /// IPv6-in-IPv6 encapsulation (RFC 2473).
    pub const IPV6: u8 = 41;
    pub const ROUTING: u8 = 43;
    pub const ICMPV6: u8 = 58;
    /// No next header.
    pub const NONE: u8 = 59;
    pub const DEST_OPTS: u8 = 60;
    /// Protocol Independent Multicast.
    pub const PIM: u8 = 103;
}

/// Size of the fixed IPv6 header in bytes — also the per-packet overhead of
/// IPv6-in-IPv6 tunneling.
pub const FIXED_HEADER_LEN: usize = 40;

/// Default hop limit for ordinary packets.
pub const DEFAULT_HOP_LIMIT: u8 = 64;

/// A parsed IPv6 packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    pub src: Ipv6Addr,
    pub dst: Ipv6Addr,
    pub hop_limit: u8,
    pub traffic_class: u8,
    pub flow_label: u32,
    /// Extension headers in wire order.
    pub ext: Vec<ExtHeader>,
    /// Protocol of `payload` (`proto::*`).
    pub payload_proto: u8,
    /// Upper-layer payload bytes (already encoded by the upper protocol).
    pub payload: Bytes,
}

impl Packet {
    /// A plain packet with no extension headers.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, payload_proto: u8, payload: Bytes) -> Self {
        Packet {
            src,
            dst,
            hop_limit: DEFAULT_HOP_LIMIT,
            traffic_class: 0,
            flow_label: 0,
            ext: Vec::new(),
            payload_proto,
            payload,
        }
    }

    pub fn with_hop_limit(mut self, hop_limit: u8) -> Self {
        self.hop_limit = hop_limit;
        self
    }

    pub fn with_ext(mut self, ext: ExtHeader) -> Self {
        self.ext.push(ext);
        self
    }

    /// Total length on the wire, in bytes.
    pub fn wire_len(&self) -> usize {
        FIXED_HEADER_LEN
            + self.ext.iter().map(ExtHeader::wire_len).sum::<usize>()
            + self.payload.len()
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.wire_len());
        let payload_len: usize =
            self.ext.iter().map(ExtHeader::wire_len).sum::<usize>() + self.payload.len();
        assert!(payload_len <= usize::from(u16::MAX), "payload too large");

        let first_proto = self
            .ext
            .first()
            .map(ExtHeader::protocol)
            .unwrap_or(self.payload_proto);

        let vtf: u32 =
            (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0xfffff);
        out.put_u32(vtf);
        out.put_u16(payload_len as u16);
        out.put_u8(first_proto);
        out.put_u8(self.hop_limit);
        out.put_slice(&self.src.octets());
        out.put_slice(&self.dst.octets());

        for (i, h) in self.ext.iter().enumerate() {
            let next = self
                .ext
                .get(i + 1)
                .map(ExtHeader::protocol)
                .unwrap_or(self.payload_proto);
            h.encode(next, &mut out);
        }
        out.put_slice(&self.payload);
        debug_assert_eq!(out.len(), self.wire_len());
        out.freeze()
    }

    /// Parse from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Packet, DecodeError> {
        need(buf, FIXED_HEADER_LEN, "IPv6 fixed header")?;
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(DecodeError::BadVersion(version));
        }
        let vtf = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let traffic_class = ((vtf >> 20) & 0xff) as u8;
        let flow_label = vtf & 0xfffff;
        let payload_len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        let mut next = buf[6];
        let hop_limit = buf[7];
        let src = read_addr(&buf[8..24])?;
        let dst = read_addr(&buf[24..40])?;
        need(&buf[FIXED_HEADER_LEN..], payload_len, "IPv6 payload")?;
        let body = &buf[FIXED_HEADER_LEN..FIXED_HEADER_LEN + payload_len];

        let mut ext = Vec::new();
        let mut offset = 0usize;
        while matches!(next, proto::HOP_BY_HOP | proto::ROUTING | proto::DEST_OPTS) {
            let (h, n, used) = ExtHeader::decode(next, &body[offset..])?;
            ext.push(h);
            next = n;
            offset += used;
        }
        Ok(Packet {
            src,
            dst,
            hop_limit,
            traffic_class,
            flow_label,
            ext,
            payload_proto: next,
            payload: Bytes::copy_from_slice(&body[offset..]),
        })
    }

    /// True if the destination is a multicast address.
    pub fn is_multicast(&self) -> bool {
        crate::addr::is_multicast(self.dst)
    }

    /// First destination-options extension header, if any.
    pub fn dest_options(&self) -> Option<&[crate::exthdr::Option6]> {
        self.ext.iter().find_map(ExtHeader::dest_options)
    }

    /// The Home Address destination option, if present (Mobile IPv6 senders
    /// away from home attach it so correspondents learn their home address).
    pub fn home_address_option(&self) -> Option<Ipv6Addr> {
        self.dest_options()?.iter().find_map(|o| match o {
            crate::exthdr::Option6::HomeAddress(a) => Some(*a),
            _ => None,
        })
    }

    /// RFC 8200 §4.2: scan the extension headers for an option whose type
    /// the node does not recognize and whose high-order bits demand more
    /// than skipping it. Returns the mandated action together with the
    /// Parameter Problem pointer — the byte offset of the offending Option
    /// Type within the packet as this node would re-encode it.
    ///
    /// Interior padding is normalized away during decode, so for frames that
    /// were mangled in flight the pointer is the canonical offset, which is
    /// what the simulator's single encoder would have produced.
    pub fn unknown_option_problem(&self) -> Option<(UnknownOptionAction, u32)> {
        let mut offset = FIXED_HEADER_LEN;
        for h in &self.ext {
            if let ExtHeader::HopByHop(opts) | ExtHeader::DestinationOptions(opts) = h {
                // 2 bytes of next-header + length precede the first option.
                let mut inner = offset + 2;
                for o in opts {
                    if let Option6::Unknown { kind, .. } = o {
                        let action = UnknownOptionAction::for_option_type(*kind);
                        if action.discards() {
                            return Some((action, inner as u32));
                        }
                    }
                    inner += encoded_option_len(o);
                }
            }
            offset += h.wire_len();
        }
        None
    }
}

/// Internet checksum (RFC 1071) over the IPv6 pseudo-header plus a message
/// body; used by ICMPv6 (and therefore MLD) and available to UDP.
pub fn pseudo_header_checksum(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, body: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut add16 = |hi: u8, lo: u8| {
        sum += u32::from(u16::from_be_bytes([hi, lo]));
    };
    for chunk in src.octets().chunks_exact(2) {
        add16(chunk[0], chunk[1]);
    }
    for chunk in dst.octets().chunks_exact(2) {
        add16(chunk[0], chunk[1]);
    }
    let len = body.len() as u32;
    sum += len >> 16;
    sum += len & 0xffff;
    sum += u32::from(next_header);
    let mut iter = body.chunks_exact(2);
    for chunk in &mut iter {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = iter.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exthdr::{Option6, RoutingHeader};

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn plain_packet_roundtrip() {
        let p = Packet::new(
            addr("2001:db8:1::1"),
            addr("2001:db8:2::2"),
            proto::UDP,
            Bytes::from_static(b"hello world"),
        );
        let wire = p.encode();
        assert_eq!(wire.len(), p.wire_len());
        assert_eq!(wire.len(), 40 + 11);
        let q = Packet::decode(&wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn packet_with_ext_headers_roundtrip() {
        let p = Packet::new(
            addr("fe80::1"),
            crate::addr::ALL_NODES,
            proto::ICMPV6,
            Bytes::from_static(&[1, 2, 3, 4]),
        )
        .with_hop_limit(1)
        .with_ext(ExtHeader::HopByHop(vec![Option6::RouterAlert(0)]))
        .with_ext(ExtHeader::DestinationOptions(vec![Option6::HomeAddress(
            addr("2001:db8:1::9"),
        )]));
        let wire = p.encode();
        let q = Packet::decode(&wire).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.home_address_option(), Some(addr("2001:db8:1::9")));
        assert!(q.is_multicast());
    }

    #[test]
    fn routing_ext_roundtrip() {
        let p = Packet::new(
            addr("2001:db8:1::1"),
            addr("2001:db8:6::abcd"),
            proto::NONE,
            Bytes::new(),
        )
        .with_ext(ExtHeader::Routing(RoutingHeader {
            segments_left: 1,
            addresses: vec![addr("2001:db8:1::42")],
        }));
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn version_check() {
        let p = Packet::new(addr("::1"), addr("::2"), proto::NONE, Bytes::new());
        let mut wire = p.encode().to_vec();
        wire[0] = 0x40; // version 4
        assert_eq!(Packet::decode(&wire), Err(DecodeError::BadVersion(4)));
    }

    #[test]
    fn truncation_checks() {
        let p = Packet::new(
            addr("::1"),
            addr("::2"),
            proto::UDP,
            Bytes::from_static(&[0; 32]),
        );
        let wire = p.encode();
        assert!(Packet::decode(&wire[..20]).is_err());
        assert!(Packet::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn extra_trailing_bytes_are_ignored() {
        // L2 padding after the declared payload length must not confuse us.
        let p = Packet::new(
            addr("::1"),
            addr("::2"),
            proto::UDP,
            Bytes::from_static(b"x"),
        );
        let mut wire = p.encode().to_vec();
        wire.extend_from_slice(&[0xee; 7]);
        let q = Packet::decode(&wire).unwrap();
        assert_eq!(q.payload, Bytes::from_static(b"x"));
    }

    #[test]
    fn checksum_matches_known_vector() {
        // Independent reference: sum computed by hand for a tiny message.
        let src = addr("::1");
        let dst = addr("::2");
        let sum = pseudo_header_checksum(src, dst, proto::ICMPV6, &[0x80, 0x00, 0x00, 0x00]);
        // Verify the fundamental property instead of a magic constant:
        // embedding the checksum makes the total sum 0xffff.
        let mut body = vec![0x80, 0x00, 0x00, 0x00];
        body[2..4].copy_from_slice(&sum.to_be_bytes());
        let verify = pseudo_header_checksum(src, dst, proto::ICMPV6, &body);
        assert_eq!(verify, 0);
    }

    #[test]
    fn checksum_odd_length_body() {
        let src = addr("2001:db8::1");
        let dst = addr("2001:db8::2");
        let sum = pseudo_header_checksum(src, dst, proto::UDP, &[1, 2, 3]);
        assert_ne!(sum, 0);
        // Padding with an explicit zero byte must give the same sum.
        let sum2 = pseudo_header_checksum(src, dst, proto::UDP, &[1, 2, 3, 0]);
        // Length differs, so sums differ in general; just exercise the path.
        let _ = sum2;
    }

    #[test]
    fn wire_len_includes_everything() {
        let p = Packet::new(
            addr("::1"),
            addr("::2"),
            proto::UDP,
            Bytes::from_static(&[0; 100]),
        )
        .with_ext(ExtHeader::HopByHop(vec![Option6::RouterAlert(0)]));
        assert_eq!(p.wire_len(), 40 + 8 + 100);
        assert_eq!(p.encode().len(), p.wire_len());
    }

    #[test]
    fn unknown_option_problem_points_at_offending_type() {
        // A skip-class unknown option followed by a discard-class one: the
        // scan must skip the first and point at the second, after the
        // 40-byte fixed header + 2-byte options-header prelude + 5 bytes of
        // the first (skippable) option.
        let p = Packet::new(
            addr("2001:db8::1"),
            addr("2001:db8::2"),
            proto::NONE,
            Bytes::new(),
        )
        .with_ext(ExtHeader::DestinationOptions(vec![
            Option6::Unknown {
                kind: 0x3e,
                data: vec![0; 3],
            },
            Option6::Unknown {
                kind: 0xbe,
                data: vec![7],
            },
        ]));
        let (action, pointer) = p.unknown_option_problem().unwrap();
        assert_eq!(action, crate::exthdr::UnknownOptionAction::DiscardSendIcmp);
        assert_eq!(pointer, 40 + 2 + 5);
        // Decoding its own wire bytes gives the same verdict.
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(q.unknown_option_problem(), Some((action, pointer)));
    }

    #[test]
    fn known_and_skippable_options_raise_no_problem() {
        let clean = Packet::new(addr("::1"), addr("::2"), proto::NONE, Bytes::new())
            .with_ext(ExtHeader::HopByHop(vec![Option6::RouterAlert(0)]))
            .with_ext(ExtHeader::DestinationOptions(vec![Option6::Unknown {
                kind: 0x12, // high bits 00: skip
                data: vec![1, 2],
            }]));
        assert_eq!(clean.unknown_option_problem(), None);
    }

    #[test]
    fn traffic_class_and_flow_label_roundtrip() {
        let mut p = Packet::new(addr("::1"), addr("::2"), proto::NONE, Bytes::new());
        p.traffic_class = 0xb8;
        p.flow_label = 0xabcde;
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(q.traffic_class, 0xb8);
        assert_eq!(q.flow_label, 0xabcde);
    }
}
