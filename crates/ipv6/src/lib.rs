//! # mobicast-ipv6
//!
//! The IPv6 data plane for the `mobicast` simulator: addresses and prefixes,
//! the fixed header with chained extension headers (including the Mobile
//! IPv6 destination options and the paper's proposed Multicast Group List
//! Sub-Option), ICMPv6 framing with MLD and Neighbor Discovery messages,
//! UDP, and RFC 2473 IPv6-in-IPv6 tunneling.
//!
//! Everything encodes to and decodes from real wire bytes with real
//! checksums, so link-level byte counters in the simulator measure the same
//! overheads the paper discusses (40-byte tunnel encapsulation, MLD
//! query/report sizes, binding-update signalling cost, …).

pub mod addr;
pub mod error;
pub mod exthdr;
pub mod icmpv6;
pub mod packet;
pub mod tunnel;
pub mod udp;

pub use addr::{GroupAddr, Prefix};
pub use error::DecodeError;
pub use exthdr::{
    BindingAck, BindingUpdate, ExtHeader, Option6, RoutingHeader, SubOption, UnknownOptionAction,
};
pub use icmpv6::{
    AdvertisedPrefix, Icmpv6, PARAM_PROBLEM_ERRONEOUS_FIELD,
    PARAM_PROBLEM_UNRECOGNIZED_NEXT_HEADER, PARAM_PROBLEM_UNRECOGNIZED_OPTION,
};
pub use packet::{proto, Packet, DEFAULT_HOP_LIMIT, FIXED_HEADER_LEN};
pub use tunnel::{
    decapsulate, encapsulate, encapsulate_limited, is_tunnel, tunnel_encap_limit,
    EncapLimitExceeded, DEFAULT_ENCAP_LIMIT, TUNNEL_OVERHEAD,
};
pub use udp::UdpDatagram;

pub use std::net::Ipv6Addr;
