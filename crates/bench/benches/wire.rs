//! Criterion benchmarks for the wire codecs: IPv6 packets with extension
//! headers, ICMPv6/MLD with checksums, PIM messages, tunneling, and the
//! Figure-5 Multicast Group List Sub-Option.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mobicast_ipv6::addr::GroupAddr;
use mobicast_ipv6::exthdr::{BindingUpdate, SubOption, BU_FLAG_ACK, BU_FLAG_HOME};
use mobicast_ipv6::packet::{proto, Packet};
use mobicast_ipv6::udp::UdpDatagram;
use mobicast_ipv6::{encapsulate, Icmpv6};
use mobicast_pimdm::PimMessage;
use std::hint::black_box;
use std::net::Ipv6Addr;

fn a(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

fn data_packet(payload: usize) -> Packet {
    let g = GroupAddr::test_group(1);
    let udp = UdpDatagram::new(5001, 5001, Bytes::from(vec![0u8; payload]));
    let body = udp.encode(a("2001:db8:1::500"), g.addr());
    Packet::new(a("2001:db8:1::500"), g.addr(), proto::UDP, body)
}

fn bench_packet_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipv6_codec");
    for payload in [64usize, 512, 1400] {
        let p = data_packet(payload);
        let wire = p.encode();
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_function(format!("encode_{payload}B"), |b| {
            b.iter(|| black_box(p.encode()));
        });
        group.bench_function(format!("decode_{payload}B"), |b| {
            b.iter(|| black_box(Packet::decode(&wire).unwrap()));
        });
    }
    group.finish();
}

fn bench_tunnel(c: &mut Criterion) {
    let inner = data_packet(512);
    c.bench_function("tunnel/encapsulate_512B", |b| {
        b.iter(|| black_box(encapsulate(a("2001:db8:6::1"), a("2001:db8:4::1"), &inner)));
    });
    let outer = encapsulate(a("2001:db8:6::1"), a("2001:db8:4::1"), &inner);
    c.bench_function("tunnel/decapsulate_512B", |b| {
        b.iter(|| black_box(mobicast_ipv6::decapsulate(&outer).unwrap()));
    });
}

fn bench_mld_message(c: &mut Criterion) {
    let g = GroupAddr::test_group(1);
    c.bench_function("mld/report_encode_decode", |b| {
        b.iter(|| {
            let m = Icmpv6::MldReport { group: g.addr() };
            let wire = m.encode(a("fe80::1"), g.addr());
            black_box(Icmpv6::decode(a("fe80::1"), g.addr(), &wire).unwrap())
        });
    });
}

fn bench_pim_message(c: &mut Criterion) {
    c.bench_function("pim/join_prune_encode_decode", |b| {
        let m = PimMessage::JoinPrune {
            upstream: a("fe80::1"),
            joins: vec![(a("2001:db8:1::5"), GroupAddr::test_group(1))],
            prunes: vec![(a("2001:db8:1::6"), GroupAddr::test_group(2))],
        };
        b.iter(|| {
            let wire = m.encode(a("fe80::2"), mobicast_ipv6::addr::ALL_PIM_ROUTERS);
            black_box(
                PimMessage::decode(a("fe80::2"), mobicast_ipv6::addr::ALL_PIM_ROUTERS, &wire)
                    .unwrap(),
            )
        });
    });
}

fn bench_fig5_suboption(c: &mut Criterion) {
    // Figure 5 throughput: Binding Updates carrying growing group lists.
    let mut group = c.benchmark_group("fig5_group_list");
    for n in [1u16, 4, 15] {
        let groups: Vec<GroupAddr> = (0..n).map(GroupAddr::test_group).collect();
        let bu = BindingUpdate {
            flags: BU_FLAG_ACK | BU_FLAG_HOME,
            sequence: 1,
            lifetime_secs: 256,
            sub_options: vec![SubOption::MulticastGroupList(groups)],
        };
        let p = mobicast_mipv6::packets::binding_update_packet(
            a("2001:db8:6::9"),
            a("2001:db8:4::1"),
            a("2001:db8:4::9"),
            bu,
        );
        group.bench_function(format!("bu_roundtrip_{n}_groups"), |b| {
            b.iter(|| {
                let wire = p.encode();
                let q = Packet::decode(&wire).unwrap();
                black_box(mobicast_mipv6::packets::parse_binding_update(&q).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_packet_codec,
    bench_tunnel,
    bench_mld_message,
    bench_pim_message,
    bench_fig5_suboption
);
criterion_main!(benches);
