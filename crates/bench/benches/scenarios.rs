//! Criterion benchmarks at scenario granularity: one bench per paper
//! table/figure, timing the simulation that regenerates it. These are the
//! "can the harness reproduce the paper quickly" benchmarks — the actual
//! numbers are produced by the `exp_*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use mobicast_core::scenario::{self, Move, PaperHost, ScenarioConfig};
use mobicast_core::strategy::Policy;
use mobicast_mld::MldConfig;
use mobicast_sim::SimDuration;
use std::hint::black_box;

fn short(policy: Policy, moves: Vec<Move>) -> ScenarioConfig {
    ScenarioConfig::builder()
        .duration(SimDuration::from_secs(120))
        .policy(policy)
        .moves(moves)
        .build()
}

fn bench_fig1_static_tree(c: &mut Criterion) {
    c.bench_function("scenario/fig1_static_tree", |b| {
        b.iter(|| black_box(scenario::run(&short(Policy::LOCAL, vec![]))));
    });
}

fn bench_fig2_receiver_move(c: &mut Criterion) {
    c.bench_function("scenario/fig2_receiver_move_local", |b| {
        b.iter(|| {
            black_box(scenario::run(&short(
                Policy::LOCAL,
                vec![Move {
                    at_secs: 30.0,
                    host: PaperHost::R3,
                    to_link: 6,
                }],
            )))
        });
    });
}

fn bench_fig3_receiver_tunnel(c: &mut Criterion) {
    c.bench_function("scenario/fig3_receiver_move_tunnel", |b| {
        b.iter(|| {
            black_box(scenario::run(&short(
                Policy::BIDIRECTIONAL_TUNNEL,
                vec![Move {
                    at_secs: 30.0,
                    host: PaperHost::R3,
                    to_link: 1,
                }],
            )))
        });
    });
}

fn bench_fig4_sender_move(c: &mut Criterion) {
    c.bench_function("scenario/fig4_sender_move_tunnel", |b| {
        b.iter(|| {
            black_box(scenario::run(&short(
                Policy::TUNNEL_MH_TO_HA,
                vec![Move {
                    at_secs: 30.0,
                    host: PaperHost::S,
                    to_link: 6,
                }],
            )))
        });
    });
}

fn bench_table1_mixed(c: &mut Criterion) {
    c.bench_function("scenario/table1_mixed_mobility", |b| {
        let moves = vec![
            Move {
                at_secs: 20.0,
                host: PaperHost::R3,
                to_link: 6,
            },
            Move {
                at_secs: 50.0,
                host: PaperHost::S,
                to_link: 6,
            },
            Move {
                at_secs: 80.0,
                host: PaperHost::R3,
                to_link: 1,
            },
        ];
        b.iter(|| {
            black_box(scenario::run(&short(
                Policy::BIDIRECTIONAL_TUNNEL,
                moves.clone(),
            )))
        });
    });
}

fn bench_timer_sweep_point(c: &mut Criterion) {
    c.bench_function("scenario/timer_sweep_point_tq20", |b| {
        let cfg = ScenarioConfig::builder()
            .duration(SimDuration::from_secs(300))
            .mld(MldConfig::with_query_interval(SimDuration::from_secs(20)))
            .unsolicited_reports(false)
            .move_at(60.0, PaperHost::R3, 6)
            .build();
        b.iter(|| black_box(scenario::run(&cfg)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_static_tree, bench_fig2_receiver_move,
        bench_fig3_receiver_tunnel, bench_fig4_sender_move,
        bench_table1_mixed, bench_timer_sweep_point
}
criterion_main!(benches);
