//! Criterion benchmarks for the simulation kernel: event queue throughput
//! and deterministic RNG streams. These guard the substrate every
//! experiment is built on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mobicast_sim::{EventQueue, RngFactory, SimTime};
use rand::RngCore;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter_batched(
                EventQueue::<u64>::new,
                |mut q| {
                    // Interleaved schedule/pop pattern approximating a
                    // protocol simulation (each event schedules a follower).
                    for i in 0..n {
                        q.schedule(SimTime::from_nanos(i * 7919 % 1_000_000), i);
                    }
                    let mut sum = 0u64;
                    while let Some((_, v)) = q.pop() {
                        sum = sum.wrapping_add(v);
                    }
                    black_box(sum)
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("event_queue/cancel_half", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::<u64>::new();
                let ids: Vec<_> = (0..10_000u64)
                    .map(|i| q.schedule(SimTime::from_nanos(i), i))
                    .collect();
                (q, ids)
            },
            |(mut q, ids)| {
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                let mut n = 0u64;
                while q.pop().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_rng_streams(c: &mut Criterion) {
    c.bench_function("rng/labelled_stream_draws", |b| {
        let f = RngFactory::new(42);
        b.iter(|| {
            let mut rng = f.indexed_stream("bench", 7);
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cancellation,
    bench_rng_streams
);
criterion_main!(benches);
