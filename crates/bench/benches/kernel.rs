//! Criterion benchmarks for the simulation kernel: event queue throughput
//! (timer wheel vs the reference binary heap) and deterministic RNG
//! streams. These guard the substrate every experiment is built on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mobicast_sim::{EventQueue, HeapEventQueue, RngFactory, SimTime};
use rand::RngCore;
use std::hint::black_box;

/// Schedule `n` events then drain: the bulk pattern of a scenario startup.
macro_rules! schedule_pop_bench {
    ($group:expr, $label:literal, $queue:ty, $n:expr) => {
        $group.bench_function(format!("{}_{}", $label, $n), |b| {
            b.iter_batched(
                <$queue>::new,
                |mut q| {
                    // Interleaved schedule/pop pattern approximating a
                    // protocol simulation (each event schedules a follower).
                    for i in 0..$n {
                        q.schedule(SimTime::from_nanos(i * 7919 % 1_000_000), i);
                    }
                    let mut sum = 0u64;
                    while let Some((_, v)) = q.pop() {
                        sum = sum.wrapping_add(v);
                    }
                    black_box(sum)
                },
                BatchSize::SmallInput,
            );
        });
    };
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n));
        schedule_pop_bench!(group, "schedule_pop", EventQueue<u64>, n);
        schedule_pop_bench!(group, "schedule_pop_heap", HeapEventQueue<u64>, n);
    }
    group.finish();
}

/// The protocol-timer pattern the wheel is built for: a standing
/// population of long-dated timers (Queries, Holdtimes, soft-state
/// expiries) while short-dated frame deliveries churn at the front.
macro_rules! timer_churn_bench {
    ($c:expr, $label:literal, $queue:ty) => {
        $c.bench_function(concat!("event_queue/", $label), |b| {
            b.iter_batched(
                || {
                    let mut q = <$queue>::new();
                    // 10k standing timers spread over the next ~200 s.
                    for i in 0..10_000u64 {
                        q.schedule(SimTime::from_nanos(1_000_000 + i * 20_000_000), i);
                    }
                    q
                },
                |mut q| {
                    // Frame churn: each pop schedules a near-future event,
                    // cancelling every other one (ack timers).
                    let mut cancel = None;
                    for _ in 0..10_000u64 {
                        let (t, v) = q.pop().unwrap();
                        let id = q.schedule(t + mobicast_sim::SimDuration::from_micros(50), v);
                        if let Some(prev) = cancel.take() {
                            q.cancel(prev);
                        } else {
                            cancel = Some(id);
                        }
                    }
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            );
        });
    };
}

fn bench_timer_churn(c: &mut Criterion) {
    timer_churn_bench!(c, "timer_churn_wheel", EventQueue<u64>);
    timer_churn_bench!(c, "timer_churn_heap", HeapEventQueue<u64>);
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("event_queue/cancel_half", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::<u64>::new();
                let ids: Vec<_> = (0..10_000u64)
                    .map(|i| q.schedule(SimTime::from_nanos(i), i))
                    .collect();
                (q, ids)
            },
            |(mut q, ids)| {
                for id in ids.iter().step_by(2) {
                    q.cancel(*id);
                }
                let mut n = 0u64;
                while q.pop().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_rng_streams(c: &mut Criterion) {
    c.bench_function("rng/labelled_stream_draws", |b| {
        let f = RngFactory::new(42);
        b.iter(|| {
            let mut rng = f.indexed_stream("bench", 7);
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_timer_churn,
    bench_cancellation,
    bench_rng_streams
);
criterion_main!(benches);
