//! # mobicast-bench
//!
//! Experiment binaries (one per table/figure of the paper — see DESIGN.md)
//! and Criterion benchmarks for the simulator's hot paths.
//!
//! Run an experiment with e.g. `cargo run --release -p mobicast-bench
//! --bin exp_fig2`; each binary prints the paper-style table and writes
//! `results/<id>.json`. `exp_all` runs every experiment. Pass `--quick`
//! for a reduced sweep.

use mobicast_core::experiments::ExperimentOutput;

/// Shared binary entry: print and persist an experiment output.
pub fn emit(out: &ExperimentOutput) {
    println!("{out}");
    mobicast_core::report::write_json(out.id, &out.json);
}

/// Parse the `--quick` flag used by the sweep experiments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Parse `--approach <id>`: pin policy-sweeping runs to one registered
/// delivery policy. Exits with the list of registered ids on an unknown
/// id, so the flag doubles as discovery (`--approach help`).
pub fn approach_flag() -> Option<mobicast_core::Policy> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--approach" {
            let id = args.next().expect("--approach needs a policy id");
            match id.parse::<mobicast_core::Policy>() {
                Ok(p) => return Some(p),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parse `--routers N`: run a single metro-grid stress scenario of (at
/// least) `N` routers instead of the canonical sweep. `None` when absent.
pub fn routers_flag() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--routers" {
            let v = args.next().expect("--routers needs a count");
            let n: usize = v.parse().expect("--routers needs an integer count");
            assert!(n >= 4, "--routers needs a count >= 4");
            return Some(n);
        }
    }
    None
}

/// Parse `--receivers N`: the roaming-receiver population for the metro
/// stress run. `None` leaves the default.
pub fn receivers_flag() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--receivers" {
            let v = args.next().expect("--receivers needs a count");
            return Some(v.parse().expect("--receivers needs an integer count"));
        }
    }
    None
}

/// Parse `--workers N` / `--serial` (= `--workers 1`): the sweep worker
/// pool override. `None` leaves the pool at its configured default.
pub fn workers_flag() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--serial" {
            return Some(1);
        }
        if a == "--workers" {
            let v = args.next().expect("--workers needs a count");
            let n: usize = v.parse().expect("--workers needs an integer count");
            assert!(n >= 1, "--workers needs a count >= 1");
            return Some(n);
        }
    }
    None
}
