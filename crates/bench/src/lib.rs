//! # mobicast-bench
//!
//! Experiment binaries (one per table/figure of the paper — see DESIGN.md)
//! and Criterion benchmarks for the simulator's hot paths.
//!
//! Run an experiment with e.g. `cargo run --release -p mobicast-bench
//! --bin exp_fig2`; each binary prints the paper-style table and writes
//! `results/<id>.json`. `exp_all` runs every experiment. Pass `--quick`
//! for a reduced sweep.

use mobicast_core::experiments::ExperimentOutput;

/// Shared binary entry: print and persist an experiment output.
pub fn emit(out: &ExperimentOutput) {
    println!("{out}");
    mobicast_core::report::write_json(out.id, &out.json);
}

/// Parse the `--quick` flag used by the sweep experiments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}
