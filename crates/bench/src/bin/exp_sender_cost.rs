//! Regenerates the paper's sender_cost (see DESIGN.md experiment index).
//! Pass --quick for a reduced sweep.
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::sender_cost::run(
        mobicast_bench::quick_flag(),
    ));
}
