//! Packet-journey explainer CLI: re-runs the deterministic handoff
//! scenario (Receiver 3 roams to Link 6 under the bidirectional-tunnel
//! approach), then prints the full causal path of one packet — every
//! emission from the origin to each delivery, wasted flood copies, and
//! the protocol/fault trace events inside the packet's live window.
//!
//! Usage:
//! ```text
//! explain                 # explain the first delivered packet
//! explain 0x400000007     # explain packet by id (hex or decimal)
//! explain --list          # list recorded packet ids and exit
//! explain --approach <id> # rerun under another registered policy
//! ```
//!
//! Packet ids are `origin_host << 32 | sequence`, as recorded in
//! `RunReport` provenance and printed by `--list`.

use std::process::ExitCode;

use mobicast_core::scenario::{run_with_recorder, PaperHost, ScenarioConfig};
use mobicast_core::{explain, Policy};
use mobicast_sim::{RingBufferTracer, SimDuration, Tracer};

fn scenario(policy: Policy, tracer: Tracer) -> ScenarioConfig {
    // Light loss plus wire corruption, so journeys can show fault drops as
    // well as `✗ corrupted on link N` marks for frames mangled in flight.
    let mut fault = mobicast_net::FaultPlan::iid_loss(0.02);
    fault.link.corruption = mobicast_net::CorruptionModel::uniform(0.01);
    ScenarioConfig::builder()
        .duration(SimDuration::from_secs(120))
        .policy(policy)
        .move_at(40.0, PaperHost::R3, 6)
        .fault(fault)
        .tracer(tracer)
        .name(format!("handoff-{}", policy.id()))
        .build()
}

fn parse_pkt(arg: &str) -> Option<u64> {
    if let Some(hex) = arg.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        arg.parse().ok()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = args.iter().any(|a| a == "--list");
    let policy = mobicast_bench::approach_flag().unwrap_or(Policy::BIDIRECTIONAL_TUNNEL);
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--approach" {
            it.next();
        } else if !a.starts_with("--") {
            positional.push(a.clone());
        }
    }
    let pkt_arg = positional.first().cloned();
    if pkt_arg.is_none() && !list && !positional.is_empty() {
        eprintln!("usage: explain [pkt_id] [--list] [--approach <id>]");
        return ExitCode::FAILURE;
    }

    let (tracer, ring) = RingBufferTracer::new(1_000_000);
    let cfg = scenario(policy, tracer);
    let (_, rec) = run_with_recorder(&cfg);
    let trace = ring.drain();

    if list {
        for m in &rec.packets {
            println!(
                "{:#x}  sent {:.3}s  link {}  group {}",
                m.pkt,
                m.sent_at.as_secs_f64(),
                m.origin_link.index(),
                m.group
            );
        }
        return ExitCode::SUCCESS;
    }

    let pkt = match pkt_arg {
        Some(arg) => match parse_pkt(&arg) {
            Some(pkt) => pkt,
            None => {
                eprintln!("explain: not a packet id: {arg} (try --list)");
                return ExitCode::FAILURE;
            }
        },
        // Default: the first packet that actually reached a receiver.
        None => match rec
            .deliveries
            .first()
            .map(|d| d.pkt)
            .or_else(|| rec.packets.first().map(|m| m.pkt))
        {
            Some(pkt) => pkt,
            None => {
                eprintln!("explain: run recorded no packets");
                return ExitCode::FAILURE;
            }
        },
    };

    let journey = explain::explain(&rec, pkt);
    print!(
        "{}",
        explain::render_with_spans(&journey, Some(&trace), Some(&rec.spans))
    );
    if journey.meta.is_none() && journey.copies.is_empty() {
        eprintln!("explain: packet {pkt:#x} not found in this run (try --list)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
