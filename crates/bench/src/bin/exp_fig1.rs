//! Regenerates the paper's fig1 (see DESIGN.md experiment index).
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::fig1::run());
}
