//! Per-run observability dashboard and regression gate.
//!
//! Default mode runs the two-handoff roaming scenario under every
//! registered delivery policy plus one storm-under-budget overload run,
//! then renders the joined causal dashboard: per-policy handoff
//! interruption percentiles, the slowest episodes with their BU / rejoin
//! / graft phase breakdown, and the overload shed timeline. Artifacts go
//! to `results/`: the dashboard JSON plus a Perfetto `trace.json` and an
//! OpenMetrics snapshot per policy.
//!
//! ```text
//! report                         # dashboard + artifacts
//! report --diff OLD.json NEW.json [--threshold 0.2]
//! report --check                 # exports match the committed goldens
//! report --diff-selftest         # the gate flags an injected regression
//! ```
//!
//! `--diff` exits non-zero when any watched metric (interruption times,
//! delivery quantities) drifts beyond the threshold; identical inputs
//! always pass. `--check` re-runs the fixed golden scenario and compares
//! the exports byte-for-byte against `crates/core/tests/goldens/`.

use mobicast_core::observability::{self, PolicyHandoffStats, DEFAULT_DRIFT_THRESHOLD};
use mobicast_core::report::Table;
use mobicast_core::router_node::ResourceBudget;
use mobicast_core::scenario::{self, PaperHost, ScenarioConfig};
use mobicast_core::{Policy, RunReport};
use mobicast_net::{FaultPlan, StormModel};
use mobicast_sim::{RateLimit, ShedPolicy, SimDuration};
use serde::Serialize;
use serde_json::{json, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Slowest handoff episodes shown per policy.
const TOP_N: usize = 3;

/// The roaming scenario behind the dashboard: R1 leaves home into the
/// MAP domain, then moves within it (same shape as `exp_handoff_latency`
/// so the dashboard explains the experiment's numbers).
fn handoff_cfg(policy: Policy) -> ScenarioConfig {
    ScenarioConfig::builder()
        .duration(SimDuration::from_secs(240))
        .policy(policy)
        .data_interval(SimDuration::from_millis(250))
        .move_at(60.0, PaperHost::R1, 6)
        .move_at(150.23, PaperHost::R1, 4)
        .name(format!("report-handoff-{}", policy.id()))
        .build()
}

/// A storm under a tight budget, so the shed/overload timeline has
/// something to show.
fn overload_cfg() -> ScenarioConfig {
    ScenarioConfig::builder()
        .duration(SimDuration::from_secs(120))
        .policy(Policy::BIDIRECTIONAL_TUNNEL)
        .fault(FaultPlan {
            storm: StormModel {
                zap_rate: 8.0,
                zap_groups: 16,
                bu_rate: 5.0,
                flap_rate: 1.0,
                flap_hosts: 2,
                start_secs: 5.0,
                end_secs: 60.0,
            },
            ..FaultPlan::default()
        })
        .budget(ResourceBudget {
            mld_listeners: Some(8),
            pim_sg_entries: Some(8),
            binding_cache: Some(4),
            shed_policy: ShedPolicy::RejectNew,
            control_rate: Some(RateLimit {
                rate_per_sec: 5.0,
                burst: 10,
            }),
            event_queue_depth: Some(1 << 18),
        })
        .name("report-overload")
        .build()
}

fn write_artifact(path: &Path, content: &str) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, content) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn opt_ms(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_owned(), |s| format!("{:.3} ms", s * 1e3))
}

fn dashboard() -> (String, Value) {
    let mut sections: Vec<(PolicyHandoffStats, RunReport)> = Vec::new();
    for policy in Policy::all() {
        let cfg = handoff_cfg(policy);
        let r = scenario::run(&cfg);
        let stats =
            observability::policy_handoff_stats(policy.id(), &r.report.observability, TOP_N);
        write_artifact(
            &PathBuf::from(format!("results/report-{}.trace.json", policy.id())),
            &observability::run_perfetto(&cfg.name, &r.report),
        );
        write_artifact(
            &PathBuf::from(format!("results/report-{}.om.txt", policy.id())),
            &observability::run_openmetrics(&r.report),
        );
        sections.push((stats, r.report));
    }

    let mut text = String::new();
    let mut table = Table::new(&[
        "policy",
        "handoffs",
        "recovered",
        "interruption p50",
        "p95",
        "p99",
        "max",
    ]);
    for (s, _) in &sections {
        table.row(vec![
            s.policy.clone(),
            s.handoffs.to_string(),
            s.recovered.to_string(),
            format!("{:.3} ms", s.interruption_p50_s * 1e3),
            format!("{:.3} ms", s.interruption_p95_s * 1e3),
            format!("{:.3} ms", s.interruption_p99_s * 1e3),
            format!("{:.3} ms", s.interruption_max_s * 1e3),
        ]);
    }
    text.push_str("per-policy handoff interruption\n");
    text.push_str(&table.render());

    let mut slow = Table::new(&[
        "policy",
        "span",
        "start",
        "interruption",
        "bu",
        "tunnel",
        "rejoin",
        "grafts",
    ]);
    for (s, _) in &sections {
        for row in &s.slowest {
            slow.row(vec![
                s.policy.clone(),
                format!("#{}", row.span),
                format!("{:.2}s", row.start_s),
                opt_ms(row.interruption_s),
                opt_ms(row.phases.bu_s),
                opt_ms(row.phases.tunnel_s),
                opt_ms(row.phases.rejoin_s),
                format!("{} ({})", row.phases.grafts, opt_ms(row.phases.graft_s)),
            ]);
        }
    }
    text.push_str("\nslowest handoffs, causal phase breakdown\n");
    text.push_str(&slow.render());

    // The overload leg: shed/rate-limit totals and the sampled timeline.
    let ov = scenario::run(&overload_cfg());
    let obs = &ov.report.observability;
    let shed_series: Vec<(u64, f64)> = obs
        .timeline
        .get("overload.shed_total")
        .map(|s| s.points.clone())
        .unwrap_or_default();
    let shed_final = shed_series.last().map(|(_, v)| *v).unwrap_or(0.0);
    let rate_limited = ov.report.counters.sum_prefix("overload.rate_limited");
    text.push_str(&format!(
        "\noverload (storm under budget): shed {} state entries, \
         rate-limited {} control messages\n",
        shed_final as u64, rate_limited
    ));
    let mut spark = String::new();
    for (t, v) in shed_series.iter().filter(|(t, _)| t % 15_000_000_000 == 0) {
        spark.push_str(&format!("  {:>4}s {:>6}\n", t / 1_000_000_000, *v as u64));
    }
    if !spark.is_empty() {
        text.push_str("shed timeline (15s ticks)\n");
        text.push_str(&spark);
    }

    let oracle_clean = sections.iter().all(|(_, r)| r.oracle.violations.is_empty())
        && ov.report.oracle.violations.is_empty();
    text.push_str(&format!(
        "\noracle: {}\n",
        if oracle_clean { "clean" } else { "VIOLATIONS" }
    ));

    let doc = json!({
        "policies": sections
            .iter()
            .map(|(s, _)| s.to_json_value())
            .collect::<Vec<_>>(),
        "overload": {
            "shed_total": shed_final,
            "rate_limited": rate_limited,
            "shed_timeline": shed_series,
        },
        "oracle_clean": oracle_clean,
    });
    (text, doc)
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../core/tests/goldens")
}

/// `--check`: the golden scenario's exports must match the committed
/// goldens byte for byte (the same contract the core test enforces, but
/// runnable anywhere the CLI is).
fn check() -> ExitCode {
    let cfg = observability::golden_scenario();
    let r = scenario::run(&cfg);
    let mut ok = true;
    for (name, got) in [
        (
            "golden-observability.trace.json",
            observability::run_perfetto(&cfg.name, &r.report),
        ),
        (
            "golden-observability.om.txt",
            observability::run_openmetrics(&r.report),
        ),
    ] {
        let path = goldens_dir().join(name);
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => println!("ok: {name}"),
            Ok(_) => {
                eprintln!(
                    "MISMATCH: {name} (regenerate with MOBICAST_UPDATE_GOLDENS=1 \
                     cargo test -p mobicast-core --test golden_observability)"
                );
                ok = false;
            }
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn diff(old_path: &str, new_path: &str, threshold: f64) -> ExitCode {
    let load = |p: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{p}: not valid JSON: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (o, n) => {
            for r in [o, n] {
                if let Err(e) = r {
                    eprintln!("report --diff: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    let flags = observability::diff_report_values(&old, &new, threshold);
    if flags.is_empty() {
        println!(
            "no watched metric drifted beyond {:.0}% ({old_path} vs {new_path})",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "regression gate: {} watched metric(s) drifted beyond {:.0}%:",
            flags.len(),
            threshold * 100.0
        );
        for f in &flags {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}

/// `--diff-selftest`: prove the gate flags an injected 25 % interruption
/// regression and passes identical inputs — the CI sanity check for the
/// gate itself.
fn diff_selftest() -> ExitCode {
    let base = json!({
        "policies": [{
            "policy": "bidir-tunnel",
            "interruption_p95_s": 1.0,
            "interruption_p99_s": 1.4,
        }],
        "overload": { "shed_total": 12.0 },
    });
    if !observability::diff_report_values(&base, &base, DEFAULT_DRIFT_THRESHOLD).is_empty() {
        eprintln!("selftest: identical inputs flagged");
        return ExitCode::FAILURE;
    }
    let mut worse = base.clone();
    worse["policies"][0]["interruption_p95_s"] = json!(1.25);
    let flags = observability::diff_report_values(&base, &worse, DEFAULT_DRIFT_THRESHOLD);
    if flags.len() != 1 || !flags[0].contains("interruption_p95_s") {
        eprintln!("selftest: injected 25% regression not flagged: {flags:?}");
        return ExitCode::FAILURE;
    }
    println!("diff gate selftest: ok");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        return check();
    }
    if args.iter().any(|a| a == "--diff-selftest") {
        return diff_selftest();
    }
    if let Some(pos) = args.iter().position(|a| a == "--diff") {
        let (Some(old), Some(new)) = (args.get(pos + 1), args.get(pos + 2)) else {
            eprintln!("usage: report --diff OLD.json NEW.json [--threshold X]");
            return ExitCode::FAILURE;
        };
        let threshold = match args.iter().position(|a| a == "--threshold") {
            Some(tpos) => match args.get(tpos + 1).and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => t,
                _ => {
                    eprintln!("report: --threshold needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            None => DEFAULT_DRIFT_THRESHOLD,
        };
        return diff(old, new, threshold);
    }
    if !args.is_empty() {
        eprintln!("usage: report [--diff OLD NEW [--threshold X] | --check | --diff-selftest]");
        return ExitCode::FAILURE;
    }

    let (text, doc) = dashboard();
    print!("{text}");
    mobicast_core::report::write_json("report-handoff", &doc);
    ExitCode::SUCCESS
}
