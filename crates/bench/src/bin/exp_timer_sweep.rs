//! Regenerates the paper's timer_sweep (see DESIGN.md experiment index).
//! Pass --quick for a reduced sweep.
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::timer_sweep::run(
        mobicast_bench::quick_flag(),
    ));
}
