//! Runs every experiment of the reproduction in sequence (Figures 1-5,
//! Table 1, the §4.4 timer sweep and the §4.3.1 sender-cost sweep),
//! timing each one and archiving the full run — tables plus a
//! per-experiment wall-clock summary — to `results/exp_all_output.txt`.
//! Pass --quick for reduced sweeps, `--workers N` to pin the sweep worker
//! pool (`--serial` = `--workers 1`): any worker count produces
//! byte-identical experiment JSON — the determinism-parity property.

use std::fmt::Write as _;
use std::time::Instant;

use mobicast_core::experiments::{self, ExperimentOutput};

fn main() {
    let quick = mobicast_bench::quick_flag();
    if let Some(workers) = mobicast_bench::workers_flag() {
        mobicast_core::sweep::set_worker_override(Some(workers));
        eprintln!("(sweep worker pool pinned to {workers})");
    }
    if let Some(policy) = mobicast_bench::approach_flag() {
        mobicast_core::strategy::set_approach_override(Some(policy));
        eprintln!("(policy sweeps pinned to approach {})", policy.id());
    }
    type Exp = (&'static str, fn(bool) -> ExperimentOutput);
    let experiments: [Exp; 15] = [
        ("fig1", |_| experiments::fig1::run()),
        ("fig2", experiments::fig2::run),
        ("fig3", |_| experiments::fig3::run()),
        ("fig4", |_| experiments::fig4::run()),
        ("fig5", |_| experiments::fig5::run()),
        ("table1", experiments::table1::run),
        ("timer_sweep", experiments::timer_sweep::run),
        ("sender_cost", experiments::sender_cost::run),
        ("mobility_rate", experiments::mobility_rate::run),
        ("handoff_latency", |_| experiments::handoff_latency::run()),
        ("fault_sweep", experiments::fault_sweep::run),
        ("adversarial", experiments::adversarial::run),
        ("overload", experiments::overload::run),
        ("chaos", experiments::chaos::run),
        ("stress", experiments::stress::run),
    ];

    let mut archive = String::new();
    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let all_start = Instant::now();
    for (id, run) in experiments {
        let start = Instant::now();
        let out = run(quick);
        let secs = start.elapsed().as_secs_f64();
        debug_assert_eq!(out.id, id);
        timings.push((id, secs));
        mobicast_bench::emit(&out);
        println!();
        let _ = writeln!(archive, "{out}");
    }
    let total = all_start.elapsed().as_secs_f64();

    let mut summary = String::from("== timing — wall-clock per experiment ==\n");
    for (id, secs) in &timings {
        let _ = writeln!(summary, "{id:<14} {secs:>8.3}s");
    }
    let _ = writeln!(summary, "{:<14} {total:>8.3}s", "total");
    print!("{summary}");
    let _ = writeln!(archive, "{summary}");

    std::fs::create_dir_all("results").ok();
    match std::fs::write("results/exp_all_output.txt", &archive) {
        Ok(()) => eprintln!("(wrote results/exp_all_output.txt)"),
        Err(e) => eprintln!("warning: could not write results/exp_all_output.txt: {e}"),
    }
}
