//! Runs every experiment of the reproduction in sequence (Figures 1-5,
//! Table 1, the §4.4 timer sweep and the §4.3.1 sender-cost sweep).
//! Pass --quick for reduced sweeps.
fn main() {
    let quick = mobicast_bench::quick_flag();
    for out in mobicast_core::experiments::run_all(quick) {
        mobicast_bench::emit(&out);
        println!();
    }
}
