//! Adversarial sweep: every registered delivery policy run against wire
//! corruption (0–5 %) under the invariant oracle and the reconvergence
//! SLO. Exits non-zero on any oracle violation or SLO miss, so CI can
//! gate on it. Pass --quick for a reduced rate/seed set, `--approach
//! <id>` to pin one policy.

use std::process::ExitCode;

fn main() -> ExitCode {
    if let Some(policy) = mobicast_bench::approach_flag() {
        mobicast_core::strategy::set_approach_override(Some(policy));
        eprintln!("(adversarial pinned to approach {})", policy.id());
    }
    let out = mobicast_core::experiments::adversarial::run(mobicast_bench::quick_flag());
    mobicast_bench::emit(&out);
    let violations = out.json["total_violations"].as_u64().unwrap_or(u64::MAX);
    let slo_misses = out.json["total_slo_misses"].as_u64().unwrap_or(u64::MAX);
    if violations > 0 || slo_misses > 0 {
        eprintln!(
            "adversarial: {violations} invariant violation(s), {slo_misses} \
             reconvergence SLO miss(es) — see results/adversarial.json"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
