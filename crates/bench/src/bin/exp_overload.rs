//! Overload sweep: every registered delivery policy run under signaling
//! storms with bounded state tables, rate-limited control-plane ingress
//! and the degradation/recovery oracle (bounded memory, protected-flow
//! floor, reconvergence SLO). Exits non-zero on any oracle violation,
//! SLO miss or protected-flow floor miss, so CI can gate on it. Pass
//! --quick for a reduced intensity/seed set, `--approach <id>` to pin
//! one policy.

use std::process::ExitCode;

fn main() -> ExitCode {
    if let Some(policy) = mobicast_bench::approach_flag() {
        mobicast_core::strategy::set_approach_override(Some(policy));
        eprintln!("(overload pinned to approach {})", policy.id());
    }
    let out = mobicast_core::experiments::overload::run(mobicast_bench::quick_flag());
    mobicast_bench::emit(&out);
    let violations = out.json["total_violations"].as_u64().unwrap_or(u64::MAX);
    let slo_misses = out.json["total_slo_misses"].as_u64().unwrap_or(u64::MAX);
    let floor_misses = out.json["total_floor_misses"].as_u64().unwrap_or(u64::MAX);
    if violations > 0 || slo_misses > 0 || floor_misses > 0 {
        eprintln!(
            "overload: {violations} invariant violation(s), {slo_misses} \
             reconvergence SLO miss(es), {floor_misses} protected-flow \
             floor miss(es) — see results/overload.json"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
