//! Regenerates the paper's fig5 (see DESIGN.md experiment index).
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::fig5::run());
}
