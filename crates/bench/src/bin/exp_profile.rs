//! Simulator telemetry benchmark: profiled, trace-exporting runs of the
//! reference scenarios. Emits `results/BENCH_sim.json` (events/sec, queue
//! high-water mark, per-handler-category latency histograms) and a
//! schema-validated JSONL trace per scenario
//! (`results/trace-<scenario>.jsonl`). Exits non-zero on any oracle
//! violation or invalid trace line, so CI can gate on it.

use std::process::ExitCode;

use mobicast_core::scenario::{self, ScenarioConfig};
use mobicast_core::Strategy;
use mobicast_sim::trace::validate_jsonl_line;
use serde_json::json;

/// Ring-buffer capacity for the exported trace. Large enough that the
/// reference scenarios never drop events; drops are reported either way.
const TRACE_CAPACITY: usize = 1_000_000;

fn profiled(mut cfg: ScenarioConfig, name: &'static str) -> ScenarioConfig {
    cfg.name = name;
    cfg.profile = true;
    cfg.trace_capture = Some(TRACE_CAPACITY);
    cfg.summary = true;
    cfg.oracle = true;
    cfg
}

/// Run one scenario; returns its BENCH_sim entry, or `Err` with a message
/// when the oracle or the trace validation fails.
fn run_one(cfg: &ScenarioConfig) -> Result<serde_json::Value, String> {
    let result = scenario::run(cfg);
    let name = cfg.name;

    if cfg.oracle && !result.report.oracle.violations.is_empty() {
        return Err(format!(
            "{name}: {} oracle violation(s): {:?}",
            result.report.oracle.violations.len(),
            result.report.oracle.violations
        ));
    }

    let trace = result
        .trace_jsonl
        .as_deref()
        .ok_or_else(|| format!("{name}: no trace captured"))?;
    let mut lines = 0u64;
    for (i, line) in trace.lines().enumerate() {
        validate_jsonl_line(line)
            .map_err(|e| format!("{name}: invalid trace line {}: {e}: {line}", i + 1))?;
        lines += 1;
    }
    let path = format!("results/trace-{name}.jsonl");
    std::fs::create_dir_all("results").ok();
    std::fs::write(&path, trace).map_err(|e| format!("{name}: writing {path}: {e}"))?;
    eprintln!(
        "(wrote {path}: {lines} lines, {} dropped)",
        result.trace_dropped
    );

    let profile = result
        .profile
        .ok_or_else(|| format!("{name}: profiling produced no SimProfile"))?;
    Ok(json!({
        "profile": profile,
        "events_executed": result.events_executed,
        "packets_sent": result.sent,
        "trace_lines": lines,
        "trace_dropped": result.trace_dropped,
        "trace_file": path,
    }))
}

fn main() -> ExitCode {
    // Figure-1 steady state: the flood-and-prune baseline.
    let fig1 = profiled(
        ScenarioConfig {
            duration: mobicast_sim::SimDuration::from_secs(180),
            ..ScenarioConfig::default()
        },
        "fig1",
    );

    // A fixed chaos plan: loss + flaps + crashes + roaming under the
    // bidirectional-tunnel approach, the heaviest handler mix.
    let chaos_seed = 7;
    let chaos = profiled(
        mobicast_core::chaos::plan_for_seed(chaos_seed)
            .config(Strategy::BIDIRECTIONAL_TUNNEL, chaos_seed),
        "chaos",
    );

    // A guaranteed handoff: Receiver 3 roams to the foreign Link 6 under
    // lossy links, exercising the BU/BAck and tunnel encap/decap trace
    // paths end to end.
    let handoff = profiled(
        ScenarioConfig {
            duration: mobicast_sim::SimDuration::from_secs(120),
            strategy: Strategy::BIDIRECTIONAL_TUNNEL,
            moves: vec![scenario::Move {
                at_secs: 40.0,
                host: scenario::PaperHost::R3,
                to_link: 6,
            }],
            fault: mobicast_net::FaultPlan::iid_loss(0.02),
            ..ScenarioConfig::default()
        },
        "handoff",
    );

    let mut scenarios = Vec::new();
    for cfg in [&fig1, &chaos, &handoff] {
        match run_one(cfg) {
            Ok(entry) => scenarios.push((cfg.name.to_string(), entry)),
            Err(e) => {
                eprintln!("exp_profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let out = json!({
        "schema": "mobicast-bench-sim",
        "version": 1,
        "scenarios": serde_json::Value::Object(scenarios),
    });
    mobicast_core::report::write_json("BENCH_sim", &out);
    ExitCode::SUCCESS
}
