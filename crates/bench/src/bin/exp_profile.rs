//! Simulator telemetry benchmark: profiled, trace-exporting runs of the
//! reference scenarios plus the parallel-sweep throughput measurements.
//! Emits `results/BENCH_sim.json` (events/sec, queue high-water mark,
//! per-handler-category latency histograms, overload admission-control
//! activity, serial-vs-parallel speedups) and, per scenario, a
//! schema-validated JSONL trace (`results/trace-<scenario>.jsonl`), a
//! Perfetto/Chrome span timeline (`results/trace-<scenario>.trace.json`)
//! and an OpenMetrics snapshot (`results/metrics-<scenario>.om.txt`).
//! Exits non-zero on any oracle violation, invalid trace line, invalid
//! export, or serial/parallel result divergence, so CI can gate on it.
//!
//! `--check <path>` validates an already-written benchmark file against
//! the expected schema instead of running anything — the CI telemetry
//! job uses it so a missing or malformed `BENCH_sim.json` fails loudly.

use std::process::ExitCode;
use std::time::Instant;

use mobicast_core::router_node::ResourceBudget;
use mobicast_core::scenario::{self, ScenarioConfig};
use mobicast_core::Policy;
use mobicast_net::StormModel;
use mobicast_sim::parallel::{configured_workers, run_ordered};
use mobicast_sim::trace::validate_jsonl_line;
use mobicast_sim::{RateLimit, ShedPolicy};
use serde_json::json;

/// Ring-buffer capacity for the exported trace. Large enough that the
/// reference scenarios never drop events; drops are reported either way.
const TRACE_CAPACITY: usize = 1_000_000;

fn profiled(mut cfg: ScenarioConfig, name: &'static str) -> ScenarioConfig {
    cfg.name = name.into();
    cfg.profile = true;
    cfg.trace_capture = Some(TRACE_CAPACITY);
    cfg.summary = true;
    cfg.oracle = true;
    cfg
}

/// Run one scenario; returns its BENCH_sim entry, or `Err` with a message
/// when the oracle or the trace validation fails.
fn run_one(cfg: &ScenarioConfig) -> Result<serde_json::Value, String> {
    let wall_start = Instant::now();
    let result = scenario::run(cfg);
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let name = &cfg.name;

    if cfg.oracle && !result.report.oracle.violations.is_empty() {
        return Err(format!(
            "{name}: {} oracle violation(s): {:?}",
            result.report.oracle.violations.len(),
            result.report.oracle.violations
        ));
    }

    let trace = result
        .trace_jsonl
        .as_deref()
        .ok_or_else(|| format!("{name}: no trace captured"))?;
    let mut lines = 0u64;
    for (i, line) in trace.lines().enumerate() {
        validate_jsonl_line(line)
            .map_err(|e| format!("{name}: invalid trace line {}: {e}: {line}", i + 1))?;
        lines += 1;
    }
    let path = format!("results/trace-{name}.jsonl");
    std::fs::create_dir_all("results").ok();
    std::fs::write(&path, trace).map_err(|e| format!("{name}: writing {path}: {e}"))?;
    eprintln!(
        "(wrote {path}: {lines} lines, {} dropped)",
        result.trace_dropped
    );

    let profile = result
        .profile
        .ok_or_else(|| format!("{name}: profiling produced no SimProfile"))?;

    // Causal observability artifacts: the run's span timeline + gauge
    // series as a Perfetto/Chrome trace and an OpenMetrics snapshot,
    // validator-checked before they land on disk.
    let obs = &result.report.observability;
    let perfetto_path = format!("results/trace-{name}.trace.json");
    let perfetto = mobicast_core::observability::run_perfetto(name, &result.report);
    mobicast_sim::perfetto::validate_chrome_trace(&perfetto)
        .map_err(|e| format!("{name}: perfetto export invalid: {e}"))?;
    std::fs::write(&perfetto_path, &perfetto)
        .map_err(|e| format!("{name}: writing {perfetto_path}: {e}"))?;
    let om_path = format!("results/metrics-{name}.om.txt");
    let om = mobicast_core::observability::run_openmetrics(&result.report);
    mobicast_sim::openmetrics::validate_openmetrics(&om)
        .map_err(|e| format!("{name}: openmetrics export invalid: {e}"))?;
    std::fs::write(&om_path, &om).map_err(|e| format!("{name}: writing {om_path}: {e}"))?;
    eprintln!(
        "(wrote {perfetto_path} [{} spans] and {om_path} [{} series])",
        obs.spans.len(),
        obs.timeline.len()
    );

    // Admission-control activity: total shed / evicted / rate-limited
    // decisions across all nodes, normalised per simulated second, plus
    // the per-table high-water marks (max over nodes). All-zero on
    // unbudgeted runs — the column existing either way keeps the bench
    // trajectory comparable across runs.
    let node_total =
        |key: &str| -> u64 { result.report.node_stats.values().map(|c| c.get(key)).sum() };
    let node_max = |key: &str| -> u64 {
        result
            .report
            .node_stats
            .values()
            .map(|c| c.get(key))
            .max()
            .unwrap_or(0)
    };
    let overload_events: u64 = [
        "mldReportsShed",
        "mldListenersEvicted",
        "pimSgShed",
        "pimSgEvicted",
        "haBindingsShed",
        "haBindingsEvicted",
        "mldRateLimited",
        "pimRateLimited",
        "buRateLimited",
    ]
    .iter()
    .map(|k| node_total(k))
    .sum();
    let sim_secs = cfg.duration.as_secs_f64();

    Ok(json!({
        "profile": profile,
        "events_executed": result.events_executed,
        "packets_sent": result.sent,
        "wall_secs": wall_secs,
        "events_per_sec": result.events_executed as f64 / wall_secs.max(1e-9),
        "trace_lines": lines,
        "trace_dropped": result.trace_dropped,
        "trace_file": path,
        "observability": {
            "spans": obs.spans.len(),
            "series": obs.timeline.len(),
            "digests": obs.digests.len(),
            "perfetto_file": perfetto_path,
            "openmetrics_file": om_path,
        },
        "overload": {
            "events": overload_events,
            "events_per_sim_sec": overload_events as f64 / sim_secs.max(1e-9),
            "mld_listeners_high_water": node_max("mldListenersHighWater"),
            "pim_sg_high_water": node_max("pimSgHighWater"),
            "binding_cache_high_water": node_max("bindingCacheHighWater"),
        },
    }))
}

/// Peak resident set of this process so far, from `/proc/self/status`
/// `VmHWM` (kB). Zero where the proc filesystem is unavailable.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .ok()
            })
        })
        .map_or(0, |kb| kb * 1024)
}

/// The compact-state scale section (schema v6): metro-grid stress
/// throughput with peak RSS — run once inline (`workers = 1`) and once on
/// the threaded executor with a byte-identity check and the honest
/// *measured* wall-clock speedup between the two — the Helmy aggregation
/// curve (bytes-per-listener vs group sharing, audited against the
/// DESIGN.md model), and the O(1)-poll flatness check — the oracle's 5 s
/// walk counters must not scale with the listener population.
fn scale_section() -> Result<serde_json::Value, String> {
    use mobicast_core::scale;
    use mobicast_core::stress::{run_stress_with, StressRunOptions, StressSpec};

    // Metro throughput: a 1012-router grid, sharded, under the oracle.
    // The inline pass is the measured-speedup baseline; on a single-core
    // host the threaded pass is expected to land at or below 1x, and the
    // number is reported as measured, not assumed.
    let spec = scale::metro_spec(1_000, 400, 11);
    let workers = configured_workers().min(8);
    let wall_start = Instant::now();
    let (base_report, _) = run_stress_with(
        &spec,
        &StressRunOptions::sharded(8, 1),
        mobicast_sim::Tracer::null(),
    );
    let wall_serial_secs = wall_start.elapsed().as_secs_f64();
    let wall_start = Instant::now();
    let (report, stats) = run_stress_with(
        &spec,
        &StressRunOptions::sharded(8, workers),
        mobicast_sim::Tracer::null(),
    );
    let wall_secs = wall_start.elapsed().as_secs_f64();
    if report.oracle_violations > 0 {
        return Err(format!(
            "scale: {} oracle violation(s) in {}: {:?}",
            report.oracle_violations, report.name, report.violations
        ));
    }
    {
        let a = serde_json::to_string(&base_report).map_err(|e| e.to_string())?;
        let b = serde_json::to_string(&report).map_err(|e| e.to_string())?;
        if a != b {
            return Err(format!(
                "scale: inline and threaded metro reports diverge at {workers} workers \
                 — determinism broken"
            ));
        }
    }
    let mut stats = stats.ok_or_else(|| "scale: sharded run reported no stats".to_owned())?;
    let measured_speedup = wall_serial_secs / wall_secs.max(1e-9);
    stats.measured_speedup = Some(measured_speedup);
    eprintln!(
        "[scale] {}: {} events, {:.2}s wall, {:.0} events/sec, \
         achievable speedup {:.2}x over {} shards, \
         measured {measured_speedup:.2}x at {} workers (inline baseline {:.2}s)",
        report.name,
        report.events_executed,
        wall_secs,
        report.events_executed as f64 / wall_secs.max(1e-9),
        stats.achievable_speedup(),
        stats.events_per_shard.len(),
        stats.workers,
        wall_serial_secs,
    );

    // The Helmy aggregation curve: 100k listeners on the same 529-link
    // metro, at three group fan-ins. Audited against the documented
    // model; a drift lands in `bytes_per_listener`, which `report --diff`
    // watches.
    let curve = scale::aggregation_curve(100_000, 529);
    for a in &curve {
        let off = (a.measured_bytes as f64 - a.model_bytes as f64) / a.model_bytes as f64;
        if off.abs() > 0.10 {
            return Err(format!(
                "scale: aggregation audit off model by {:.1}% at {} groups",
                off * 100.0,
                a.groups
            ));
        }
        eprintln!(
            "[scale] aggregation: {} groups -> {:.1} bytes/listener \
             ({} MLD rows, {} (S,G) rows)",
            a.groups, a.bytes_per_listener, a.mld_rows, a.sg_rows
        );
    }
    let mem_per_listener = curve
        .last()
        .map(|a| a.bytes_per_listener)
        .unwrap_or(f64::NAN);

    // Poll flatness: quadrupling the listener population must not grow
    // the oracle's per-poll walk footprint — state is per (link, group),
    // and the watermark/epoch guards skip quiescent tables entirely.
    let flat_spec = |receivers: usize| StressSpec {
        name: format!("poll-flatness/{receivers}"),
        receivers,
        movers: 4,
        ..scale::metro_spec(120, receivers, 11)
    };
    let (few, _) = run_stress_with(
        &flat_spec(64),
        &StressRunOptions::default(),
        mobicast_sim::Tracer::null(),
    );
    let (many, _) = run_stress_with(
        &flat_spec(256),
        &StressRunOptions::default(),
        mobicast_sim::Tracer::null(),
    );
    eprintln!(
        "[scale] poll walk: {} entries over {} polls at 64 listeners, \
         {} entries over {} polls at 256",
        few.poll.sg_entries_walked,
        few.poll.router_polls,
        many.poll.sg_entries_walked,
        many.poll.router_polls
    );
    if many.poll.sg_entries_walked as f64 > few.poll.sg_entries_walked as f64 * 1.5 {
        return Err(format!(
            "scale: oracle poll cost scales with listeners \
             ({} -> {} entries walked for 4x listeners)",
            few.poll.sg_entries_walked, many.poll.sg_entries_walked
        ));
    }

    Ok(json!({
        "metro": {
            "name": report.name,
            "routers": report.routers,
            "links": report.links,
            "hosts": report.hosts,
            "events_executed": report.events_executed,
            "wall_secs": wall_secs,
            "wall_secs_inline": wall_serial_secs,
            "events_per_sec": report.events_executed as f64 / wall_secs.max(1e-9),
            "peak_rss_bytes": peak_rss_bytes(),
            "shards": stats.events_per_shard.len(),
            "workers": stats.workers,
            "windows": stats.windows,
            "barrier_syncs": stats.barrier_syncs,
            "critical_path_events": stats.critical_path_events,
            "achievable_speedup": stats.achievable_speedup(),
            "measured_speedup": measured_speedup,
            "handoff_events": stats.handoff_events,
            "barrier_stall_secs": stats.barrier_stall_secs,
        },
        "aggregation": curve,
        "mem_per_listener_bytes": mem_per_listener,
        "oracle_poll": {
            "listeners_64": few.poll,
            "listeners_256": many.poll,
            "flat": true,
        },
    }))
}

/// Validate an already-written `BENCH_sim.json` against the expected
/// schema: parseable JSON, the right `schema`/`version` stamp, at least
/// one scenario entry carrying the throughput and overload keys, and the
/// parallel-sweep section. Returns a message describing the first defect.
fn check_bench_file(path: &str) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    if v["schema"].as_str() != Some("mobicast-bench-sim") {
        return Err(format!("{path}: wrong or missing schema stamp"));
    }
    if v["version"].as_u64() != Some(6) {
        return Err(format!("{path}: wrong or missing schema version"));
    }
    let scenarios = v["scenarios"]
        .as_object()
        .ok_or_else(|| format!("{path}: no scenarios object"))?;
    if scenarios.is_empty() {
        return Err(format!("{path}: scenarios object empty"));
    }
    for (name, entry) in scenarios {
        for key in [
            "events_per_sec",
            "profile",
            "trace_lines",
            "observability",
            "overload",
        ] {
            if entry.get(key).is_none() {
                return Err(format!("{path}: scenario {name} missing {key}"));
            }
        }
        for key in ["spans", "series", "perfetto_file", "openmetrics_file"] {
            if entry["observability"].get(key).is_none() {
                return Err(format!(
                    "{path}: scenario {name} observability missing {key}"
                ));
            }
        }
        for key in [
            "events",
            "events_per_sim_sec",
            "mld_listeners_high_water",
            "pim_sg_high_water",
            "binding_cache_high_water",
        ] {
            if entry["overload"].get(key).is_none() {
                return Err(format!("{path}: scenario {name} overload missing {key}"));
            }
        }
    }
    if !scenarios.iter().any(|(name, _)| name == "overload") {
        return Err(format!("{path}: no overload scenario entry"));
    }
    if v["parallel"].as_object().is_none_or(|p| p.is_empty()) {
        return Err(format!("{path}: no parallel sweep section"));
    }
    let scale = v
        .get("scale")
        .ok_or_else(|| format!("{path}: no scale section"))?;
    for key in [
        "events_per_sec",
        "peak_rss_bytes",
        "achievable_speedup",
        "measured_speedup",
        "workers",
        "wall_secs_inline",
        "handoff_events",
        "barrier_stall_secs",
        "events_executed",
    ] {
        if scale["metro"].get(key).is_none() {
            return Err(format!("{path}: scale metro missing {key}"));
        }
    }
    if scale["aggregation"].as_array().is_none_or(Vec::is_empty) {
        return Err(format!("{path}: scale aggregation curve empty"));
    }
    if scale.get("mem_per_listener_bytes").is_none() || scale.get("oracle_poll").is_none() {
        return Err(format!(
            "{path}: scale missing mem_per_listener_bytes/oracle_poll"
        ));
    }
    Ok(())
}

/// Measure one sweep workload serially and in parallel, asserting the two
/// produce byte-identical results (the determinism-parity property) and
/// reporting the wall-clock speedup.
fn sweep_speedup<I, O, F>(name: &str, inputs: Vec<I>, f: F) -> Result<serde_json::Value, String>
where
    I: Sync,
    O: Send + serde::Serialize,
    F: Fn(&I) -> O + Sync,
{
    let workers = configured_workers();
    let n = inputs.len();

    let start = Instant::now();
    let serial = run_ordered(inputs.iter().collect(), 1, |i| f(i));
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_ordered(inputs.iter().collect(), workers, |i| f(i));
    let parallel_secs = start.elapsed().as_secs_f64();

    let serial_json = serde_json::to_string(&serial).map_err(|e| e.to_string())?;
    let parallel_json = serde_json::to_string(&parallel).map_err(|e| e.to_string())?;
    if serial_json != parallel_json {
        return Err(format!(
            "{name}: serial and parallel sweep results diverge — determinism broken"
        ));
    }

    let speedup = serial_secs / parallel_secs.max(1e-9);
    eprintln!(
        "[sweep] {name}: {n} runs, serial {serial_secs:.3}s, \
         parallel({workers}) {parallel_secs:.3}s, speedup {speedup:.2}x"
    );
    Ok(json!({
        "runs": n,
        "workers": workers,
        "serial_secs": serial_secs,
        "parallel_secs": parallel_secs,
        "speedup": speedup,
        "identical": true,
    }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("results/BENCH_sim.json");
        return match check_bench_file(path) {
            Ok(()) => {
                eprintln!("(schema ok: {path})");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("exp_profile --check: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Figure-1 steady state: the flood-and-prune baseline.
    let fig1 = profiled(
        ScenarioConfig::builder()
            .duration(mobicast_sim::SimDuration::from_secs(180))
            .build(),
        "fig1",
    );

    // A fixed chaos plan: loss + flaps + crashes + roaming under the
    // bidirectional-tunnel approach, the heaviest handler mix.
    let chaos_seed = 7;
    let chaos = profiled(
        mobicast_core::chaos::plan_for_seed(chaos_seed)
            .config(Policy::BIDIRECTIONAL_TUNNEL, chaos_seed),
        "chaos",
    );

    // A guaranteed handoff: Receiver 3 roams to the foreign Link 6 under
    // lossy links, exercising the BU/BAck and tunnel encap/decap trace
    // paths end to end.
    let handoff = profiled(
        ScenarioConfig::builder()
            .duration(mobicast_sim::SimDuration::from_secs(120))
            .policy(Policy::BIDIRECTIONAL_TUNNEL)
            .move_at(40.0, scenario::PaperHost::R3, 6)
            .fault(mobicast_net::FaultPlan::iid_loss(0.02))
            .build(),
        "handoff",
    );

    // A budgeted run under a severe signaling storm: bounded state
    // tables, rate-limited control-plane ingress, R3 roaming after the
    // storm clears — the admission-control hot path under load.
    let overload = profiled(
        ScenarioConfig::builder()
            .duration(mobicast_sim::SimDuration::from_secs(170))
            .policy(Policy::BIDIRECTIONAL_TUNNEL)
            .move_at(100.0, scenario::PaperHost::R3, 6)
            .fault(mobicast_net::FaultPlan {
                storm: StormModel {
                    zap_rate: 8.0,
                    zap_groups: 16,
                    bu_rate: 5.0,
                    flap_rate: 1.0,
                    flap_hosts: 2,
                    start_secs: 10.0,
                    end_secs: 90.0,
                },
                ..mobicast_net::FaultPlan::default()
            })
            .budget(ResourceBudget {
                mld_listeners: Some(8),
                pim_sg_entries: Some(8),
                binding_cache: Some(4),
                shed_policy: ShedPolicy::RejectNew,
                control_rate: Some(RateLimit {
                    rate_per_sec: 5.0,
                    burst: 10,
                }),
                event_queue_depth: Some(1 << 18),
            })
            .reconverge_slo_secs(60.0)
            .protected_floor(0.9)
            .build(),
        "overload",
    );

    let mut scenarios = Vec::new();
    for cfg in [&fig1, &chaos, &handoff, &overload] {
        match run_one(cfg) {
            Ok(entry) => scenarios.push((cfg.name.to_string(), entry)),
            Err(e) => {
                eprintln!("exp_profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Parallel-sweep throughput: the chaos campaign (the heaviest sweep of
    // the experiment suite) and the large-topology stress workload, each
    // run serially and in parallel with a byte-identity check.
    let chaos_seeds: Vec<u64> = (1..=8).collect();
    let chaos_sweep = match sweep_speedup("chaos_sweep", chaos_seeds, |&seed| {
        mobicast_core::chaos::check_seed(seed)
    }) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("exp_profile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stress_sweep = match sweep_speedup(
        "stress_sweep",
        mobicast_core::stress::specs(false),
        mobicast_core::stress::run_stress,
    ) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("exp_profile: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Compact-state scale measurements (schema v6): metro throughput +
    // peak RSS with the measured threaded speedup, the Helmy aggregation
    // curve, and the poll-flatness gate.
    let scale = match scale_section() {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("exp_profile: {e}");
            return ExitCode::FAILURE;
        }
    };

    let out = json!({
        "schema": "mobicast-bench-sim",
        "version": 6,
        "scenarios": serde_json::Value::Object(scenarios),
        "parallel": {
            "chaos_sweep": chaos_sweep,
            "stress_sweep": stress_sweep,
        },
        "scale": scale,
    });
    mobicast_core::report::write_json("BENCH_sim", &out);
    ExitCode::SUCCESS
}
