//! Simulator telemetry benchmark: profiled, trace-exporting runs of the
//! reference scenarios plus the parallel-sweep throughput measurements.
//! Emits `results/BENCH_sim.json` (events/sec, queue high-water mark,
//! per-handler-category latency histograms, serial-vs-parallel speedups)
//! and a schema-validated JSONL trace per scenario
//! (`results/trace-<scenario>.jsonl`). Exits non-zero on any oracle
//! violation, invalid trace line, or serial/parallel result divergence,
//! so CI can gate on it.

use std::process::ExitCode;
use std::time::Instant;

use mobicast_core::scenario::{self, ScenarioConfig};
use mobicast_core::Policy;
use mobicast_sim::parallel::{configured_workers, run_ordered};
use mobicast_sim::trace::validate_jsonl_line;
use serde_json::json;

/// Ring-buffer capacity for the exported trace. Large enough that the
/// reference scenarios never drop events; drops are reported either way.
const TRACE_CAPACITY: usize = 1_000_000;

fn profiled(mut cfg: ScenarioConfig, name: &'static str) -> ScenarioConfig {
    cfg.name = name.into();
    cfg.profile = true;
    cfg.trace_capture = Some(TRACE_CAPACITY);
    cfg.summary = true;
    cfg.oracle = true;
    cfg
}

/// Run one scenario; returns its BENCH_sim entry, or `Err` with a message
/// when the oracle or the trace validation fails.
fn run_one(cfg: &ScenarioConfig) -> Result<serde_json::Value, String> {
    let wall_start = Instant::now();
    let result = scenario::run(cfg);
    let wall_secs = wall_start.elapsed().as_secs_f64();
    let name = &cfg.name;

    if cfg.oracle && !result.report.oracle.violations.is_empty() {
        return Err(format!(
            "{name}: {} oracle violation(s): {:?}",
            result.report.oracle.violations.len(),
            result.report.oracle.violations
        ));
    }

    let trace = result
        .trace_jsonl
        .as_deref()
        .ok_or_else(|| format!("{name}: no trace captured"))?;
    let mut lines = 0u64;
    for (i, line) in trace.lines().enumerate() {
        validate_jsonl_line(line)
            .map_err(|e| format!("{name}: invalid trace line {}: {e}: {line}", i + 1))?;
        lines += 1;
    }
    let path = format!("results/trace-{name}.jsonl");
    std::fs::create_dir_all("results").ok();
    std::fs::write(&path, trace).map_err(|e| format!("{name}: writing {path}: {e}"))?;
    eprintln!(
        "(wrote {path}: {lines} lines, {} dropped)",
        result.trace_dropped
    );

    let profile = result
        .profile
        .ok_or_else(|| format!("{name}: profiling produced no SimProfile"))?;
    Ok(json!({
        "profile": profile,
        "events_executed": result.events_executed,
        "packets_sent": result.sent,
        "wall_secs": wall_secs,
        "events_per_sec": result.events_executed as f64 / wall_secs.max(1e-9),
        "trace_lines": lines,
        "trace_dropped": result.trace_dropped,
        "trace_file": path,
    }))
}

/// Measure one sweep workload serially and in parallel, asserting the two
/// produce byte-identical results (the determinism-parity property) and
/// reporting the wall-clock speedup.
fn sweep_speedup<I, O, F>(name: &str, inputs: Vec<I>, f: F) -> Result<serde_json::Value, String>
where
    I: Sync,
    O: Send + serde::Serialize,
    F: Fn(&I) -> O + Sync,
{
    let workers = configured_workers();
    let n = inputs.len();

    let start = Instant::now();
    let serial = run_ordered(inputs.iter().collect(), 1, |i| f(i));
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_ordered(inputs.iter().collect(), workers, |i| f(i));
    let parallel_secs = start.elapsed().as_secs_f64();

    let serial_json = serde_json::to_string(&serial).map_err(|e| e.to_string())?;
    let parallel_json = serde_json::to_string(&parallel).map_err(|e| e.to_string())?;
    if serial_json != parallel_json {
        return Err(format!(
            "{name}: serial and parallel sweep results diverge — determinism broken"
        ));
    }

    let speedup = serial_secs / parallel_secs.max(1e-9);
    eprintln!(
        "[sweep] {name}: {n} runs, serial {serial_secs:.3}s, \
         parallel({workers}) {parallel_secs:.3}s, speedup {speedup:.2}x"
    );
    Ok(json!({
        "runs": n,
        "workers": workers,
        "serial_secs": serial_secs,
        "parallel_secs": parallel_secs,
        "speedup": speedup,
        "identical": true,
    }))
}

fn main() -> ExitCode {
    // Figure-1 steady state: the flood-and-prune baseline.
    let fig1 = profiled(
        ScenarioConfig::builder()
            .duration(mobicast_sim::SimDuration::from_secs(180))
            .build(),
        "fig1",
    );

    // A fixed chaos plan: loss + flaps + crashes + roaming under the
    // bidirectional-tunnel approach, the heaviest handler mix.
    let chaos_seed = 7;
    let chaos = profiled(
        mobicast_core::chaos::plan_for_seed(chaos_seed)
            .config(Policy::BIDIRECTIONAL_TUNNEL, chaos_seed),
        "chaos",
    );

    // A guaranteed handoff: Receiver 3 roams to the foreign Link 6 under
    // lossy links, exercising the BU/BAck and tunnel encap/decap trace
    // paths end to end.
    let handoff = profiled(
        ScenarioConfig::builder()
            .duration(mobicast_sim::SimDuration::from_secs(120))
            .policy(Policy::BIDIRECTIONAL_TUNNEL)
            .move_at(40.0, scenario::PaperHost::R3, 6)
            .fault(mobicast_net::FaultPlan::iid_loss(0.02))
            .build(),
        "handoff",
    );

    let mut scenarios = Vec::new();
    for cfg in [&fig1, &chaos, &handoff] {
        match run_one(cfg) {
            Ok(entry) => scenarios.push((cfg.name.to_string(), entry)),
            Err(e) => {
                eprintln!("exp_profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Parallel-sweep throughput: the chaos campaign (the heaviest sweep of
    // the experiment suite) and the large-topology stress workload, each
    // run serially and in parallel with a byte-identity check.
    let chaos_seeds: Vec<u64> = (1..=8).collect();
    let chaos_sweep = match sweep_speedup("chaos_sweep", chaos_seeds, |&seed| {
        mobicast_core::chaos::check_seed(seed)
    }) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("exp_profile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stress_sweep = match sweep_speedup(
        "stress_sweep",
        mobicast_core::stress::specs(false),
        mobicast_core::stress::run_stress,
    ) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("exp_profile: {e}");
            return ExitCode::FAILURE;
        }
    };

    let out = json!({
        "schema": "mobicast-bench-sim",
        "version": 2,
        "scenarios": serde_json::Value::Object(scenarios),
        "parallel": {
            "chaos_sweep": chaos_sweep,
            "stress_sweep": stress_sweep,
        },
    });
    mobicast_core::report::write_json("BENCH_sim", &out);
    ExitCode::SUCCESS
}
