//! Regenerates the paper's table1 (see DESIGN.md experiment index).
//! Pass --quick for a reduced sweep.
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::table1::run(
        mobicast_bench::quick_flag(),
    ));
}
