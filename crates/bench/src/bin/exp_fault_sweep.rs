//! Fault sweep: delivery and soft-state recovery under per-link loss.
//! `--approach <id>` pins the sweep to one registered delivery policy.

fn main() {
    if let Some(policy) = mobicast_bench::approach_flag() {
        mobicast_core::strategy::set_approach_override(Some(policy));
        eprintln!("(sweeping approach {})", policy.id());
    }
    mobicast_bench::emit(&mobicast_core::experiments::fault_sweep::run(
        mobicast_bench::quick_flag(),
    ));
}
