//! Fault sweep: delivery and soft-state recovery under per-link loss.

fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::fault_sweep::run(
        mobicast_bench::quick_flag(),
    ));
}
