//! Handoff-latency comparison: every registered delivery policy (the
//! paper's four approaches plus the hierarchical multicast proxy) runs
//! the same two-handoff roaming scenario; the table reports per-handoff
//! rejoin latency and the Binding Update load on the home agent vs the
//! domain MAP.

fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::handoff_latency::run());
}
