//! Regenerates the paper's fig2 (see DESIGN.md experiment index).
//! Pass --quick for a reduced sweep.
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::fig2::run(
        mobicast_bench::quick_flag(),
    ));
}
