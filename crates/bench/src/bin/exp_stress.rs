//! Large-topology stress experiment: grids and trees of 100+ routers with
//! many roaming receivers, every run under the invariant oracle. Pass
//! `--quick` for small debug-friendly shapes, `--workers N` / `--serial`
//! to pin the sweep worker pool.

fn main() {
    let quick = mobicast_bench::quick_flag();
    if let Some(workers) = mobicast_bench::workers_flag() {
        mobicast_core::sweep::set_worker_override(Some(workers));
    }
    mobicast_bench::emit(&mobicast_core::experiments::stress::run(quick));
}
