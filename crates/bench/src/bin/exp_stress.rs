//! Large-topology stress experiment: grids and trees of 100+ routers with
//! many roaming receivers, every run under the invariant oracle. Pass
//! `--quick` for small debug-friendly shapes, `--workers N` / `--serial`
//! to pin the sweep worker pool, `--approach <id>` to stress a single
//! delivery policy.

fn main() {
    let quick = mobicast_bench::quick_flag();
    if let Some(workers) = mobicast_bench::workers_flag() {
        mobicast_core::sweep::set_worker_override(Some(workers));
    }
    if let Some(policy) = mobicast_bench::approach_flag() {
        mobicast_core::strategy::set_approach_override(Some(policy));
        eprintln!("(stressing approach {})", policy.id());
    }
    mobicast_bench::emit(&mobicast_core::experiments::stress::run(quick));
}
