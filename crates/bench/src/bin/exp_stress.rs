//! Large-topology stress experiment: grids and trees of 100+ routers with
//! many roaming receivers, every run under the invariant oracle. Pass
//! `--quick` for small debug-friendly shapes, `--workers N` / `--serial`
//! to pin the sweep worker pool, `--approach <id>` to stress a single
//! delivery policy.
//!
//! `--routers N` switches to a single metro-grid run of (at least) N
//! routers on the sharded executor — e.g. `exp_stress --routers 10000
//! --receivers 200` — reporting events/sec, the shard schedule and the
//! achievable conservative-parallel speedup. On the metro run `--workers`
//! sets the *executor threads* of the sharded run (the same knob as
//! `MOBICAST_WORKERS`; `--serial` = 1 = inline), while on the sweep it
//! pins the sweep worker pool — one flag, one meaning per mode.
//! `--receivers M` tunes the run; the result lands in
//! `results/stress_metro.json`.

use std::process::ExitCode;
use std::time::Instant;

use mobicast_core::stress::{run_stress_with, StressRunOptions};
use serde_json::json;

/// Shard count for the metro run: enough regions that the schedule is
/// interesting, few enough that every shard holds real work.
const METRO_SHARDS: usize = 16;

fn run_metro(routers: usize) -> ExitCode {
    let receivers = mobicast_bench::receivers_flag().unwrap_or(200);
    let workers = mobicast_bench::workers_flag().unwrap_or(4);
    let spec = mobicast_core::scale::metro_spec(routers, receivers, 11);
    eprintln!(
        "(metro run: {} with {receivers} receivers, {METRO_SHARDS} shards, \
         {workers} workers)",
        spec.name
    );

    let opts = StressRunOptions::sharded(METRO_SHARDS, workers);
    let wall_start = Instant::now();
    let (report, stats) = run_stress_with(&spec, &opts, mobicast_sim::Tracer::null());
    let wall_secs = wall_start.elapsed().as_secs_f64();

    let events_per_sec = report.events_executed as f64 / wall_secs.max(1e-9);
    println!(
        "{}: {} routers / {} links / {} hosts",
        report.name, report.routers, report.links, report.hosts
    );
    println!(
        "  {} events in {wall_secs:.2}s wall = {events_per_sec:.0} events/sec",
        report.events_executed
    );
    if let Some(s) = &stats {
        println!(
            "  schedule: {} windows, {} barrier syncs, critical path {} events, \
             achievable speedup {:.2}x",
            s.windows,
            s.barrier_syncs,
            s.critical_path_events,
            s.achievable_speedup()
        );
        println!(
            "  executor: {} worker thread(s), {} cross-worker handoffs, \
             {:.3}s barrier stall",
            s.workers, s.handoff_events, s.barrier_stall_secs
        );
    }
    println!(
        "  delivery: {} packets, {} first-copy deliveries, {} duplicates; \
         oracle violations: {}",
        report.packets_sent,
        report.first_copy_deliveries,
        report.duplicate_deliveries,
        report.oracle_violations
    );

    let out = json!({
        "spec": {
            "name": report.name,
            "routers": report.routers,
            "links": report.links,
            "hosts": report.hosts,
            "receivers": receivers,
            "shards": METRO_SHARDS,
            "workers": workers,
        },
        "events_executed": report.events_executed,
        "wall_secs": wall_secs,
        "events_per_sec": events_per_sec,
        "shard_stats": stats,
        "report": report,
    });
    mobicast_core::report::write_json("stress_metro", &out);

    if report.oracle_violations > 0 {
        eprintln!(
            "exp_stress: {} oracle violation(s): {:?}",
            report.oracle_violations, report.violations
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let quick = mobicast_bench::quick_flag();
    if let Some(workers) = mobicast_bench::workers_flag() {
        mobicast_core::sweep::set_worker_override(Some(workers));
    }
    if let Some(policy) = mobicast_bench::approach_flag() {
        mobicast_core::strategy::set_approach_override(Some(policy));
        eprintln!("(stressing approach {})", policy.id());
    }
    if let Some(routers) = mobicast_bench::routers_flag() {
        return run_metro(routers);
    }
    mobicast_bench::emit(&mobicast_core::experiments::stress::run(quick));
    ExitCode::SUCCESS
}
