//! Regenerates the paper's §5 high-mobility comparison (extension
//! experiment; see DESIGN.md). Pass --quick for a reduced sweep.
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::mobility_rate::run(
        mobicast_bench::quick_flag(),
    ));
}
