//! Regenerates the paper's fig4 (see DESIGN.md experiment index).
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::fig4::run());
}
