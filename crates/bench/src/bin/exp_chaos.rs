//! Chaos campaign: randomized fault + mobility schedules for every
//! Table-1 approach under the invariant oracle. Exits non-zero if any
//! oracle violation is found, so CI can gate on it. Pass --quick for a
//! reduced seed set.

use std::process::ExitCode;

fn main() -> ExitCode {
    let out = mobicast_core::experiments::chaos::run(mobicast_bench::quick_flag());
    mobicast_bench::emit(&out);
    let violations = out.json["total_violations"].as_u64().unwrap_or(u64::MAX);
    if violations > 0 {
        eprintln!("chaos: {violations} invariant violation(s) — see results/chaos.json");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
