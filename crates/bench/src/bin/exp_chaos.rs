//! Chaos campaign: randomized fault + mobility schedules for every
//! registered delivery policy under the invariant oracle. Exits non-zero
//! if any oracle violation is found, so CI can gate on it. Pass --quick
//! for a reduced seed set, `--approach <id>` to pin one policy.

use std::process::ExitCode;

fn main() -> ExitCode {
    if let Some(policy) = mobicast_bench::approach_flag() {
        mobicast_core::strategy::set_approach_override(Some(policy));
        eprintln!("(chaos pinned to approach {})", policy.id());
    }
    let out = mobicast_core::experiments::chaos::run(mobicast_bench::quick_flag());
    mobicast_bench::emit(&out);
    let violations = out.json["total_violations"].as_u64().unwrap_or(u64::MAX);
    if violations > 0 {
        eprintln!("chaos: {violations} invariant violation(s) — see results/chaos.json");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
