//! Regenerates the paper's fig3 (see DESIGN.md experiment index).
fn main() {
    mobicast_bench::emit(&mobicast_core::experiments::fig3::run());
}
