//! # mobicast-core
//!
//! The paper's contribution, executable: the four multicast delivery
//! strategies for Mobile IPv6 hosts in a PIM-DM network (Table 1 of
//! *"Interoperation of Mobile IPv6 and Protocol Independent Multicast
//! Dense Mode"*, ICPP 2000), composed from the protocol state machines of
//! the sibling crates and measured with the criteria of the paper's
//! Section 4.3: join delay, leave delay, protocol overhead, bandwidth
//! consumption, routing optimality, and system load.
//!
//! * [`strategy`] — the open [`strategy::DeliveryPolicy`] registry; the
//!   paper's Table-1 approaches are the four built-in policies.
//! * [`router_node`] / [`host_node`] — composed nodes: IPv6 forwarding,
//!   MLD, PIM-DM, home agent / mobile node, applications.
//! * [`builder`] — network assembly; [`builder::NetworkSpec::reference`]
//!   is the paper's Figure-1 topology.
//! * [`scenario`] — configured runs of the reference network.
//! * [`analysis`] — ground-truth evaluation (wasted bytes, stretch,
//!   leave delays, delivery paths).
//! * [`recorder`] — run-time event capture feeding the analysis.
//! * [`explain`] — packet-journey explainer over the provenance chains.
//! * [`observability`] — handoff span dashboard join and the
//!   `report --diff` regression gate.
//! * [`sweep`] — deterministic parallel parameter sweeps (crossbeam).
//! * [`report`] — text tables and JSON output for the experiment binaries.

pub mod addressing;
pub mod analysis;
pub mod builder;
pub mod chaos;
pub mod experiments;
pub mod explain;
pub mod host_node;
pub mod interners;
pub mod mobility;
pub mod netplan;
pub mod observability;
pub mod oracle;
pub mod recorder;
pub mod report;
pub mod router_node;
pub mod scale;
pub mod scenario;
pub mod strategy;
pub mod stress;
pub mod sweep;

pub use analysis::{Analysis, RunReport};
pub use builder::{build, BuiltNetwork, HostSpec, MapDomain, NetworkSpec};
pub use explain::{DeliveryPath, Journey, JourneyHop};
pub use host_node::{HostConfig, HostNode, SenderApp};
pub use interners::WorldInterners;
pub use observability::{
    diff_report_values, handoff_rows, policy_handoff_stats, HandoffRow, PhaseBreakdown,
    PolicyHandoffStats, DEFAULT_DRIFT_THRESHOLD,
};
pub use oracle::{Oracle, OracleSummary, PollStats};
pub use router_node::{ResourceBudget, RouterConfig, RouterNode};
pub use scenario::{
    run, run_with_recorder, Move, PaperHost, ScenarioBuilder, ScenarioConfig, ScenarioResult,
};
#[allow(deprecated)]
pub use strategy::Strategy;
pub use strategy::{BuExtras, DeliveryPolicy, MoveAction, MoveContext, Policy, RecvPath, SendPath};
