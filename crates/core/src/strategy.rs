//! The paper's four approaches to multicast for mobile hosts (Table 1).
//!
//! A strategy is the cross product of how a mobile host *receives*
//! (locally via MLD on the foreign link, or through a tunnel from its home
//! agent) and how it *sends* (locally on the foreign link, or reverse-
//! tunnelled to its home agent). The four combinations are exactly the
//! paper's Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a mobile host away from home receives multicast traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RecvPath {
    /// §4.2.1 A: join via the local multicast router on the foreign link.
    Local,
    /// §4.2.1 B: the home agent joins on the host's behalf (extended
    /// Binding Update with the Multicast Group List Sub-Option) and tunnels
    /// group traffic to the care-of address.
    HomeTunnel,
}

/// How a mobile host away from home sends multicast traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SendPath {
    /// §4.2.2 A: send on the foreign link with the care-of address as
    /// source (a brand-new source-rooted tree is built).
    Local,
    /// §4.2.2 B: reverse-tunnel to the home agent, which decapsulates and
    /// sends on the home link (the existing tree is reused).
    HomeTunnel,
}

/// One of the paper's four approaches (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Strategy {
    pub recv: RecvPath,
    pub send: SendPath,
}

impl Strategy {
    /// Approach 1: local group membership on the foreign link.
    pub const LOCAL: Strategy = Strategy {
        recv: RecvPath::Local,
        send: SendPath::Local,
    };
    /// Approach 2: bi-directional tunnel between home agent and mobile host.
    pub const BIDIRECTIONAL_TUNNEL: Strategy = Strategy {
        recv: RecvPath::HomeTunnel,
        send: SendPath::HomeTunnel,
    };
    /// Approach 3: uni-directional tunnel from the mobile host to the home
    /// agent (send tunnelled, receive local).
    pub const TUNNEL_MH_TO_HA: Strategy = Strategy {
        recv: RecvPath::Local,
        send: SendPath::HomeTunnel,
    };
    /// Approach 4: uni-directional tunnel from the home agent to the mobile
    /// host (receive tunnelled, send local).
    pub const TUNNEL_HA_TO_MH: Strategy = Strategy {
        recv: RecvPath::HomeTunnel,
        send: SendPath::Local,
    };

    /// All four approaches in the paper's Table 1 order.
    pub const ALL: [Strategy; 4] = [
        Strategy::LOCAL,
        Strategy::BIDIRECTIONAL_TUNNEL,
        Strategy::TUNNEL_MH_TO_HA,
        Strategy::TUNNEL_HA_TO_MH,
    ];

    /// The paper's name for the approach.
    pub fn name(&self) -> &'static str {
        match (self.recv, self.send) {
            (RecvPath::Local, SendPath::Local) => "local group membership",
            (RecvPath::HomeTunnel, SendPath::HomeTunnel) => "bi-directional tunnel",
            (RecvPath::Local, SendPath::HomeTunnel) => "uni-dir tunnel MH->HA",
            (RecvPath::HomeTunnel, SendPath::Local) => "uni-dir tunnel HA->MH",
        }
    }

    /// Does this approach require the paper's Mobile IPv6 draft extension
    /// (the Multicast Group List Sub-Option) or PIM-capable home agents?
    /// (Static property discussed in §4.3; reported in the Table-1
    /// comparison.)
    pub fn requires_draft_changes(&self) -> bool {
        self.recv == RecvPath::HomeTunnel
    }

    /// Is routing to mobile *receivers* optimal under this approach (§4.3)?
    pub fn receiver_routing_optimal(&self) -> bool {
        self.recv == RecvPath::Local
    }

    /// Is routing from mobile *senders* optimal under this approach?
    pub fn sender_routing_optimal(&self) -> bool {
        self.send == SendPath::Local
    }

    /// Does a moving sender force a new distribution tree (flood + prune)?
    pub fn sender_move_rebuilds_tree(&self) -> bool {
        self.send == SendPath::Local
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_strategies() {
        let mut names: Vec<_> = Strategy::ALL.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn table1_static_properties() {
        // §4.3.1: local membership — optimal routing, no draft changes.
        assert!(Strategy::LOCAL.receiver_routing_optimal());
        assert!(Strategy::LOCAL.sender_routing_optimal());
        assert!(!Strategy::LOCAL.requires_draft_changes());
        assert!(Strategy::LOCAL.sender_move_rebuilds_tree());

        // §4.3.2: bi-directional tunnel — suboptimal both ways, needs the
        // sub-option, no tree rebuild.
        assert!(!Strategy::BIDIRECTIONAL_TUNNEL.receiver_routing_optimal());
        assert!(!Strategy::BIDIRECTIONAL_TUNNEL.sender_routing_optimal());
        assert!(Strategy::BIDIRECTIONAL_TUNNEL.requires_draft_changes());
        assert!(!Strategy::BIDIRECTIONAL_TUNNEL.sender_move_rebuilds_tree());

        // §4.3.3: MH->HA — optimal receive, suboptimal send, no changes.
        assert!(Strategy::TUNNEL_MH_TO_HA.receiver_routing_optimal());
        assert!(!Strategy::TUNNEL_MH_TO_HA.sender_routing_optimal());
        assert!(!Strategy::TUNNEL_MH_TO_HA.requires_draft_changes());

        // §4.3.4: HA->MH — "combines most disadvantages".
        assert!(!Strategy::TUNNEL_HA_TO_MH.receiver_routing_optimal());
        assert!(Strategy::TUNNEL_HA_TO_MH.sender_move_rebuilds_tree());
        assert!(Strategy::TUNNEL_HA_TO_MH.requires_draft_changes());
    }
}
