//! Delivery policies: the paper's four approaches to multicast for mobile
//! hosts (Table 1) plus an open registry for approaches beyond them.
//!
//! The paper's approaches are the cross product of how a mobile host
//! *receives* (locally via MLD on the foreign link, or through a tunnel
//! from its mobility agent) and how it *sends* (locally on the foreign
//! link, or reverse-tunnelled to its home agent). Rather than hardwiring
//! that 2×2 everywhere, the host/agent glue consults a [`DeliveryPolicy`]
//! — an object-safe trait whose hooks ([`DeliveryPolicy::recv_plane`],
//! [`DeliveryPolicy::send_plane`], [`DeliveryPolicy::on_move`],
//! [`DeliveryPolicy::binding_update_extras`]) cover every decision the
//! glue used to switch on. The four paper approaches are four registered
//! policies; a fifth, [`Policy::HIERARCHICAL_PROXY`], registers a
//! MAP-style regional agent so intra-domain handoffs never touch the home
//! agent. Adding approach N+1 means one `impl DeliveryPolicy` plus a
//! [`Policy::register`] call — sweeps, CLI flags and report labels pick it
//! up from the registry.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};

/// How a mobile host away from home receives multicast traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RecvPath {
    /// §4.2.1 A: join via the local multicast router on the foreign link.
    Local,
    /// §4.2.1 B: a mobility agent (the home agent, or a regional MAP under
    /// hierarchical policies) joins on the host's behalf — extended
    /// Binding Update with the Multicast Group List Sub-Option — and
    /// tunnels group traffic to the care-of address.
    HomeTunnel,
}

/// How a mobile host away from home sends multicast traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SendPath {
    /// §4.2.2 A: send on the foreign link with the care-of address as
    /// source (a brand-new source-rooted tree is built).
    Local,
    /// §4.2.2 B: reverse-tunnel to the home agent, which decapsulates and
    /// sends on the home link (the existing tree is reused).
    HomeTunnel,
}

/// Extra content a policy wants carried in Binding Updates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BuExtras {
    /// Attach the paper's Multicast Group List Sub-Option, so the mobility
    /// agent learns which groups to proxy-join on the host's behalf.
    pub include_group_list: bool,
}

/// What the host glue knows when a mobile attaches to a new link, handed
/// to [`DeliveryPolicy::on_move`].
#[derive(Clone, Copy, Debug)]
pub struct MoveContext {
    /// The destination is the mobile's home link.
    pub to_home_link: bool,
    /// The mobile's home agent address.
    pub home_agent: Ipv6Addr,
    /// Regional mobility agent (MAP) serving the destination link, if the
    /// network advertises one there.
    pub map_agent: Option<Ipv6Addr>,
}

/// A policy's registration decision on attach, returned by
/// [`DeliveryPolicy::on_move`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MoveAction {
    /// Bind the new care-of address at the home agent (plain Mobile IPv6).
    RegisterHome,
    /// Bind at a regional mobility agent instead; the home agent is left
    /// untouched while the mobile stays inside the agent's domain.
    RegisterWithAgent(Ipv6Addr),
}

/// One approach to multicast delivery for mobile hosts.
///
/// Object-safe: the simulation stores policies as `&'static dyn
/// DeliveryPolicy` (see [`Policy`]). Implementations are stateless —
/// per-host state lives in the host, keyed by what these hooks return.
/// The provided defaults derive every secondary property from the two
/// planes, so a plane-only policy needs nothing but `id`, `name`,
/// `recv_plane` and `send_plane`.
pub trait DeliveryPolicy: Sync {
    /// Stable machine identifier (CLI flags, serialized output, lookups).
    fn id(&self) -> &'static str;

    /// Human-readable label used in tables and report rows.
    fn name(&self) -> &'static str;

    /// How the mobile receives group traffic while away from home.
    fn recv_plane(&self) -> RecvPath;

    /// How the mobile sends group traffic while away from home.
    fn send_plane(&self) -> SendPath;

    /// Which mobility agent the mobile registers with after a move.
    fn on_move(&self, _ctx: &MoveContext) -> MoveAction {
        MoveAction::RegisterHome
    }

    /// Extra Binding Update content. By default the Multicast Group List
    /// Sub-Option rides along exactly when the agent must proxy-join
    /// (tunnelled receive plane).
    fn binding_update_extras(&self) -> BuExtras {
        BuExtras {
            include_group_list: self.recv_plane() == RecvPath::HomeTunnel,
        }
    }

    /// Does this approach require the paper's Mobile IPv6 draft extension
    /// (the Multicast Group List Sub-Option) or PIM-capable agents?
    /// (Static property discussed in §4.3; reported in the Table-1
    /// comparison.)
    fn requires_draft_changes(&self) -> bool {
        self.binding_update_extras().include_group_list
    }

    /// Is routing to mobile *receivers* optimal under this approach (§4.3)?
    fn receiver_routing_optimal(&self) -> bool {
        self.recv_plane() == RecvPath::Local
    }

    /// Is routing from mobile *senders* optimal under this approach?
    fn sender_routing_optimal(&self) -> bool {
        self.send_plane() == SendPath::Local
    }

    /// Does a moving sender force a new distribution tree (flood + prune)?
    fn sender_move_rebuilds_tree(&self) -> bool {
        self.send_plane() == SendPath::Local
    }
}

/// A handle to a registered [`DeliveryPolicy`] — `Copy`, comparable by
/// [`DeliveryPolicy::id`], and `Deref`s to the trait so hook calls read
/// naturally (`policy.recv_plane()`).
#[derive(Clone, Copy)]
pub struct Policy(&'static dyn DeliveryPolicy);

/// One of the paper's plane-product approaches: everything derives from
/// the `(recv, send)` pair.
struct PlanePolicy {
    id: &'static str,
    name: &'static str,
    recv: RecvPath,
    send: SendPath,
}

impl DeliveryPolicy for PlanePolicy {
    fn id(&self) -> &'static str {
        self.id
    }
    fn name(&self) -> &'static str {
        self.name
    }
    fn recv_plane(&self) -> RecvPath {
        self.recv
    }
    fn send_plane(&self) -> SendPath {
        self.send
    }
}

static LOCAL_POLICY: PlanePolicy = PlanePolicy {
    id: "local",
    name: "local group membership",
    recv: RecvPath::Local,
    send: SendPath::Local,
};
static BIDIR_POLICY: PlanePolicy = PlanePolicy {
    id: "bidir-tunnel",
    name: "bi-directional tunnel",
    recv: RecvPath::HomeTunnel,
    send: SendPath::HomeTunnel,
};
static MH_HA_POLICY: PlanePolicy = PlanePolicy {
    id: "tunnel-mh-ha",
    name: "uni-dir tunnel MH->HA",
    recv: RecvPath::Local,
    send: SendPath::HomeTunnel,
};
static HA_MH_POLICY: PlanePolicy = PlanePolicy {
    id: "tunnel-ha-mh",
    name: "uni-dir tunnel HA->MH",
    recv: RecvPath::HomeTunnel,
    send: SendPath::Local,
};

/// Approach 5: hierarchical multicast proxy. A MAP-style router joins on
/// behalf of roaming receivers in its domain and tunnels the stream over
/// the (short) intra-domain path; handoffs between the domain's links
/// re-register with the MAP only, so the home agent never hears about
/// them. Outside any domain the policy degrades to plain home
/// registration (bi-directional-tunnel receive, local send).
struct HierarchicalProxy;

impl DeliveryPolicy for HierarchicalProxy {
    fn id(&self) -> &'static str {
        "hier-proxy"
    }
    fn name(&self) -> &'static str {
        "hierarchical proxy"
    }
    fn recv_plane(&self) -> RecvPath {
        RecvPath::HomeTunnel
    }
    fn send_plane(&self) -> SendPath {
        SendPath::Local
    }
    fn on_move(&self, ctx: &MoveContext) -> MoveAction {
        match (ctx.to_home_link, ctx.map_agent) {
            (false, Some(map)) => MoveAction::RegisterWithAgent(map),
            _ => MoveAction::RegisterHome,
        }
    }
}

static HIER_POLICY: HierarchicalProxy = HierarchicalProxy;

/// Process-global single-approach override backing the experiment
/// binaries' `--approach <id>` flag (see [`set_approach_override`]).
static APPROACH_OVERRIDE: Mutex<Option<Policy>> = Mutex::new(None);

/// Pin policy-sweeping experiments to a single approach — the `--approach
/// <id>` CLI flag of `exp_all` / `exp_stress`. `None` restores the full
/// registry sweep. Affects [`Policy::active`] only; [`Policy::all`] and
/// [`Policy::PAPER`] always report the complete sets.
pub fn set_approach_override(policy: Option<Policy>) {
    *APPROACH_OVERRIDE.lock().unwrap() = policy;
}

/// The approach pinned by [`set_approach_override`], if any.
pub fn approach_override() -> Option<Policy> {
    *APPROACH_OVERRIDE.lock().unwrap()
}

fn registry() -> &'static Mutex<Vec<Policy>> {
    static REGISTRY: OnceLock<Mutex<Vec<Policy>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(vec![
            Policy::LOCAL,
            Policy::BIDIRECTIONAL_TUNNEL,
            Policy::TUNNEL_MH_TO_HA,
            Policy::TUNNEL_HA_TO_MH,
            Policy::HIERARCHICAL_PROXY,
        ])
    })
}

impl Policy {
    /// Approach 1: local group membership on the foreign link.
    pub const LOCAL: Policy = Policy(&LOCAL_POLICY);
    /// Approach 2: bi-directional tunnel between home agent and mobile host.
    pub const BIDIRECTIONAL_TUNNEL: Policy = Policy(&BIDIR_POLICY);
    /// Approach 3: uni-directional tunnel from the mobile host to the home
    /// agent (send tunnelled, receive local).
    pub const TUNNEL_MH_TO_HA: Policy = Policy(&MH_HA_POLICY);
    /// Approach 4: uni-directional tunnel from the home agent to the mobile
    /// host (receive tunnelled, send local).
    pub const TUNNEL_HA_TO_MH: Policy = Policy(&HA_MH_POLICY);
    /// Approach 5: hierarchical multicast proxy (regional MAP agent).
    pub const HIERARCHICAL_PROXY: Policy = Policy(&HIER_POLICY);

    /// The paper's four approaches in Table-1 order.
    pub const PAPER: [Policy; 4] = [
        Policy::LOCAL,
        Policy::BIDIRECTIONAL_TUNNEL,
        Policy::TUNNEL_MH_TO_HA,
        Policy::TUNNEL_HA_TO_MH,
    ];

    /// Every registered policy, in registration order (the paper's four
    /// first, then extensions). Sweeps and CLI flags enumerate this.
    pub fn all() -> Vec<Policy> {
        registry().lock().unwrap().clone()
    }

    /// The policies a sweep should cover: the single [`approach_override`]
    /// when one is pinned, otherwise every registered policy.
    pub fn active() -> Vec<Policy> {
        approach_override().map_or_else(Policy::all, |p| vec![p])
    }

    /// Find a registered policy by its stable id.
    pub fn lookup(id: &str) -> Option<Policy> {
        Policy::all().into_iter().find(|p| p.id() == id)
    }

    /// Register an additional policy. Panics on a duplicate id — ids are
    /// the serialization format and must stay unambiguous.
    pub fn register(policy: &'static dyn DeliveryPolicy) -> Policy {
        let mut reg = registry().lock().unwrap();
        assert!(
            reg.iter().all(|p| p.id() != policy.id()),
            "delivery policy id {:?} registered twice",
            policy.id()
        );
        let p = Policy(policy);
        reg.push(p);
        p
    }
}

impl std::ops::Deref for Policy {
    type Target = dyn DeliveryPolicy;
    fn deref(&self) -> &Self::Target {
        self.0
    }
}

impl PartialEq for Policy {
    fn eq(&self, other: &Self) -> bool {
        self.id() == other.id()
    }
}

impl Eq for Policy {}

impl fmt::Debug for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Policy").field(&self.id()).finish()
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a policy id, listing the registered ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePolicyError {
    input: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let known: Vec<&str> = Policy::all().iter().map(|p| p.id()).collect();
        write!(
            f,
            "unknown delivery policy {:?} (registered: {})",
            self.input,
            known.join(", ")
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for Policy {
    type Err = ParsePolicyError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Policy::lookup(s).ok_or_else(|| ParsePolicyError { input: s.into() })
    }
}

impl Serialize for Policy {
    fn to_json_value(&self) -> Value {
        Value::Str(self.id().to_string())
    }
}

impl Deserialize for Policy {
    fn from_json_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected policy id string"))?;
        s.parse().map_err(serde::Error::custom)
    }
}

/// Deprecated pre-registry name for [`Policy`]; kept one release so
/// downstream code migrates at its own pace.
#[deprecated(note = "renamed to Policy; construct via Policy::* or the registry")]
pub type Strategy = Policy;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_policies_are_distinct() {
        let all = Policy::all();
        assert!(all.len() >= 5);
        let mut ids: Vec<_> = all.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        let mut names: Vec<_> = all.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn paper_policies_lead_the_registry() {
        let all = Policy::all();
        assert_eq!(&all[..4], &Policy::PAPER[..]);
        assert_eq!(all[4], Policy::HIERARCHICAL_PROXY);
    }

    #[test]
    fn table1_static_properties() {
        // §4.3.1: local membership — optimal routing, no draft changes.
        assert!(Policy::LOCAL.receiver_routing_optimal());
        assert!(Policy::LOCAL.sender_routing_optimal());
        assert!(!Policy::LOCAL.requires_draft_changes());
        assert!(Policy::LOCAL.sender_move_rebuilds_tree());

        // §4.3.2: bi-directional tunnel — suboptimal both ways, needs the
        // sub-option, no tree rebuild.
        assert!(!Policy::BIDIRECTIONAL_TUNNEL.receiver_routing_optimal());
        assert!(!Policy::BIDIRECTIONAL_TUNNEL.sender_routing_optimal());
        assert!(Policy::BIDIRECTIONAL_TUNNEL.requires_draft_changes());
        assert!(!Policy::BIDIRECTIONAL_TUNNEL.sender_move_rebuilds_tree());

        // §4.3.3: MH->HA — optimal receive, suboptimal send, no changes.
        assert!(Policy::TUNNEL_MH_TO_HA.receiver_routing_optimal());
        assert!(!Policy::TUNNEL_MH_TO_HA.sender_routing_optimal());
        assert!(!Policy::TUNNEL_MH_TO_HA.requires_draft_changes());

        // §4.3.4: HA->MH — "combines most disadvantages".
        assert!(!Policy::TUNNEL_HA_TO_MH.receiver_routing_optimal());
        assert!(Policy::TUNNEL_HA_TO_MH.sender_move_rebuilds_tree());
        assert!(Policy::TUNNEL_HA_TO_MH.requires_draft_changes());
    }

    #[test]
    fn ids_round_trip_via_fromstr_and_serde() {
        for p in Policy::all() {
            assert_eq!(p.id().parse::<Policy>().unwrap(), p);
            let v = p.to_json_value();
            assert_eq!(Policy::from_json_value(&v).unwrap(), p);
        }
        let err = "no-such-policy".parse::<Policy>().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("no-such-policy") && msg.contains("local"),
            "{msg}"
        );
    }

    #[test]
    fn hier_proxy_prefers_the_domain_agent() {
        let map: Ipv6Addr = "2001:db8:3::d".parse().unwrap();
        let ha: Ipv6Addr = "2001:db8:1::a".parse().unwrap();
        let p = Policy::HIERARCHICAL_PROXY;
        let ctx = MoveContext {
            to_home_link: false,
            home_agent: ha,
            map_agent: Some(map),
        };
        assert_eq!(p.on_move(&ctx), MoveAction::RegisterWithAgent(map));
        // No MAP on the destination → fall back to the home agent.
        assert_eq!(
            p.on_move(&MoveContext {
                map_agent: None,
                ..ctx
            }),
            MoveAction::RegisterHome
        );
        // Returning home always re-registers (deregisters) at the HA.
        assert_eq!(
            p.on_move(&MoveContext {
                to_home_link: true,
                ..ctx
            }),
            MoveAction::RegisterHome
        );
        // The group list rides along: the MAP must learn what to join.
        assert!(p.binding_update_extras().include_group_list);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_strategy_alias_still_works() {
        let s: Strategy = Strategy::LOCAL;
        assert_eq!(s, Policy::LOCAL);
    }

    #[test]
    fn paper_policies_keep_their_plane_semantics() {
        assert_eq!(Policy::LOCAL.recv_plane(), RecvPath::Local);
        assert_eq!(Policy::LOCAL.send_plane(), SendPath::Local);
        assert_eq!(
            Policy::BIDIRECTIONAL_TUNNEL.recv_plane(),
            RecvPath::HomeTunnel
        );
        assert_eq!(
            Policy::BIDIRECTIONAL_TUNNEL.send_plane(),
            SendPath::HomeTunnel
        );
        assert_eq!(Policy::TUNNEL_MH_TO_HA.recv_plane(), RecvPath::Local);
        assert_eq!(Policy::TUNNEL_MH_TO_HA.send_plane(), SendPath::HomeTunnel);
        assert_eq!(Policy::TUNNEL_HA_TO_MH.recv_plane(), RecvPath::HomeTunnel);
        assert_eq!(Policy::TUNNEL_HA_TO_MH.send_plane(), SendPath::Local);
        // Group-list sub-option exactly on the tunnelled-receive approaches.
        for p in Policy::PAPER {
            assert_eq!(
                p.binding_update_extras().include_group_list,
                p.recv_plane() == RecvPath::HomeTunnel
            );
        }
    }
}
