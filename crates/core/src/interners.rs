//! World-level interner bundle shared by every node's compact state tables.
//!
//! One [`WorldInterners`] is created per built network. Every router's MLD
//! listener table, PIM (S,G) table and home-agent binding cache draw their
//! dense `u32` ids from the same two pools, so equal addresses intern to
//! equal ids on every node and the total intern storage is paid once per
//! world instead of once per node.

use mobicast_ipv6::addr::GroupAddr;
use mobicast_sim::arena::{shared_interner, SharedInterner};
use std::net::Ipv6Addr;

/// Shared id pools for a whole simulated world.
#[derive(Clone, Debug)]
pub struct WorldInterners {
    /// Unicast IPv6 addresses (home addresses, care-of addresses, sources).
    pub addrs: SharedInterner<Ipv6Addr>,
    /// Multicast group addresses.
    pub groups: SharedInterner<GroupAddr>,
}

impl WorldInterners {
    pub fn new() -> Self {
        WorldInterners {
            addrs: shared_interner(),
            groups: shared_interner(),
        }
    }

    /// Bytes held by the interner pools themselves (key storage + indexes),
    /// per the documented models in `mobicast_sim::arena`.
    pub fn state_bytes(&self) -> usize {
        self.addrs.borrow().state_bytes() + self.groups.borrow().state_bytes()
    }

    /// Number of distinct interned keys across both pools.
    pub fn len(&self) -> usize {
        self.addrs.borrow().len() + self.groups.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for WorldInterners {
    fn default() -> Self {
        Self::new()
    }
}
