//! The address plan of a simulated network.
//!
//! Every link gets a /64 (`2001:db8:<link+1>::/64`); every interface derives
//! a stable 64-bit interface identifier from its node id and interface
//! index, giving it one link-local address (constant across moves — real
//! IIDs come from the MAC address) and one global address per visited link
//! via stateless autoconfiguration. Deterministic addressing makes traces
//! readable and tests exact.

use mobicast_ipv6::addr::Prefix;
use mobicast_net::{IfIndex, LinkId, NodeId};
use std::net::Ipv6Addr;

/// The interface identifier of `(node, ifindex)`.
pub fn iid(node: NodeId, ifindex: IfIndex) -> u64 {
    (u64::from(node.0) + 1) * 0x100 + u64::from(ifindex)
}

/// The /64 prefix assigned to a link.
pub fn link_prefix(link: LinkId) -> Prefix {
    let addr = Ipv6Addr::new(0x2001, 0xdb8, link.0 as u16 + 1, 0, 0, 0, 0, 0);
    Prefix::new(addr, 64)
}

/// The link-local address of `(node, ifindex)` — the same on every link.
pub fn link_local_addr(node: NodeId, ifindex: IfIndex) -> Ipv6Addr {
    mobicast_ipv6::addr::link_local(iid(node, ifindex))
}

/// The global address `(node, ifindex)` autoconfigures on `link`.
pub fn global_addr(node: NodeId, ifindex: IfIndex, link: LinkId) -> Ipv6Addr {
    link_prefix(link).addr_with_iid(iid(node, ifindex))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iids_are_unique_per_interface() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..20u32 {
            for i in 0..4u8 {
                assert!(seen.insert(iid(NodeId(n), i)));
            }
        }
    }

    #[test]
    fn link_prefixes_are_distinct() {
        let p0 = link_prefix(LinkId(0));
        let p1 = link_prefix(LinkId(1));
        assert_ne!(p0, p1);
        assert_eq!(p0.to_string(), "2001:db8:1::/64");
        assert_eq!(p1.to_string(), "2001:db8:2::/64");
    }

    #[test]
    fn global_addr_is_in_link_prefix() {
        let a = global_addr(NodeId(3), 1, LinkId(5));
        assert!(link_prefix(LinkId(5)).contains(a));
        assert_eq!(a.to_string(), "2001:db8:6::401");
    }

    #[test]
    fn link_local_is_stable_across_links() {
        let a = link_local_addr(NodeId(3), 0);
        assert!(mobicast_ipv6::addr::is_link_local(a));
        // No dependence on any link: by construction.
        assert_eq!(a.to_string(), "fe80::400");
    }
}
