//! Large-topology stress scenarios: grids and trees of 100+ routers with
//! many mobile receivers, run with the invariant oracle attached.
//!
//! The reference (Figure-1) scenarios exercise the protocols on six links;
//! these scenarios scale the same stacks to `NetworkSpec::grid` /
//! `NetworkSpec::tree` topologies where the flood fans out over a hundred
//! links, dozens of receivers join, and a scripted subset of them roams
//! on deterministic (seed-derived) schedules. Every run is judged by the
//! [`Oracle`] — forwarding loops, persistent duplicates, stale state and
//! unbounded encapsulation are violations — so the stress layer doubles as
//! a soak test for the hot-path optimizations (timer wheel, flood path):
//! an ordering bug in the event queue shows up here as a protocol
//! violation, not just a flaky metric.

use crate::builder::{build, BuiltNetwork, HostSpec, NetworkSpec};
use crate::host_node::{HostConfig, SenderApp};
use crate::oracle::{FinalizeParams, Oracle};
use crate::router_node::{RouterConfig, RouterNode};
use crate::scenario::group;
use crate::strategy::Policy;
use mobicast_mld::MldConfig;
use mobicast_net::{ExecutorConfig, ShardRunStats};
use mobicast_sim::{RngFactory, SimDuration, SimTime, Tracer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Traffic starts here (leaves room for the initial MLD joins).
const TRAFFIC_START_SECS: u64 = 5;
/// Earliest scripted move.
const FIRST_MOVE_SECS: u64 = 20;
/// Quiet tail demanded after the last move so the oracle's settle window
/// (last disturbance + 30 s margin) fits inside the run.
const MOVE_QUIET_TAIL_SECS: u64 = 60;
/// Reconvergence margin granted after the last move (mirrors the scenario
/// layer's settle margin).
const SETTLE_MARGIN_SECS: u64 = 30;

/// Configuration of one stress run.
#[derive(Clone, Debug)]
pub struct StressSpec {
    /// Label used in reports ("grid64x112/bi-directional tunnel/seed11", …).
    pub name: String,
    pub topology: NetworkSpec,
    pub policy: Policy,
    pub seed: u64,
    pub duration: SimDuration,
    /// Receivers, spread deterministically over the links (sender is
    /// always on link 0).
    pub receivers: usize,
    /// How many of the receivers roam (the first `movers`).
    pub movers: usize,
    /// Scripted moves per roaming receiver.
    pub moves_per_mover: usize,
    /// CBR source interval.
    pub data_interval: SimDuration,
}

impl StressSpec {
    /// Link the `i`-th receiver is homed on: spread over all non-sender
    /// links with a fixed prime stride so neighbours land far apart.
    fn receiver_home(&self, i: usize) -> usize {
        1 + (i * 7919) % (self.topology.n_links - 1)
    }
}

/// Deterministic result of one stress run (no wall-clock anywhere — serial
/// and parallel execution must produce identical reports).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StressReport {
    pub name: String,
    pub routers: usize,
    pub links: usize,
    pub hosts: usize,
    pub moves: usize,
    /// Scheduler dispatches over the whole run.
    pub events_executed: u64,
    pub packets_sent: u64,
    pub first_copy_deliveries: u64,
    pub duplicate_deliveries: u64,
    /// Peak (S,G) state on any single router.
    pub max_router_sg_entries: usize,
    pub oracle_violations: u64,
    /// First few violation messages (empty on a legal run).
    pub violations: Vec<String>,
    /// Cost accounting of the oracle's 5 s state poll — deterministic, so
    /// it participates in the parity checks, and the profile bench asserts
    /// the walk counters stay flat as listener counts grow.
    pub poll: crate::oracle::PollStats,
}

/// How a stress run executes. The default is the sequential loop; a
/// sharded [`ExecutorConfig`] routes through the conservative-lookahead
/// executor — inline with one worker, threaded with more — whose
/// observable output is byte-identical for every valid
/// `(shards, workers)` choice; the contract `tests/shard_parity.rs` pins.
#[derive(Clone, Debug, Default)]
pub struct StressRunOptions {
    /// Executor choice (shards + worker threads). Never changes the
    /// report, only how fast it is produced.
    pub executor: ExecutorConfig,
}

impl StressRunOptions {
    /// Sharded execution over `shards` regions with `workers` threads.
    pub fn sharded(shards: usize, workers: usize) -> StressRunOptions {
        StressRunOptions {
            executor: ExecutorConfig::sharded(shards).threads(workers),
        }
    }
}

/// Run one stress scenario to completion under the oracle.
pub fn run_stress(spec: &StressSpec) -> StressReport {
    run_stress_with(spec, &StressRunOptions::default(), Tracer::null()).0
}

/// [`run_stress`] with explicit execution options and a trace sink.
/// Returns the shard schedule statistics when `opts.shards >= 1`.
pub fn run_stress_with(
    spec: &StressSpec,
    opts: &StressRunOptions,
    tracer: Tracer,
) -> (StressReport, Option<ShardRunStats>) {
    assert!(
        spec.receivers >= spec.movers,
        "movers are a subset of receivers"
    );
    assert!(spec.topology.n_links >= 2, "need somewhere to roam");
    let dur_secs = spec.duration.as_secs_f64() as u64;
    assert!(
        dur_secs >= FIRST_MOVE_SECS + MOVE_QUIET_TAIL_SECS,
        "run too short for the move window"
    );
    let g = group();
    let end = SimTime::ZERO + spec.duration;

    let host_cfg = HostConfig {
        policy: spec.policy,
        unsolicited_reports: true,
        mld: MldConfig::default(),
    };
    let mut hosts = vec![HostSpec {
        home_link: 0,
        cfg: host_cfg,
        sender: Some(SenderApp {
            group: g,
            interval: spec.data_interval,
            payload_size: 256,
            start: SimTime::from_secs(TRAFFIC_START_SECS),
            stop: end,
        }),
        receiver_group: None,
    }];
    for i in 0..spec.receivers {
        hosts.push(HostSpec {
            home_link: spec.receiver_home(i),
            cfg: host_cfg,
            sender: None,
            receiver_group: Some(g),
        });
    }

    let mut net = build(
        &spec.topology,
        &hosts,
        RouterConfig::default(),
        spec.seed,
        tracer,
    );

    // Script the moves: per-mover RNG streams derived only from the seed,
    // so the schedule is a pure function of (seed, spec) — the determinism
    // contract the parity harness relies on.
    let move_rng = RngFactory::new(spec.seed).subfactory("stress.moves");
    let move_window = FIRST_MOVE_SECS..(dur_secs - MOVE_QUIET_TAIL_SECS);
    let mut last_move_secs = 0u64;
    let mut n_moves = 0usize;
    for m in 0..spec.movers {
        let mut rng = move_rng.indexed_stream("mover", m as u64);
        let mut times: Vec<u64> = (0..spec.moves_per_mover)
            .map(|_| rng.random_range(move_window.clone()))
            .collect();
        times.sort_unstable();
        let host = net.hosts[1 + m]; // host 0 is the sender
        let mut current = spec.receiver_home(m);
        for at_secs in times {
            let mut to = rng.random_range(0..spec.topology.n_links);
            if to == current {
                to = (to + 1) % spec.topology.n_links;
            }
            current = to;
            let link = net.links[to];
            net.world.at(SimTime::from_secs(at_secs), move |w| {
                w.move_iface(host, 0, link);
            });
            last_move_secs = last_move_secs.max(at_secs);
            n_moves += 1;
        }
    }

    let oracle = Oracle::attach(&mut net.world, net.routers.clone(), end);
    let plan = match opts.executor.plan(|shards| net.shard_plan(shards)) {
        Ok(plan) => plan,
        Err(e) => panic!("stress {}: invalid executor config: {e}", spec.name),
    };
    let shard_stats = net.world.run(end, &plan).sharded;

    let BuiltNetwork {
        world,
        routers,
        hosts: host_ids,
        links,
        recorder,
        ..
    } = net;
    let rec = recorder.take();

    let receivers: Vec<_> = host_ids
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, id)| (*id, links[spec.receiver_home(i - 1)]))
        .collect();
    let settle_secs = (TRAFFIC_START_SECS + 15).max(last_move_secs + SETTLE_MARGIN_SECS);
    let summary = oracle.finalize(
        &rec,
        &FinalizeParams {
            settle: SimTime::from_secs(settle_secs),
            t_mli: MldConfig::default().multicast_listener_interval(),
            receivers,
            end,
            disturbance_end: Some(SimTime::from_secs(last_move_secs)),
            reconverge_bound: SimDuration::from_secs(60),
            protected_floor: None,
            protect_window: None,
        },
    );

    let first = rec.deliveries.iter().filter(|d| d.first).count() as u64;
    let dup = rec.deliveries.len() as u64 - first;
    let max_sg = routers
        .iter()
        .filter_map(|r| world.behavior::<RouterNode>(*r))
        .map(|r| r.max_sg_entries)
        .max()
        .unwrap_or(0);

    let report = StressReport {
        name: spec.name.clone(),
        routers: routers.len(),
        links: links.len(),
        hosts: host_ids.len(),
        moves: n_moves,
        events_executed: world.events_executed(),
        packets_sent: rec.packets.len() as u64,
        first_copy_deliveries: first,
        duplicate_deliveries: dup,
        max_router_sg_entries: max_sg,
        oracle_violations: summary.violation_count,
        violations: summary.violations,
        poll: oracle.poll_stats(),
    };
    (report, shard_stats)
}

/// The canonical stress specs: `quick` uses small shapes suitable for
/// debug-mode test runs; full mode uses the 100+-router shapes.
pub fn specs(quick: bool) -> Vec<StressSpec> {
    let (grid, tree, duration, receivers, movers) = if quick {
        (
            NetworkSpec::grid(4, 4),
            NetworkSpec::tree(2, 4),
            SimDuration::from_secs(90),
            6,
            2,
        )
    } else {
        (
            NetworkSpec::grid(8, 8),
            NetworkSpec::tree(3, 5),
            SimDuration::from_secs(120),
            24,
            6,
        )
    };
    let shapes = [("grid", grid), ("tree", tree)];
    // Default pair exercises both receive planes; `--approach` pins one.
    let policies = crate::strategy::approach_override().map_or_else(
        || vec![Policy::LOCAL, Policy::BIDIRECTIONAL_TUNNEL],
        |p| vec![p],
    );
    let seed = 11;
    let mut out = Vec::new();
    for (shape, topo) in shapes {
        for &policy in &policies {
            out.push(StressSpec {
                name: format!(
                    "{shape}{}x{}/{}/seed{seed}",
                    topo.n_links,
                    topo.routers.len(),
                    policy.id()
                ),
                topology: topo.clone(),
                policy,
                seed,
                duration,
                receivers,
                movers,
                moves_per_mover: 2,
                data_interval: SimDuration::from_secs(1),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_and_tree_shapes() {
        let g = NetworkSpec::grid(8, 8);
        assert_eq!(g.n_links, 64);
        assert_eq!(g.routers.len(), 112);
        let t = NetworkSpec::tree(3, 5);
        assert_eq!(t.n_links, 121);
        assert_eq!(t.routers.len(), 120);
        // Every tree link except the root has exactly one parent edge.
        let mut child_seen = vec![0usize; t.n_links];
        for r in &t.routers {
            child_seen[r[1]] += 1;
        }
        assert_eq!(child_seen[0], 0);
        assert!(child_seen[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn quick_stress_runs_clean() {
        for spec in specs(true) {
            let report = run_stress(&spec);
            assert_eq!(
                report.oracle_violations, 0,
                "{}: {:?}",
                report.name, report.violations
            );
            assert!(report.packets_sent > 0, "{}: no traffic", report.name);
            assert!(
                report.first_copy_deliveries > 0,
                "{}: nothing delivered",
                report.name
            );
            assert!(report.moves > 0, "{}: nobody roamed", report.name);
        }
    }

    #[test]
    fn stress_is_deterministic_in_seed() {
        let spec = &specs(true)[0];
        let a = run_stress(spec);
        let b = run_stress(spec);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
