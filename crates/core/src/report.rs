//! Text tables and JSON output for the experiment binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i];
                if i + 1 == ncols {
                    let _ = write!(out, "{c:<pad$}");
                } else {
                    let _ = write!(out, "{c:<pad$}  ");
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Format seconds compactly.
pub fn secs(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v < 0.001 {
        format!("{:.1}us", v * 1e6)
    } else if v < 1.0 {
        format!("{:.1}ms", v * 1e3)
    } else {
        format!("{v:.1}s")
    }
}

/// Format bytes compactly.
pub fn bytes(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{:.1}MB", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{:.1}kB", v as f64 / 1e3)
    } else {
        format!("{v}B")
    }
}

/// Write a serializable result to `results/<name>.json` relative to the
/// workspace (best effort; failures only warn).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Columns align: "1" and "2" start at the same offset.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(0.0), "0");
        assert_eq!(secs(0.0000005), "0.5us");
        assert_eq!(secs(0.25), "250.0ms");
        assert_eq!(secs(42.0), "42.0s");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(25_000), "25.0kB");
        assert_eq!(bytes(12_000_000), "12.0MB");
    }
}
